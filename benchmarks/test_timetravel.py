"""Narrow-range index scans vs. history replay (BENCH_timetravel).

The cross-time planner's strategy split, measured: answering the *same*
compiled range query by

* **index-scan** -- merged per-kind ``TimestampIndex`` range scans (the
  planner's pick for ranges narrower than the replay threshold); vs.
* **full replay** -- re-enumerating the change history with no durable
  log attached (what ``checkpoint-replay`` degrades to without a store),
  the posture a narrow range must beat for the threshold rule to make
  sense; and
* **checkpointed replay** -- the same replay with a store
  :class:`~repro.store.HistoryLog` attached, seeking past the newest
  durable checkpoint below the range (the planner's pick for wide
  ranges).

Narrow windows run index-scan against full replay back to back per
repeat with alternating order (min-of-repeats, so machine drift hits
both equally); a wide window compares checkpointed against full replay
the same way.  Every timed answer is cross-checked row-for-row across
all three postures -- a fast path that changes rows measures nothing.

Writes ``benchmarks/artifacts/BENCH_timetravel.json``; the committed
baseline pins the deterministic series and
``scripts/check_bench_baseline.py`` gates
``bench_timetravel.wall.ratio`` (narrow index / full replay) below 1.0
with zero row mismatches.
"""

from __future__ import annotations

import sys
from pathlib import Path
from time import perf_counter

sys.path.insert(0, str(Path(__file__).resolve().parent))

from test_index_ablation import metrics_json  # noqa: E402

from repro import IndexedChorelEngine, build_doem  # noqa: E402
from repro.sources.generators import demo_world  # noqa: E402
from repro.store import CheckpointPolicy, HistoryLog  # noqa: E402

DAYS = 240          # change sets in the benchmarked history
REPLAY_BUDGET = 12  # ops between checkpoints (policy; small on purpose)
REPEATS = 7         # min-of-repeats per posture
PROBES = 8          # narrow windows spread over the last half
WINDOW_DAYS = 4     # width of each narrow window (under the threshold)

NARROW_TEMPLATE = "select X, T from root.item<upd at T in [{a}..{b}]> X"


def build_world(tmp_path):
    db, history = demo_world(days=DAYS)
    doem = build_doem(db, history)
    log = HistoryLog(tmp_path / "bench-history", origin=db,
                     policy=CheckpointPolicy(replay_budget=REPLAY_BUDGET,
                                             size_weight=0.0, min_sets=1),
                     fsync_policy="roll")
    log.extend(history)
    return db, history, doem, log


def narrow_queries(history):
    """Narrow windows across the expensive half of the history."""
    times = history.timestamps()
    half = times[len(times) // 2:]
    stride = max(1, len(half) // PROBES)
    starts = half[::stride][:PROBES]
    return [NARROW_TEMPLATE.format(a=a, b=a.plus(days=WINDOW_DAYS))
            for a in starts]


def compile_range(engine, query):
    compiled = engine.compile(query)
    assert compiled.is_range, f"not planner-served as a range: {query}"
    return compiled


def run_with_strategy(engine, compiled, strategy):
    compiled.root.plan.strategy = strategy
    return engine.execute(compiled)


def test_timetravel_strategies(benchmark, artifact_dir, tmp_path):
    _db, history, doem, log = build_world(tmp_path)
    assert log.checkpoints(), "the policy must have produced checkpoints"

    bare = IndexedChorelEngine(doem, name="root")
    backed = IndexedChorelEngine(doem, name="root")
    backed.log = log

    queries = narrow_queries(history)
    times = history.timestamps()
    wide_query = NARROW_TEMPLATE.format(a=times[len(times) // 2],
                                        b=times[-1])

    # Equivalence first (and posture warm-up): all three postures must
    # return identical rows for every probe, narrow and wide.
    row_mismatches = 0
    rows_narrow = 0
    for query in queries + [wide_query]:
        compiled = compile_range(bare, query)
        via_index = [str(r) for r in run_with_strategy(
            bare, compiled, "index-scan")]
        via_replay = [str(r) for r in run_with_strategy(
            bare, compiled, "checkpoint-replay")]
        via_ckpt = [str(r) for r in run_with_strategy(
            backed, compiled, "checkpoint-replay")]
        if via_index != via_replay or via_index != via_ckpt:
            row_mismatches += 1
        if query is not wide_query:
            rows_narrow += len(via_index)

    # Narrow windows: index-scan vs full replay, min-of-repeats.
    compiled_narrow = [compile_range(bare, query) for query in queries]
    index_best = [float("inf")] * len(queries)
    replay_best = [float("inf")] * len(queries)
    for repeat in range(REPEATS):
        order = (("index-scan", "checkpoint-replay") if repeat % 2 == 0
                 else ("checkpoint-replay", "index-scan"))
        for position, compiled in enumerate(compiled_narrow):
            for strategy in order:
                started = perf_counter()
                run_with_strategy(bare, compiled, strategy)
                elapsed = perf_counter() - started
                best = (index_best if strategy == "index-scan"
                        else replay_best)
                best[position] = min(best[position], elapsed)

    index_seconds = sum(index_best)
    replay_seconds = sum(replay_best)
    ratio = index_seconds / replay_seconds

    # Wide window: checkpointed replay vs full replay, min-of-repeats.
    compiled_wide = compile_range(bare, wide_query)
    wide_full = wide_ckpt = float("inf")
    for repeat in range(REPEATS):
        engines = ((bare, backed) if repeat % 2 == 0 else (backed, bare))
        for engine in engines:
            started = perf_counter()
            run_with_strategy(engine, compiled_wide, "checkpoint-replay")
            elapsed = perf_counter() - started
            if engine is bare:
                wide_full = min(wide_full, elapsed)
            else:
                wide_ckpt = min(wide_ckpt, elapsed)
    wide_ratio = wide_ckpt / wide_full

    # The timed figure CI displays: one narrow index-scan probe sweep.
    def narrow_index_sweep():
        for compiled in compiled_narrow:
            run_with_strategy(bare, compiled, "index-scan")
    benchmark(narrow_index_sweep)

    info = log.info()
    log.close()

    assert index_seconds > 0 and replay_seconds > 0
    assert row_mismatches == 0, "a range strategy changed rows"
    assert rows_narrow > 0, "narrow probes returned nothing; vacuous"

    artifact = metrics_json(
        "bench_timetravel",
        params={"days": DAYS, "probes": len(queries),
                "window_days": WINDOW_DAYS, "repeats": REPEATS,
                "replay_budget": REPLAY_BUDGET},
        workload={"change_sets": info["change_sets"],
                  "checkpoints": info["checkpoints"],
                  "rows_narrow": rows_narrow},
        equivalence={"row_mismatches": row_mismatches},
        wall={"index_seconds": round(index_seconds, 6),
              "replay_seconds": round(replay_seconds, 6),
              "ratio": round(ratio, 4),
              "wide_full_seconds": round(wide_full, 6),
              "wide_checkpoint_seconds": round(wide_ckpt, 6),
              "wide_ratio": round(wide_ratio, 4)})
    path = artifact_dir / "BENCH_timetravel.json"
    path.write_text(artifact + "\n", encoding="utf-8")
    print(f"\n===== artifact BENCH_timetravel ({path}) =====")
    print(artifact)
