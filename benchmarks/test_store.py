"""Checkpointed time travel vs. replay-from-origin (BENCH_store).

The durable store's reason to exist, measured: resolving ``Ot(D)``
against a log-structured history by

* **origin replay** -- fold every change set from the origin up to the
  cutoff (the pre-checkpoint resolution path, kept in the API as
  ``snapshot_at(..., use_checkpoints=False)``); vs.
* **checkpointed** -- load the nearest materialized snapshot checkpoint
  at or before the cutoff and replay only the bounded suffix.

Both postures answer the same probe times over the same on-disk log,
back to back per repeat with alternating order (min-of-repeats, so
machine drift hits both equally), and every answer is cross-checked
against the in-memory ``OEMHistory.snapshot_at`` ground truth -- a fast
path that returns a different snapshot measures nothing.

Writes ``benchmarks/artifacts/BENCH_store.json``; the committed baseline
(``benchmarks/baselines/BENCH_store_baseline.json``) pins the
deterministic series, and ``scripts/check_bench_baseline.py`` gates
``bench_store.wall.ratio`` (checkpointed / origin replay) below 0.5 --
checkpoint resolution must beat full replay by at least 2x or the CI
bench-regression lane fails.
"""

from __future__ import annotations

import sys
from pathlib import Path
from time import perf_counter

sys.path.insert(0, str(Path(__file__).resolve().parent))

from test_index_ablation import metrics_json  # noqa: E402

from repro.sources.generators import demo_world  # noqa: E402
from repro.store import CheckpointPolicy, HistoryLog  # noqa: E402

DAYS = 240          # change sets in the benchmarked history
REPLAY_BUDGET = 12  # ops between checkpoints (policy; small on purpose)
REPEATS = 7         # min-of-repeats per posture
PROBES = 8          # cutoffs spread over the last half of the history


def build_log(tmp_path):
    db, history = demo_world(days=DAYS)
    log = HistoryLog(tmp_path / "bench-history", origin=db,
                     policy=CheckpointPolicy(replay_budget=REPLAY_BUDGET,
                                             size_weight=0.0, min_sets=1),
                     fsync_policy="roll")
    log.extend(history)
    return db, history, log


def probe_times(history):
    """Cutoffs across the expensive half: late times replay the most."""
    times = history.timestamps()
    half = times[len(times) // 2:]
    stride = max(1, len(half) // PROBES)
    return half[::stride][:PROBES]


def test_checkpointed_time_travel(benchmark, artifact_dir, tmp_path):
    db, history, log = build_log(tmp_path)
    probes = probe_times(history)
    assert log.checkpoints(), "the policy must have produced checkpoints"

    # Ground truth, and posture warm-up (page cache, parsed checkpoint).
    expected = {when: history.snapshot_at(db, when) for when in probes}
    mismatches = 0
    for when in probes:
        for use_checkpoints in (True, False):
            result = log.snapshot_at(when, use_checkpoints=use_checkpoints)
            if not result.same_as(expected[when]):
                mismatches += 1

    origin_best = {when: float("inf") for when in probes}
    ckpt_best = {when: float("inf") for when in probes}
    for repeat in range(REPEATS):
        order = (False, True) if repeat % 2 == 0 else (True, False)
        for when in probes:
            for use_checkpoints in order:
                started = perf_counter()
                log.snapshot_at(when, use_checkpoints=use_checkpoints)
                elapsed = perf_counter() - started
                best = ckpt_best if use_checkpoints else origin_best
                best[when] = min(best[when], elapsed)

    origin_seconds = sum(origin_best.values())
    ckpt_seconds = sum(ckpt_best.values())
    ratio = ckpt_seconds / origin_seconds

    # The timed figure CI displays: one checkpointed probe sweep.
    def checkpointed_sweep():
        for when in probes:
            log.snapshot_at(when)
    benchmark(checkpointed_sweep)

    stats = log.stats.as_dict()
    info = log.info()
    log.close()

    assert origin_seconds > 0 and ckpt_seconds > 0
    assert mismatches == 0, "the fast path changed Ot(D)"
    assert stats["snapshots_from_checkpoint"] > 0

    artifact = metrics_json(
        "bench_store",
        params={"days": DAYS, "replay_budget": REPLAY_BUDGET,
                "probes": len(probes), "repeats": REPEATS},
        workload={"change_sets": info["change_sets"],
                  "operations": info["operations"],
                  "checkpoints": info["checkpoints"],
                  "segments": info["segments"],
                  "tip_nodes": info["tip_nodes"]},
        equivalence={"snapshot_mismatches": mismatches},
        wall={"origin_seconds": round(origin_seconds, 6),
              "checkpoint_seconds": round(ckpt_seconds, 6),
              "ratio": round(ratio, 4)},
        store={"snapshots_from_checkpoint":
                   stats["snapshots_from_checkpoint"],
               "snapshots_from_origin": stats["snapshots_from_origin"],
               "replayed_sets": stats["replayed_sets"],
               "checkpoints_written": stats["checkpoints_written"]})
    path = artifact_dir / "BENCH_store.json"
    path.write_text(artifact + "\n", encoding="utf-8")
    print(f"\n===== artifact BENCH_store ({path}) =====")
    print(artifact)
