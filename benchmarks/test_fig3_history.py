"""Experiment fig3 -- Figure 3 / Examples 2.2-2.3: applying the history.

Regenerates the Figure 3 database by applying the Example 2.3 history
H = ((t1,U1),(t2,U2),(t3,U3)) to Figure 2, checks the paper's described
end state, and measures history application (validity checks + garbage
collection included).
"""

from tests.conftest import make_guide_db, make_guide_history


def test_fig3_history_application(benchmark, record_artifact):
    def apply_history():
        db = make_guide_db()
        history = make_guide_history()
        return history.apply_to(db)

    final = benchmark(apply_history)

    # Figure 3's highlighted changes:
    assert final.value("n1") == 20                        # price update
    assert final.value("n3") == "Hakata"                  # new restaurant
    assert final.has_arc("n2", "comment", "n5")           # 5Jan97 comment
    assert not final.has_arc("r2", "parking", "n7")       # dashed arrow
    assert final.has_node("n7")                           # still shared
    final.check()

    record_artifact("fig3_history",
                    "history: 3 change sets, 8 basic operations\n"
                    f"final state: nodes={len(final)} "
                    f"arcs={final.arc_count()}\n\n" + final.describe())


def test_fig3_replay_all_snapshots(benchmark):
    """Replaying yields O0..O3; each intermediate state is a valid OEM db."""
    db = make_guide_db()
    history = make_guide_history()

    def replay():
        return history.replay(db)

    snapshots = benchmark(replay)
    assert len(snapshots) == 4
    for snapshot in snapshots:
        snapshot.check()
    assert snapshots[0].value("n1") == 10
    assert snapshots[-1].value("n1") == 20
