"""Experiment bench-diff -- OEMdiff cost vs. snapshot size and change rate.

Section 6 builds QSS on snapshot differencing; this bench characterizes
the differ the way [CRGMW96] characterizes theirs: cost against snapshot
size (at fixed change rate) and against change rate (at fixed size), with
identifier scrambling on so matching does real work.  The correctness
contract (U(A) isomorphic to B) is asserted inside every measured run.
"""

import pytest

from repro import oem_diff, random_change_set, random_database
from repro.diff.oemdiff import apply_diff
from repro.sources.base import scramble_ids

SIZES = [20, 60, 180]
EDITS = [0, 4, 16]


def snapshot_pair(nodes, edits, seed=7):
    old = random_database(seed=seed, nodes=nodes)
    new = old.copy()
    random_change_set(new, seed=seed + 1, size=edits).apply_to(new)
    return old, scramble_ids(new, salt=seed)


@pytest.mark.parametrize("nodes", SIZES)
def test_diff_cost_vs_size(benchmark, nodes, record_artifact):
    old, new = snapshot_pair(nodes, edits=6)

    def run():
        return oem_diff(old, new)

    change_set = benchmark(run)
    assert apply_diff(old, change_set).isomorphic_to(new)
    record_artifact(f"diff_size_{nodes}",
                    f"nodes={nodes} inferred ops={len(change_set)}")


@pytest.mark.parametrize("edits", EDITS)
def test_diff_cost_vs_change_rate(benchmark, edits, record_artifact):
    old, new = snapshot_pair(60, edits=edits)

    def run():
        return oem_diff(old, new)

    change_set = benchmark(run)
    assert apply_diff(old, change_set).isomorphic_to(new)
    record_artifact(f"diff_edits_{edits}",
                    f"edits={edits} inferred ops={len(change_set)}")


@pytest.mark.parametrize("differ", ["match", "ids"])
@pytest.mark.parametrize("nodes", [60, 180])
def test_differ_ablation(benchmark, differ, nodes, record_artifact):
    """Content matching vs. trusting stable identifiers.

    Autonomous sources force the matcher; cooperative sources let the
    linear id-based differ run.  Same inferred operations when ids are
    honest -- measured head to head.
    """
    from repro.diff.iddiff import id_diff

    old = random_database(seed=9, nodes=nodes)
    new = old.copy()
    random_change_set(new, seed=10, size=8).apply_to(new)
    if differ == "ids":
        change_set = benchmark(id_diff, old, new)
        assert apply_diff(old, change_set).same_as(new)
    else:
        change_set = benchmark(oem_diff, old, new)
        assert apply_diff(old, change_set).isomorphic_to(new)
    record_artifact(f"differ_{differ}_{nodes}",
                    f"differ={differ} nodes={nodes} "
                    f"ops={len(change_set)}")


def test_diff_quality_vs_ground_truth(record_artifact):
    """Inferred operation count vs. the known number of injected edits.

    The differ cannot see ground truth (ids are scrambled), so extra or
    merged operations are expected -- but the totals should stay within a
    small factor, or QSS histories bloat.
    """
    lines = []
    for edits in (2, 6, 12):
        old, new = snapshot_pair(60, edits=edits, seed=21)
        inferred = len(oem_diff(old, new))
        lines.append(f"injected<= {edits:3d}  inferred={inferred:3d}")
        assert inferred <= max(6, edits * 4), \
            "diff output should stay proportional to real change"
    record_artifact("diff_quality", "\n".join(lines))
