"""Experiment bench-analyze -- the cost of EXPLAIN ANALYZE.

The ANALYZE contract is "observe, don't perturb": with ``analyze=False``
the physical operators must take their original uninstrumented paths
(``ctx.stats is None`` is one attribute load per dispatch), and an
analyzed run must return identical rows while accounting every
operator.  This bench measures both halves over one serial path-walking
workload and writes ``benchmarks/artifacts/BENCH_analyze.json``:

* ``bench_analyze.wall.plain_seconds`` / ``analyze_seconds`` -- one
  workload sweep per posture as the sum of per-query minima over the
  repeats (postures run back to back per query, alternating order each
  repeat, so machine drift hits both equally);
* ``bench_analyze.overhead.ratio`` -- analyze / plain; the CI
  analyze-overhead job fails when it reaches 1.05
  (``scripts/check_bench_baseline.py``);
* ``bench_analyze.equivalence.row_mismatches`` -- queries whose
  analyzed rows diverged from the plain run (must be 0);
* ``bench_analyze.equivalence.consistency_violations`` -- operator
  pairs where a parent's ``rows_in`` disagreed with its child's
  ``rows_out`` (must be 0);
* ``bench_analyze.queries.recorded`` -- query-log records the sweeps
  produced; zero means the log was bypassed and nothing was measured.

Wall times are machine-dependent and never baseline-compared; the
committed baseline (``benchmarks/baselines/BENCH_analyze_baseline.json``)
pins only the workload parameters and the equivalence zeros.
"""

from __future__ import annotations

import os
from time import perf_counter

import pytest

from repro import ChorelEngine
from repro.obs.querylog import query_log
from repro.sources import large_world

from test_index_ablation import metrics_json

# Same bench-scale world and path-walking queries as bench-obs:
# per-query evaluation must dominate the fixed per-query accounting
# cost, as it does on production data.
WORLD_SEED = 7
WORLD = dict(items=800, extra_links=320, steps=6, churn=80)
QUERIES = (
    "select R from root.item R where R.#.a < 10",
    "select R from root.item R where exists S in R.link: S.price < R.price",
    'select R from root.item R where R.name like "%a%" and R.price < 800',
)
REPEATS = 7   # per-query min-of-repeats per posture
INNER = 1     # runs per timed measurement


def _consistency_violations(stats) -> int:
    """Parent/child row-flow disagreements along the attached spine."""
    violations = 0
    for index, op in enumerate(stats.ops):
        if op.detached:
            continue
        for later in stats.ops[index + 1:]:
            if later.depth == op.depth + 1 and not later.detached:
                if op.rows_in != later.rows_out:
                    violations += 1
            if later.depth <= op.depth:
                break
    return violations


@pytest.mark.slow
def test_analyze_overhead_bench(benchmark, artifact_dir):
    """Analyzed vs. plain execution over one serial workload."""
    _, _, doem = large_world(seed=WORLD_SEED, **WORLD)
    engine = ChorelEngine(doem, name="root")

    # Warm every cache (path closures, compile machinery) before the
    # clock starts, so the postures compare steady-state throughput.
    expected = {query: [str(row) for row in engine.run(query)]
                for query in QUERIES}

    recorded_before = len(query_log())
    plain_best = {query: float("inf") for query in QUERIES}
    analyze_best = {query: float("inf") for query in QUERIES}
    row_mismatches = 0
    consistency_violations = 0
    for repeat in range(REPEATS):
        # Time the two postures back to back *per query*, alternating
        # which goes first each repeat: each query's best time converges
        # independently, and slow drift (thermal, noisy neighbours) or
        # second-run warmth biases both postures equally instead of
        # whichever runs later.
        order = (False, True) if repeat % 2 == 0 else (True, False)
        for query in QUERIES:
            for analyze in order:
                started = perf_counter()
                for _ in range(INNER):
                    engine.run(query, analyze=analyze)
                elapsed = perf_counter() - started
                best = analyze_best if analyze else plain_best
                best[query] = min(best[query], elapsed)

        for query in QUERIES:
            result = engine.run(query, analyze=True)
            if [str(row) for row in result] != expected[query]:
                row_mismatches += 1
            consistency_violations += \
                _consistency_violations(engine.last_compiled.runtime)
    recorded = len(query_log()) - recorded_before

    # Sum of per-query minima: the steady-state cost of one workload
    # sweep under each posture, with per-query noise floored away.
    plain_seconds = sum(plain_best.values())
    analyze_seconds = sum(analyze_best.values())
    ratio = analyze_seconds / plain_seconds

    # The timed figure CI displays: one analyzed workload sweep.
    def analyzed_sweep():
        for query in QUERIES:
            engine.run(query, analyze=True)
    benchmark(analyzed_sweep)

    assert plain_seconds > 0 and analyze_seconds > 0
    assert row_mismatches == 0, "analyze=True changed result rows"
    assert consistency_violations == 0
    assert recorded > 0, "no queries reached the query log"

    artifact = metrics_json(
        "bench_analyze",
        params={"items": WORLD["items"],
                "steps": WORLD["steps"],
                "queries": len(QUERIES),
                "repeats": REPEATS,
                "inner": INNER},
        wall={"plain_seconds": round(plain_seconds, 6),
              "analyze_seconds": round(analyze_seconds, 6),
              "cpus": os.cpu_count() or 1},
        overhead={"ratio": round(ratio, 6)},
        equivalence={"row_mismatches": row_mismatches,
                     "consistency_violations": consistency_violations},
        queries={"recorded": recorded})
    path = artifact_dir / "BENCH_analyze.json"
    path.write_text(artifact + "\n", encoding="utf-8")
    print(f"\n===== artifact BENCH_analyze ({path}) =====")
    print(artifact)
