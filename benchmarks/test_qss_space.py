"""Experiment bench-qss-space -- the Section 6.1 space/time strategies.

"Alternatively, the DOEM Manager could store the previous result in
addition to the DOEM database, thereby trading space for time."  The
DOEMManager implements both; this bench measures:

* per-poll time with the cached previous result vs. recomputing it from
  the DOEM database (cache should win, and the gap should widen with
  history length);
* the extra state the cache costs.

Both strategies must produce byte-identical DOEM histories -- asserted.
"""

import pytest

from repro import RestaurantGuideSource, Wrapper, parse_timestamp
from repro.doem.snapshot import current_snapshot
from repro.qss.managers import DOEMManager

DAYS = [5, 20]


def run_days(manager: DOEMManager, days: int, seed: int = 31):
    source = RestaurantGuideSource(seed=seed, initial_restaurants=10,
                                   events_per_day=3.0)
    wrapper = Wrapper(source, name="guide")
    start = parse_timestamp("1Dec96")
    for day in range(days):
        when = start.plus(days=day + 1)
        wrapper.advance(when)
        result = wrapper.poll("select guide.restaurant")
        manager.incorporate("S", when, result)
    return manager


@pytest.mark.parametrize("days", DAYS)
@pytest.mark.parametrize("cached", [True, False],
                         ids=["cache-previous", "recompute-previous"])
def test_strategy_cost(benchmark, days, cached):
    def run():
        return run_days(DOEMManager(cache_previous_result=cached), days)

    manager = benchmark.pedantic(run, rounds=3, iterations=1)
    assert manager.doem("S").annotation_count() > 0


@pytest.mark.parametrize("keep", [2, 5])
def test_compaction_policy(benchmark, keep, record_artifact):
    """Section 6.1 idea #3: bounded-history retention via compaction."""
    from repro import QSSServer, Subscription

    def run():
        server = QSSServer(start="1Dec96", deliver_empty=True,
                           compact_keep_polls=keep)
        source = RestaurantGuideSource(seed=31, initial_restaurants=10,
                                       events_per_day=3.0)
        server.register_wrapper("guide", Wrapper(source, name="guide"))
        server.subscribe(Subscription(
            name="S", frequency="every day at 6:00pm",
            polling_query="select guide.restaurant",
            filter_query="select S.restaurant<cre at T> where T > t[-1]"),
            "guide")
        server.run_until("21Dec96")
        return server

    server = benchmark.pedantic(run, rounds=3, iterations=1)
    doem = server.doems.doem("S")
    unbounded = run_days(DOEMManager(cache_previous_result=True), 20)
    record_artifact(
        f"qss_compact_keep{keep}",
        f"keep={keep} polls: annotations={doem.annotation_count()} "
        f"nodes={len(doem.graph)}\n"
        f"unbounded 20 days:  annotations="
        f"{unbounded.doem('S').annotation_count()} "
        f"nodes={len(unbounded.doem('S').graph)}")
    assert len(doem.timestamps()) <= keep


@pytest.mark.parametrize("days", DAYS)
def test_strategies_agree_and_state_sizes(days, record_artifact):
    cached = run_days(DOEMManager(cache_previous_result=True), days)
    lean = run_days(DOEMManager(cache_previous_result=False), days)

    # Identical histories regardless of strategy.
    assert current_snapshot(cached.doem("S")).same_as(
        current_snapshot(lean.doem("S")))
    assert cached.doem("S").annotation_count() == \
        lean.doem("S").annotation_count()

    cached_size = cached.state_size("S")
    lean_size = lean.state_size("S")
    assert cached_size["cached_nodes"] > 0
    assert lean_size["cached_nodes"] == 0

    record_artifact(
        f"qss_space_days{days}",
        f"days={days}\n"
        f"cache-previous:     doem_nodes={cached_size['doem_nodes']} "
        f"annotations={cached_size['annotations']} "
        f"cached_nodes={cached_size['cached_nodes']} (extra state)\n"
        f"recompute-previous: doem_nodes={lean_size['doem_nodes']} "
        f"annotations={lean_size['annotations']} cached_nodes=0")
