"""Experiment bench-triggers -- the Section 7 ECA extension, characterized.

Measures rule-evaluation throughput as rule count and condition
complexity grow: a month of guide evolution folded through trigger
managers carrying 0 / 4 / 16 rules, and unconditional vs. Chorel-guarded
rules.  The headline number is the *marginal* cost per rule over plain
DOEM folding.
"""

import pytest

from repro import (
    DOEMDatabase,
    Event,
    OEMDatabase,
    RestaurantGuideSource,
    TriggerManager,
    Wrapper,
    current_snapshot,
    oem_diff,
    parse_timestamp,
)

DAYS = 15


def collect_change_sets():
    """Pre-compute the daily change sets so only folding is measured."""
    source = RestaurantGuideSource(seed=55, initial_restaurants=10,
                                   events_per_day=3.0)
    wrapper = Wrapper(source, name="guide")
    doem = DOEMDatabase(OEMDatabase(root="answer"))
    from repro.doem.build import apply_change_set
    reserved = {"answer"}
    sets = []
    start = parse_timestamp("1Dec96")
    for day in range(DAYS):
        when = start.plus(days=day + 1)
        wrapper.advance(when)
        result = wrapper.poll("select guide.restaurant")
        changes = oem_diff(current_snapshot(doem), result,
                           reserved_ids=reserved)
        sets.append((when, changes))
        apply_change_set(doem, when, changes)
        reserved.update(changes.created_nodes())
    return sets


CHANGE_SETS = collect_change_sets()


def run_with_rules(rule_count: int, conditional: bool) -> TriggerManager:
    manager = TriggerManager(root="answer")
    manager.name = "Guide"
    sink = []
    for index in range(rule_count):
        kind = ("update", "add", "create", "remove")[index % 4]
        condition = None
        if conditional:
            condition = {
                "update": "select OV, NV from NEW<upd at T from OV to NV> "
                          "where T = t[0]",
                "add": "select N from PARENT.name N",
                "create": "select NEW where NEW != 0",
                "remove": "select P from PARENT.price P",
            }[kind]
        manager.on(f"rule{index}", Event(kind), sink.append,
                   condition=condition)
    for when, changes in CHANGE_SETS:
        manager.fold(when, changes)
    return manager


@pytest.mark.parametrize("rules", [0, 4, 16])
def test_folding_cost_vs_rule_count(benchmark, rules):
    manager = benchmark.pedantic(run_with_rules, args=(rules, False),
                                 rounds=3, iterations=1)
    if rules:
        assert manager.activations


@pytest.mark.parametrize("conditional", [False, True],
                         ids=["unconditional", "chorel-guarded"])
def test_condition_evaluation_cost(benchmark, conditional, record_artifact):
    manager = benchmark.pedantic(run_with_rules, args=(4, conditional),
                                 rounds=3, iterations=1)
    record_artifact(
        f"triggers_{'guarded' if conditional else 'plain'}",
        f"rules=4 conditional={conditional} "
        f"activations={len(manager.activations)} over {DAYS} days")
    assert manager.activations
