"""Experiment ex4.1-4.5 -- the worked queries of Section 4.

Each of the paper's queries runs on the Figure 4 DOEM database; the
benchmark asserts the paper's stated answer and measures evaluation on
the native engine.  (The translation backend is covered by
test_translation.py and equality-tested in the unit suite.)
"""

import pytest

from repro import ChorelEngine, build_doem
from tests.conftest import make_guide_db, make_guide_history


@pytest.fixture(scope="module")
def engine():
    doem = build_doem(make_guide_db(), make_guide_history())
    return ChorelEngine(doem, name="guide")


PAPER_QUERIES = {
    # exp id -> (query, expected node ids in the answer)
    "ex4.1": ("select guide.restaurant "
              "where guide.restaurant.price < 20.5",
              ["r1"]),                      # "Bangkok Cuisine" only
    "ex4.2": ("select guide.<add>restaurant",
              ["n2"]),                      # "Hakata"
    "ex4.3": ("select guide.<add at T>restaurant where T < 4Jan97",
              ["n2"]),                      # "Hakata"
    "ex4.4": ("select N, T, NV "
              "from guide.restaurant.price<upd at T to NV>, "
              "guide.restaurant.name N "
              "where T >= 1Jan97 and NV > 15",
              ["nm1"]),                     # Bangkok's name + (t1, 20)
    "ex4.5": ('select N from guide.restaurant R, R.name N '
              'where R.<add at T>price = "moderate" and T >= 1Jan97',
              []),                          # no price arc was ever added
}


@pytest.mark.parametrize("exp_id", sorted(PAPER_QUERIES))
def test_paper_query(engine, benchmark, record_artifact, exp_id):
    query, expected = PAPER_QUERIES[exp_id]
    result = benchmark(engine.run, query)
    from repro.lorel.result import ObjectRef
    objects = result.objects()
    assert objects == expected, (exp_id, str(result))
    rows = "\n".join(str(row) for row in result) or "(empty result)"
    record_artifact(exp_id.replace(".", "_"),
                    f"query: {query}\nanswer:\n{rows}")


def test_ex44_answer_shape(engine):
    """Example 4.4's answer object: name / update-time / new-value."""
    result = engine.run(PAPER_QUERIES["ex4.4"][0])
    row = result.first()
    assert row.labels() == ["name", "update-time", "new-value"]
    assert row["new-value"] == 20


@pytest.mark.parametrize("scale", [10, 50, 200])
def test_query_cost_vs_database_size(benchmark, scale):
    """Chorel evaluation cost as the DOEM database grows."""
    from repro import random_database, random_history
    db = random_database(seed=scale, nodes=scale)
    history = random_history(db, seed=scale, steps=5, set_size=scale // 5)
    doem = build_doem(db, history)
    engine = ChorelEngine(doem, name="root")
    result = benchmark(engine.run,
                       "select root.<add at T>item where T >= 1Jan97")
    assert result is not None
