"""Experiment fig5 -- Figure 5: encoding DOEM objects in OEM.

Regenerates the Section 5.1 encoding of the Figure 4 DOEM database and
checks the structures Figure 5 draws: the &val self-loop / atom, the &upd
record with &time/&ov/&nv, and the &B-history object with &target and
&rem.  Measures encode, decode, and the exactness of the round trip, plus
encoding blow-up on random databases.
"""

import pytest

from repro import build_doem, decode_doem, encode_doem, parse_timestamp
from repro import random_database, random_history
from tests.conftest import make_guide_db, make_guide_history


def test_fig5_encode(benchmark, record_artifact):
    doem = build_doem(make_guide_db(), make_guide_history())
    encoded = benchmark(encode_doem, doem)
    oem = encoded.oem
    oem.check()

    # Figure 5, left: an updated atomic object o1.
    assert oem.has_arc("guide", "&val", "guide")         # complex self-loop
    val_atom = next(iter(oem.children("n1", "&val")))
    assert oem.value(val_atom) == 20
    record = next(iter(oem.children("n1", "&upd")))
    assert [oem.value(n) for n in oem.children(record, "&time")] == \
        [parse_timestamp("1Jan97")]
    assert [oem.value(n) for n in oem.children(record, "&ov")] == [10]
    assert [oem.value(n) for n in oem.children(record, "&nv")] == [20]

    # Figure 5, right: a rem-annotated arc's &B-history object.
    history_obj = next(iter(oem.children("r2", "&parking-history")))
    assert list(oem.children(history_obj, "&target")) == ["n7"]
    assert [oem.value(n) for n in oem.children(history_obj, "&rem")] == \
        [parse_timestamp("8Jan97")]

    blowup = len(oem) / len(doem.graph)
    record_artifact(
        "fig5_encoding",
        f"DOEM: nodes={len(doem.graph)} arcs={doem.graph.arc_count()} "
        f"annotations={doem.annotation_count()}\n"
        f"encoding: nodes={len(oem)} arcs={oem.arc_count()}\n"
        f"node blow-up factor: {blowup:.2f}x")


def test_fig5_decode(benchmark):
    doem = build_doem(make_guide_db(), make_guide_history())
    encoded = encode_doem(doem)
    decoded = benchmark(decode_doem, encoded)
    assert decoded.same_as(doem)


@pytest.mark.parametrize("steps", [0, 4, 16])
def test_fig5_blowup_vs_history_length(benchmark, steps, record_artifact):
    """Encoding size as annotations accumulate (more history -> bigger)."""
    db = random_database(seed=5, nodes=40)
    history = random_history(db, seed=5, steps=steps, set_size=6)
    doem = build_doem(db, history)
    encoded = benchmark(encode_doem, doem)
    ratio = len(encoded.oem) / len(doem.graph)
    record_artifact(f"fig5_blowup_steps{steps}",
                    f"history steps={steps} "
                    f"annotations={doem.annotation_count()} "
                    f"encoding nodes={len(encoded.oem)} "
                    f"blow-up={ratio:.2f}x")
    assert ratio >= 2.0  # &val + history objects at minimum
