"""Experiment bench-obs -- the cost of leaving telemetry on.

The observability layer's contract is "near-free when off, cheap when
on": :func:`repro.obs.events.emit_event` must be one global load and a
``None`` check when no sink is configured, and a configured JSONL sink
(the documented production posture: events on, tracing off) must cost
less than 5% of end-to-end query throughput.

This bench measures both postures over the same serial query workload
and writes ``benchmarks/artifacts/BENCH_obs.json``:

* ``bench_obs.wall.disabled_seconds`` / ``instrumented_seconds`` --
  min-of-repeats wall time per posture (repeats alternate postures, so
  machine drift hits both equally);
* ``bench_obs.overhead.ratio`` -- instrumented / disabled; the CI
  telemetry-overhead job fails when it reaches 1.05
  (``scripts/check_bench_baseline.py``);
* ``bench_obs.events.written`` -- JSONL lines the instrumented passes
  produced; the gate also fails when this is zero, because a "free"
  telemetry layer that wrote nothing measured nothing.

Wall times are machine-dependent and never baseline-compared; the
committed baseline (``benchmarks/baselines/BENCH_obs_baseline.json``)
pins only the workload parameters.
"""

from __future__ import annotations

import os
from time import perf_counter

import pytest

from repro import ChorelEngine
from repro.obs.events import configure_events, disable_events
from repro.sources import large_world

from test_index_ablation import metrics_json

# A bench-scale world with *path-walking* queries: per-query evaluation
# must dominate the fixed per-query event cost (~20us/line), as it does
# on production data -- index-served probe queries would measure the
# sink, not the posture.
WORLD_SEED = 7
WORLD = dict(items=800, extra_links=320, steps=6, churn=80)
QUERIES = (
    "select R from root.item R where R.#.a < 10",
    "select R from root.item R where exists S in R.link: S.price < R.price",
    'select R from root.item R where R.name like "%a%" and R.price < 800',
)
REPEATS = 5   # min-of-repeats per posture
INNER = 1     # workload sweeps per timed repeat
# The production posture under measurement: events on at "info" (debug
# events -- rule_fired, shard_dispatched -- are level-filtered, which is
# itself part of the cost being measured), tracing off.
EVENTS_LEVEL = "info"


def _run_workload(engines_and_queries) -> None:
    for engine, queries in engines_and_queries:
        for query in queries:
            engine.run(query)


@pytest.mark.slow
def test_obs_overhead_bench(benchmark, artifact_dir, tmp_path):
    """Instrumented vs. disabled telemetry over one serial workload."""
    _, _, doem = large_world(seed=WORLD_SEED, **WORLD)
    workload = [(ChorelEngine(doem, name="root"), QUERIES)]
    query_count = len(QUERIES)

    # Warm every cache (path closures, indexes, compile machinery) before
    # the clock starts, so the postures compare steady-state throughput.
    disable_events()
    _run_workload(workload)

    events_path = tmp_path / "bench_obs_events.jsonl"
    disabled_times: list[float] = []
    instrumented_times: list[float] = []
    for _ in range(REPEATS):
        # Alternate postures within each repeat: slow drift (thermal,
        # noisy neighbours) then biases both measurements equally
        # instead of whichever posture ran last.
        disable_events()
        started = perf_counter()
        for _ in range(INNER):
            _run_workload(workload)
        disabled_times.append(perf_counter() - started)

        configure_events(str(events_path), level=EVENTS_LEVEL)
        started = perf_counter()
        for _ in range(INNER):
            _run_workload(workload)
        instrumented_times.append(perf_counter() - started)
    disable_events()

    disabled_seconds = min(disabled_times)
    instrumented_seconds = min(instrumented_times)
    ratio = instrumented_seconds / disabled_seconds
    written = sum(1 for _ in events_path.open(encoding="utf-8"))

    # The timed figure CI displays: one instrumented workload sweep.
    configure_events(str(events_path), level=EVENTS_LEVEL)
    benchmark(lambda: _run_workload(workload))
    disable_events()

    assert disabled_seconds > 0 and instrumented_seconds > 0
    assert written > 0, "instrumented passes produced no events"

    artifact = metrics_json(
        "bench_obs",
        params={"items": WORLD["items"],
                "steps": WORLD["steps"],
                "queries": query_count,
                "repeats": REPEATS,
                "inner": INNER},
        wall={"disabled_seconds": round(disabled_seconds, 6),
              "instrumented_seconds": round(instrumented_seconds, 6),
              "cpus": os.cpu_count() or 1},
        overhead={"ratio": round(ratio, 6)},
        events={"written": written})
    path = artifact_dir / "BENCH_obs.json"
    path.write_text(artifact + "\n", encoding="utf-8")
    print(f"\n===== artifact BENCH_obs ({path}) =====")
    print(artifact)
