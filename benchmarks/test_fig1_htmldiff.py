"""Experiment fig1 -- Figure 1: htmldiff marked-up output.

The paper shows htmldiff's marked-up rendering of two versions of the
restaurant guide page, with icons for insertions and updates.  This
benchmark regenerates the artifact on two simulated guide versions and
measures the full HTML -> OEM -> diff -> markup pipeline.

Qualitative expectations (checked):
* changes at the source surface as insert/update markers;
* the pipeline scales to the "more than 20,000 lines" page the paper
  complains about browsing (measured at several page sizes).
"""

import pytest

from repro import RestaurantGuideSource, html_diff
from repro.diff.htmldiff import INSERT_MARK, UPDATE_MARK


def two_versions(restaurants: int, seed: int = 1997):
    source = RestaurantGuideSource(seed=seed, initial_restaurants=restaurants,
                                   events_per_day=max(2.0, restaurants / 4))
    old = source.render_html()
    source.advance("8Dec96")
    new = source.render_html()
    return old, new


def test_fig1_markup_artifact(benchmark, record_artifact):
    old, new = two_versions(8)
    result = benchmark(html_diff, old, new)
    assert result.stats.total > 0
    assert INSERT_MARK in result.markup or UPDATE_MARK in result.markup
    summary = (f"page sizes: old={len(old)}B new={len(new)}B\n"
               f"inferred operations: {result.stats}\n"
               f"markers: insert={result.markup.count(INSERT_MARK)} "
               f"update={result.markup.count(UPDATE_MARK)}\n"
               f"--- first 600 chars of marked-up output ---\n"
               f"{result.markup[:600]}")
    record_artifact("fig1_htmldiff", summary)


@pytest.mark.parametrize("restaurants", [8, 32, 128])
def test_fig1_scaling(benchmark, restaurants):
    """htmldiff cost as the page grows (the paper's 20k-line guide)."""
    old, new = two_versions(restaurants)
    result = benchmark(html_diff, old, new)
    assert result.stats.total >= 0
