"""Experiment fig7 -- Figure 7: the full QSS architecture, end to end.

One server, multiple clients, multiple subscriptions over two different
autonomous sources (the guide and the library), with DOEM state persisted
through the Lore store (the "DOEM Store" box of Figure 7).  Measures a
week of simulated operation across the whole system.
"""

from repro import (
    LibrarySource,
    LoreStore,
    QSC,
    QSSServer,
    RestaurantGuideSource,
    Wrapper,
)


def build_system():
    server = QSSServer(start="1Dec96", deliver_empty=False)
    server.register_wrapper(
        "guide", Wrapper(RestaurantGuideSource(seed=7, events_per_day=3.0),
                         name="guide"))
    server.register_wrapper(
        "library", Wrapper(LibrarySource(seed=7, events_per_day=6.0),
                           name="library"))

    alice = QSC(server, user="alice")
    alice.subscribe(
        name="NewPlaces", frequency="every day at 11:30pm",
        polling_query="define polling query NewPlaces as "
                      "select guide.restaurant",
        filter_query="define filter query New as "
                     "select NewPlaces.restaurant<cre at T> where T > t[-1]",
        wrapper="guide")
    alice.subscribe(
        name="PriceWatch", frequency="every day at 8:00am",
        polling_query="select guide.restaurant",
        filter_query="select OV, NV from "
                     "PriceWatch.restaurant.price<upd at T from OV to NV> "
                     "where T > t[-1]",
        wrapper="guide")

    bob = QSC(server, user="bob")
    bob.subscribe(
        name="Returns", frequency="every day at 7:00am",
        polling_query="select library.book",
        filter_query="select B from Returns.book B, "
                     'B.status<upd at T from OV to NV> '
                     'where T > t[-1] and NV = "in"',
        wrapper="library")
    return server, alice, bob


def run_week():
    server, alice, bob = build_system()
    server.run_until("8Dec96")
    return server, alice, bob


def test_fig7_full_system_week(benchmark, record_artifact):
    server, alice, bob = benchmark(run_week)

    # Every client hears only its own subscriptions.
    assert {n.subscription for n in alice.inbox} <= {"NewPlaces", "PriceWatch"}
    assert {n.subscription for n in bob.inbox} <= {"Returns"}
    assert alice.inbox, "a week of guide churn must notify alice"
    assert bob.inbox, "a week of circulation must notify bob"

    # 21 polls total were executed (3 subscriptions x 7 days).
    polls = sum(state.poll_count
                for state in server.subscriptions.states())
    assert polls == 21

    record_artifact(
        "fig7_architecture",
        f"polls executed: {polls}\n"
        f"alice notifications: {len(alice.inbox)}\n"
        f"bob notifications: {len(bob.inbox)}\n"
        f"DOEM sizes: " + ", ".join(
            f"{state.subscription.name}="
            f"{server.doems.doem(state.subscription.name).annotation_count()}ann"
            for state in server.subscriptions.states()))


def test_fig7_doem_store_persistence(benchmark, tmp_path):
    """The DOEM Store: persist and reload every subscription's state."""
    server, _, _ = run_week()
    store = LoreStore(tmp_path)

    def persist_and_reload():
        for state in server.subscriptions.states():
            name = state.subscription.name
            store.put_doem(name, server.doems.doem(name))
        fresh = LoreStore(tmp_path)
        return [fresh.get_doem(state.subscription.name)
                for state in server.subscriptions.states()]

    restored = benchmark.pedantic(persist_and_reload, rounds=3, iterations=1)
    for state, doem in zip(server.subscriptions.states(), restored):
        assert doem.same_as(server.doems.doem(state.subscription.name))
