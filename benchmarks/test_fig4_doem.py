"""Experiment fig4 -- Figure 4 / Example 3.1: the DOEM database.

Regenerates D(O, H) for the running example and checks every annotation
the figure draws: upd(1Jan97, ov:10) on the price, cre/add for the Hakata
subtree, and the rem-annotated (not removed!) parking arc.  Measures DOEM
construction and the Section 3.2 derived operations (snapshot extraction,
history extraction, feasibility).
"""

from repro import (
    build_doem,
    current_snapshot,
    encoded_history,
    is_feasible,
    parse_timestamp,
    snapshot_at,
)
from repro.doem.annotations import Add, Cre, Rem, Upd
from tests.conftest import make_guide_db, make_guide_history


def test_fig4_doem_construction(benchmark, record_artifact):
    db = make_guide_db()
    history = make_guide_history()
    doem = benchmark(build_doem, db, history)

    t1 = parse_timestamp("1Jan97")
    assert doem.node_annotations("n1") == (Upd(t1, 10),)
    assert doem.node_annotations("n2") == (Cre(t1),)
    assert doem.arc_annotations("guide", "restaurant", "n2") == (Add(t1),)
    assert doem.graph.has_arc("r2", "parking", "n7")   # rem'd arc retained
    assert doem.arc_annotations("r2", "parking", "n7") == \
        (Rem(parse_timestamp("8Jan97")),)
    assert doem.annotation_count() == 8  # one per basic change operation

    record_artifact("fig4_doem", doem.describe())


def test_fig4_snapshot_extraction(benchmark):
    """Ot(D): the preorder traversal of Section 3.2."""
    doem = build_doem(make_guide_db(), make_guide_history())

    def extract():
        return snapshot_at(doem, "3Jan97")

    mid = benchmark(extract)
    assert mid.value("n1") == 20 and not mid.has_node("n5")


def test_fig4_history_extraction(benchmark):
    """H(D) recovers Example 2.3's history exactly."""
    history = make_guide_history()
    doem = build_doem(make_guide_db(), history)
    extracted = benchmark(encoded_history, doem)
    assert extracted == history


def test_fig4_feasibility(benchmark):
    """The feasibility test: rebuild D(O0(D), H(D)) and compare."""
    doem = build_doem(make_guide_db(), make_guide_history())
    assert benchmark(is_feasible, doem)


def test_fig4_current_snapshot(benchmark):
    doem = build_doem(make_guide_db(), make_guide_history())
    final = make_guide_history().apply_to(make_guide_db())
    snapshot = benchmark(current_snapshot, doem)
    assert snapshot.same_as(final)
