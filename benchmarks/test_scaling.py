"""Experiment bench-scale -- cost and size vs. history length.

Sections 3 and 5 motivate DOEM as a *compact* single-structure history:
this bench quantifies how the structure and its derived operations scale
as the history grows, on one fixed base database:

* DOEM size (annotations) grows linearly with operations applied;
* snapshot reconstruction ``Ot(D)`` stays roughly flat (it touches each
  node/arc once, regardless of how long the history is);
* history extraction ``H(D)`` grows with the annotation count;
* a Chorel annotation query grows with the number of matching
  annotations, not with total history length.
"""

import pytest

from repro import (
    ChorelEngine,
    build_doem,
    encoded_history,
    random_database,
    random_history,
    snapshot_at,
)

STEPS = [2, 8, 32]


def make_doem(steps):
    db = random_database(seed=99, nodes=60)
    history = random_history(db, seed=99, steps=steps, set_size=8)
    return build_doem(db, history), history


@pytest.mark.parametrize("steps", STEPS)
def test_doem_size_vs_history(benchmark, steps, record_artifact):
    def build():
        return make_doem(steps)[0]

    doem = benchmark(build)
    record_artifact(
        f"scale_size_steps{steps}",
        f"steps={steps} annotations={doem.annotation_count()} "
        f"nodes={len(doem.graph)} arcs={doem.graph.arc_count()}")
    # Linear growth in the history, not quadratic blow-up (each change
    # set holds at most set_size+1 operations -- create/link pairs may
    # overshoot by one).
    assert doem.annotation_count() <= steps * 9


@pytest.mark.parametrize("steps", STEPS)
def test_snapshot_cost_vs_history(benchmark, steps):
    doem, history = make_doem(steps)
    middle = history.timestamps()[len(history) // 2]
    snapshot = benchmark(snapshot_at, doem, middle)
    snapshot.check()


@pytest.mark.parametrize("steps", STEPS)
def test_history_extraction_cost(benchmark, steps):
    doem, history = make_doem(steps)
    extracted = benchmark(encoded_history, doem)
    assert extracted == history


@pytest.mark.parametrize("steps", STEPS)
def test_annotation_query_cost_vs_history(benchmark, steps):
    doem, _ = make_doem(steps)
    engine = ChorelEngine(doem, name="root")
    result = benchmark(engine.run,
                       "select root.<add at T>item where T >= 1Jan97")
    assert result is not None
