"""Shared benchmark fixtures and the artifact sink.

Every benchmark regenerates a paper artifact (figure or worked example)
and measures the operation behind it.  Regenerated artifacts are written
to ``benchmarks/artifacts/<exp-id>.txt`` so EXPERIMENTS.md can point at
concrete output, and also printed (visible with ``pytest -s``).
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

_REPO_ROOT = Path(__file__).resolve().parent.parent
if str(_REPO_ROOT) not in sys.path:
    sys.path.insert(0, str(_REPO_ROOT))

from tests.conftest import make_guide_db, make_guide_history  # noqa: E402

ARTIFACTS = Path(__file__).resolve().parent / "artifacts"


@pytest.fixture(scope="session")
def artifact_dir() -> Path:
    """The artifacts directory (created on first use)."""
    ARTIFACTS.mkdir(exist_ok=True)
    return ARTIFACTS


@pytest.fixture
def record_artifact(artifact_dir):
    """Write (and echo) one named artifact."""

    def write(exp_id: str, text: str) -> None:
        path = artifact_dir / f"{exp_id}.txt"
        path.write_text(text + "\n", encoding="utf-8")
        print(f"\n===== artifact {exp_id} ({path}) =====")
        print(text)

    return write


@pytest.fixture
def guide_db():
    """The Figure 2 OEM database."""
    return make_guide_db()


@pytest.fixture
def guide_history():
    """The Example 2.3 history."""
    return make_guide_history()


@pytest.fixture
def guide_doem(guide_db, guide_history):
    """The Figure 4 DOEM database."""
    from repro import build_doem
    return build_doem(guide_db, guide_history)
