"""Experiment bench-parallel -- the parallel execution layer.

Measures what :mod:`repro.parallel` buys and, more importantly for CI,
*proves what it preserves*: every timed run is also an equivalence check
against the serial engine, and the counts land in
``benchmarks/artifacts/BENCH_parallel.json`` (a metrics-registry JSON
export).  The CI bench-regression job compares the deterministic
equivalence counters in that artifact against the committed baseline
(``benchmarks/baselines/BENCH_parallel_baseline.json``) -- a divergence
means the parallel layer stopped evaluating the same workload, or
stopped agreeing with the serial engine.

The main benchmark runs at *bench scale*: two
:func:`repro.sources.generators.large_world` worlds of ~20k nodes each
(several hundred times the property-test worlds), big enough that
process-pool sharding amortizes its per-task overhead.  On a multi-core
machine the sharded pass must beat the serial pass outright --
``wall.ratio`` (sharded seconds / serial seconds) is recorded in the
artifact together with ``wall.cpus``, and ``check_bench_baseline.py``
fails the build when a machine with two or more cores reports a ratio
at or above 1.0.  Wall times themselves are recorded for inspection but
never compared across machines.

The rule-probe queries are chosen so every rewrite pass does work on
this workload; the baseline check also fails if any single
``plan.rules_fired.*`` counter stays at zero.
"""

from __future__ import annotations

import os
from time import perf_counter

import pytest

from repro import ChorelEngine, IndexedChorelEngine, ParallelExecutor
from repro import metrics_registry
from repro.parallel import WorkerPool
from repro.plan.rules import RULE_NAMES
from repro.sources import large_world
from tests.test_differential_index import make_world, world_queries

from test_index_ablation import metrics_json

# Bench-scale worlds: ~20k nodes / ~3.2k history ops each, several
# hundred times the 32-node worlds the property tests sweep.
WORLD_SEEDS = (0, 3)
WORLD = dict(items=4000, extra_links=1600, steps=8, churn=400)
SHARD_WORKERS = 4
POLLING = {0: "4Jan97"}

# One probe per rewrite rule (the pinned/virtual/range trio needs the
# indexed engine; the reorder probe fires on any planner engine):
#   1. pinned literal      -> annotation-literal-pushdown + index-selection
#   2. polling-time t[0]   -> virtual-at-expansion (+ pushdown + selection)
#   3. range on T          -> index-selection via interval folding
#   4. path-then-pure where-> predicate-reorder (pure conjunct hoisted)
RULE_QUERIES = (
    "select X from root.<add at 3Jan97>item X",
    "select X from root.<add at t[0]>item X",
    "select T, X from root.<add at T>item X where T >= 2Jan97 and T <= 5Jan97",
    "select R, T from root.item R, R.price<upd at T> P "
    "where R.info.a < 50 and T >= 3Jan97",
)

# The timed workload: first from-item binds cheaply (one label lookup),
# the predicate walks paths per row -- exactly the shape where Exchange
# ships rows to workers and the per-row walk dominates the pickling.
HEAVY_QUERIES = (
    "select R from root.item R where R.#.a < 10",
    "select R from root.item R where exists S in R.link: S.price < R.price",
    "select R, L from root.item R, R.link L, L.link M "
    "where M.info.a < R.info.a and L.price < 700",
    "select R, T from root.item R, R.price<upd at T> P "
    "where R.info.a < 50 and T >= 3Jan97",
    'select R from root.item R where R.name like "%a%" and R.price < 800',
    "select X from root.# X where X.price >= 900",
)


def exact_rows(result):
    return [str(row) for row in result]


def plan_counters():
    """The ``repro.plan`` counter family, flattened to plain numbers.

    Histograms (compile latency, batch width) contribute only their
    observation *count* -- the one deterministic part of a series.
    """
    values = {}
    for name, value in metrics_registry().snapshot("repro.plan").items():
        short = name.removeprefix("repro.plan.")
        if isinstance(value, dict):  # histogram snapshot
            values[f"{short}.count"] = value["count"]
        else:
            values[short] = value
    return values


@pytest.mark.slow
def test_parallel_bench(benchmark, artifact_dir):
    """Serial vs. process-sharded vs. batched at bench scale."""
    worlds = [large_world(seed=seed, **WORLD) for seed in WORLD_SEEDS]
    plan_before = plan_counters()
    counts = {"rules_compared": 0, "rules_mismatches": 0,
              "sharded_compared": 0, "sharded_mismatches": 0,
              "batch_compared": 0, "batch_mismatches": 0}

    # -- rule probes: every rewrite pass must do work, and the planned
    # engine must agree with the legacy evaluator row for row.
    for _, _, doem in worlds:
        indexed = IndexedChorelEngine(doem, name="root")
        legacy = IndexedChorelEngine(doem, name="root", use_planner=False)
        for engine in (indexed, legacy):
            engine.set_polling_times(POLLING)
        for query in RULE_QUERIES:
            counts["rules_compared"] += 1
            if exact_rows(indexed.run(query)) != exact_rows(legacy.run(query)):
                counts["rules_mismatches"] += 1
    rule_deltas = {name: value - plan_before.get(name, 0)
                   for name, value in plan_counters().items()
                   if name.startswith("rules_fired.")}
    for name in RULE_NAMES:
        assert rule_deltas.get(f"rules_fired.{name}", 0) > 0, \
            f"rule {name} never fired on the probe workload"

    # -- the timed passes.  Warm runs first: compile caches, path-closure
    # memos, and (for the sharded pass) the forked workers themselves are
    # set up before the clock starts, so the ratio compares steady-state
    # throughput, not pool spin-up.
    engines = [ChorelEngine(doem, name="root") for _, _, doem in worlds]
    for engine in engines:
        for query in HEAVY_QUERIES:
            engine.run(query)

    started = perf_counter()
    serial_results = [[engine.run(query) for query in HEAVY_QUERIES]
                      for engine in engines]
    serial_seconds = perf_counter() - started
    expected = [[exact_rows(result) for result in results]
                for results in serial_results]

    sharded_seconds = 0.0
    for engine, rows in zip(engines, expected):
        with ParallelExecutor(engine, processes=True,
                              max_workers=SHARD_WORKERS) as executor:
            for query in HEAVY_QUERIES:  # warm the forked workers
                executor.run(query)
            started = perf_counter()
            results = [executor.run(query) for query in HEAVY_QUERIES]
            sharded_seconds += perf_counter() - started
        for result, serial_rows in zip(results, rows):
            counts["sharded_compared"] += 1
            if exact_rows(result) != serial_rows:
                counts["sharded_mismatches"] += 1

    pool = WorkerPool(SHARD_WORKERS, metrics_prefix="bench.pool")
    started = perf_counter()
    batch_results = [ParallelExecutor(engine, pool=pool).run_many(
        HEAVY_QUERIES) for engine in engines]
    batch_seconds = perf_counter() - started
    for results, rows in zip(batch_results, expected):
        for result, serial_rows in zip(results, rows):
            counts["batch_compared"] += 1
            if exact_rows(result) != serial_rows:
                counts["batch_mismatches"] += 1

    # Planner counters across all passes -- captured *before* the
    # pytest-benchmark call below, whose rep count varies by machine and
    # would make the deltas non-deterministic.
    plan_deltas = {name: value - plan_before.get(name, 0)
                   for name, value in plan_counters().items()}

    # The timed figure CI displays: one serial heavy query, steady state.
    benchmark(lambda: engines[0].run(HEAVY_QUERIES[1]))

    assert counts["rules_mismatches"] == 0
    assert counts["sharded_mismatches"] == 0
    assert counts["batch_mismatches"] == 0

    pool_stats = {name.split(".")[-1]: value
                  for name, value in pool.stats().items()
                  if isinstance(value, (int, float))}
    assert pool_stats["submitted"] > 0
    assert pool_stats["completed"] > 0
    pool.shutdown()

    assert serial_seconds > 0 and sharded_seconds > 0
    artifact = metrics_json(
        "bench_parallel",
        params={"worlds": len(worlds),
                "items": WORLD["items"],
                "steps": WORLD["steps"],
                "rule_queries": len(RULE_QUERIES) * len(worlds),
                "queries": len(HEAVY_QUERIES) * len(worlds),
                "shard_workers": SHARD_WORKERS},
        equivalence=counts,
        wall={"serial_seconds": round(serial_seconds, 6),
              "sharded_seconds": round(sharded_seconds, 6),
              "batch_seconds": round(batch_seconds, 6),
              "ratio": round(sharded_seconds / serial_seconds, 6),
              "cpus": os.cpu_count() or 1},
        plan=plan_deltas,
        pool=pool_stats)
    path = artifact_dir / "BENCH_parallel.json"
    path.write_text(artifact + "\n", encoding="utf-8")
    print(f"\n===== artifact BENCH_parallel ({path}) =====")
    print(artifact)


@pytest.mark.parametrize("width", (1, 2, 4))
def test_sharded_run_wall_time(benchmark, width):
    """Per-width timing of the sharded path (identical rows asserted)."""
    _, history, doem = make_world(5, nodes=48, steps=6, set_size=10)
    engine = ChorelEngine(doem, name="root")
    queries = world_queries(history)
    expected = [exact_rows(engine.run(query)) for query in queries]
    with ParallelExecutor(engine, max_workers=width) as executor:
        got = benchmark(
            lambda: [exact_rows(executor.run(query)) for query in queries])
    assert got == expected


def test_concurrent_qss_wall_time(benchmark):
    """A multi-subscription polling cycle through the concurrent server."""
    from repro import QSSServer, Wrapper
    from tests.parallel.test_qss_concurrent import ScriptedSource, subscription

    def cycle():
        server = QSSServer(start="1Dec96", deliver_empty=True,
                           max_poll_workers=4)
        for i in range(6):
            server.register_wrapper(f"s{i}", Wrapper(ScriptedSource(),
                                                     name="guide"))
            server.subscribe(subscription(f"sub{i}"), f"s{i}")
        with server:
            return len(server.run_until("8Dec96"))

    delivered = benchmark(cycle)
    assert delivered == 6 * 7  # six subscriptions, seven daily polls


def test_indexed_engine_parallel_consistency(benchmark):
    """The indexed engine under run_many keeps its pushdown accounting."""
    _, history, doem = make_world(9, nodes=32, steps=5, set_size=8)
    queries = world_queries(history)
    engine = IndexedChorelEngine(doem, name="root")
    expected = [exact_rows(engine.run(query)) for query in queries]

    def batch():
        return engine.run_many(queries, max_workers=SHARD_WORKERS)

    results = benchmark(batch)
    assert [exact_rows(result) for result in results] == expected
    assert engine.stats.indexed_queries > 0
