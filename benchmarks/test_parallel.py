"""Experiment bench-parallel -- the parallel execution layer.

Measures what :mod:`repro.parallel` buys and, more importantly for CI,
*proves what it preserves*: every timed run is also an equivalence check
against the serial engine, and the counts land in
``benchmarks/artifacts/BENCH_parallel.json`` (a metrics-registry JSON
export).  The CI bench-regression job compares the deterministic
equivalence counters in that artifact against the committed baseline
(``benchmarks/baselines/BENCH_parallel_baseline.json``) -- a divergence
means the parallel layer stopped evaluating the same workload, or
stopped agreeing with the serial engine.  Wall times are recorded for
inspection but never compared across machines.
"""

from __future__ import annotations

from time import perf_counter

import pytest

from repro import ChorelEngine, IndexedChorelEngine, ParallelExecutor
from repro import metrics_registry
from repro.parallel import WorkerPool
from tests.test_differential_index import make_world, world_queries

from test_index_ablation import metrics_json

WORLD_SEEDS = (0, 3, 7, 11)
SHARD_WIDTHS = (1, 2, 4)
POOL_WIDTH = 4


def build_workload():
    workload = []
    for seed in WORLD_SEEDS:
        _, history, doem = make_world(seed, nodes=32, steps=5, set_size=8)
        workload.append((ChorelEngine(doem, name="root"),
                         world_queries(history)))
    return workload


def exact_rows(result):
    return [str(row) for row in result]


def plan_counters():
    """The ``repro.plan`` counter family, flattened to plain numbers.

    The ``compile_seconds`` histogram contributes only its observation
    *count* -- the one deterministic part of a latency series.
    """
    values = {}
    for name, value in metrics_registry().snapshot("repro.plan").items():
        short = name.removeprefix("repro.plan.")
        if isinstance(value, dict):  # histogram snapshot
            values[f"{short}.count"] = value["count"]
        else:
            values[short] = value
    return values


def test_parallel_bench(benchmark, artifact_dir):
    """Serial vs. sharded vs. batched, one artifact with the counters."""
    workload = build_workload()
    plan_before = plan_counters()

    started = perf_counter()
    expected = [[exact_rows(engine.run(query)) for query in queries]
                for engine, queries in workload]
    serial_seconds = perf_counter() - started

    pool = WorkerPool(POOL_WIDTH, metrics_prefix="bench.pool")
    counts = {"sharded_compared": 0, "sharded_mismatches": 0,
              "batch_compared": 0, "batch_mismatches": 0}

    def sharded_pass():
        for (engine, queries), rows in zip(workload, expected):
            for width in SHARD_WIDTHS:
                with ParallelExecutor(engine, max_workers=width) as executor:
                    for query, serial_rows in zip(queries, rows):
                        counts["sharded_compared"] += 1
                        if exact_rows(executor.run(query)) != serial_rows:
                            counts["sharded_mismatches"] += 1

    def batch_pass():
        for (engine, queries), rows in zip(workload, expected):
            executor = ParallelExecutor(engine, pool=pool)
            results = executor.run_many(queries)
            for result, serial_rows in zip(results, rows):
                counts["batch_compared"] += 1
                if exact_rows(result) != serial_rows:
                    counts["batch_mismatches"] += 1

    started = perf_counter()
    sharded_pass()
    sharded_seconds = perf_counter() - started

    started = perf_counter()
    batch_pass()
    batch_seconds = perf_counter() - started

    # Planner counters across the serial + sharded + batch passes --
    # captured *before* the pytest-benchmark call below, whose rep count
    # varies by machine and would make the deltas non-deterministic.
    plan_deltas = {name: value - plan_before.get(name, 0)
                   for name, value in plan_counters().items()}

    # The timed figure CI displays: one batched pass over the workload.
    benchmark(lambda: [ParallelExecutor(engine, pool=pool).run_many(queries)
                       for engine, queries in workload])

    assert counts["sharded_mismatches"] == 0
    assert counts["batch_mismatches"] == 0

    pool_stats = {name.split(".")[-1]: value
                  for name, value in pool.stats().items()
                  if isinstance(value, (int, float))}
    assert pool_stats["submitted"] > 0
    assert pool_stats["completed"] > 0
    pool.shutdown()

    artifact = metrics_json(
        "bench_parallel",
        params={"worlds": len(workload),
                "queries": sum(len(q) for _, q in workload),
                "shard_widths": len(SHARD_WIDTHS),
                "pool_width": POOL_WIDTH},
        equivalence=counts,
        wall={"serial_seconds": round(serial_seconds, 6),
              "sharded_seconds": round(sharded_seconds, 6),
              "batch_seconds": round(batch_seconds, 6)},
        plan=plan_deltas,
        pool=pool_stats)
    path = artifact_dir / "BENCH_parallel.json"
    path.write_text(artifact + "\n", encoding="utf-8")
    print(f"\n===== artifact BENCH_parallel ({path}) =====")
    print(artifact)


@pytest.mark.parametrize("width", SHARD_WIDTHS)
def test_sharded_run_wall_time(benchmark, width):
    """Per-width timing of the sharded path (identical rows asserted)."""
    _, history, doem = make_world(5, nodes=48, steps=6, set_size=10)
    engine = ChorelEngine(doem, name="root")
    queries = world_queries(history)
    expected = [exact_rows(engine.run(query)) for query in queries]
    with ParallelExecutor(engine, max_workers=width) as executor:
        got = benchmark(
            lambda: [exact_rows(executor.run(query)) for query in queries])
    assert got == expected


def test_concurrent_qss_wall_time(benchmark):
    """A multi-subscription polling cycle through the concurrent server."""
    from repro import QSSServer, Subscription, Wrapper
    from tests.parallel.test_qss_concurrent import ScriptedSource, subscription

    def cycle():
        server = QSSServer(start="1Dec96", deliver_empty=True,
                           max_poll_workers=4)
        for i in range(6):
            server.register_wrapper(f"s{i}", Wrapper(ScriptedSource(),
                                                     name="guide"))
            server.subscribe(subscription(f"sub{i}"), f"s{i}")
        with server:
            return len(server.run_until("8Dec96"))

    delivered = benchmark(cycle)
    assert delivered == 6 * 7  # six subscriptions, seven daily polls


def test_indexed_engine_parallel_consistency(benchmark):
    """The indexed engine under run_many keeps its pushdown accounting."""
    _, history, doem = make_world(9, nodes=32, steps=5, set_size=8)
    queries = world_queries(history)
    engine = IndexedChorelEngine(doem, name="root")
    expected = [exact_rows(engine.run(query)) for query in queries]

    def batch():
        return engine.run_many(queries, max_workers=POOL_WIDTH)

    results = benchmark(batch)
    assert [exact_rows(result) for result in results] == expected
    assert engine.stats.indexed_queries > 0
