"""Experiment fig6 -- Figure 6 / Example 6.1: the QSS data flow.

Regenerates the paper's three-poll walkthrough and asserts its exact
notification sequence: {Bangkok Cuisine, Janta} at t1, nothing at t2,
{Hakata} at t3.  Measures one full polling cycle (poll -> diff -> DOEM
fold -> filter query).
"""

from repro import (
    COMPLEX,
    OEMDatabase,
    QSSServer,
    Subscription,
    Wrapper,
    parse_timestamp,
)


class ScriptedGuideSource:
    """Example 2.2's timeline: Hakata appears on 1Jan97."""

    def __init__(self):
        self.now = None

    def advance(self, when):
        self.now = parse_timestamp(when)

    def export(self):
        db = OEMDatabase(root="guide")
        counter = [0]

        def atom(value):
            counter[0] += 1
            return db.create_node(f"a{counter[0]}", value)

        names = ["Bangkok Cuisine", "Janta"]
        if self.now is not None and self.now >= parse_timestamp("1Jan97"):
            names.append("Hakata")
        for index, name in enumerate(names):
            node = db.create_node(f"r{index}", COMPLEX)
            db.add_arc("guide", "restaurant", node)
            db.add_arc(node, "name", atom(name))
        return db


def example61_run():
    server = QSSServer(start="30Dec96 10:00am", deliver_empty=True)
    server.register_wrapper("guide", Wrapper(ScriptedGuideSource(),
                                             name="guide"))
    server.subscribe(Subscription.from_definitions(
        name="Restaurants", frequency="every night at 11:30pm",
        polling="define polling query Restaurants as "
                "select guide.restaurant",
        filter_="define filter query NewRestaurants as "
                "select Restaurants.restaurant<cre at T> where T > t[-1]"),
        "guide")
    return server, server.run_until("2Jan97")


def test_fig6_example61_timeline(benchmark, record_artifact):
    server, notifications = benchmark(example61_run)

    sizes = [len(n.result) for n in notifications]
    assert sizes == [2, 0, 1], "the paper's t1/t2/t3 walkthrough"
    assert notifications[0].polling_time == parse_timestamp("30Dec96 11:30pm")
    assert notifications[2].polling_time == parse_timestamp("1Jan97 11:30pm")

    doem = server.doems.doem("Restaurants")
    hakata_ref = notifications[2].result.first().scalar()
    names = [doem.graph.value(child)
             for child in doem.graph.children(hakata_ref.node, "name")]
    assert names == ["Hakata"]

    lines = [f"t{n.poll_index} = {n.polling_time}: "
             f"{len(n.result)} object(s)" for n in notifications]
    record_artifact("fig6_qss",
                    "Example 6.1 notification timeline "
                    "(paper expects 2 / 0 / 1):\n" + "\n".join(lines))


def test_fig6_single_poll_cycle_cost(benchmark):
    """The per-poll cost: poll + OEMdiff + DOEM fold + filter query."""
    from repro import RestaurantGuideSource

    source = RestaurantGuideSource(seed=11, initial_restaurants=12,
                                   events_per_day=3.0)
    server = QSSServer(start="1Dec96", deliver_empty=True)
    server.register_wrapper("guide", Wrapper(source, name="guide"))
    server.subscribe(Subscription(
        name="S", frequency="every day at 6:00pm",
        polling_query="select guide.restaurant",
        filter_query="select S.restaurant<cre at T> where T > t[-1]"),
        "guide")
    server.run_until("3Dec96")  # warm up: two polls already folded
    state = server.subscriptions.get("S")

    def one_cycle():
        when = state.next_poll
        return server._execute_poll(state, when)

    benchmark.pedantic(one_cycle, rounds=5, iterations=1)
