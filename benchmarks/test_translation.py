"""Experiment ex5.1 -- the Chorel -> Lorel translation of Section 5.

Regenerates the Example 5.1 translated query text, verifies the two
backends answer identically, and measures translation and
translated-query evaluation against the native engine -- the overhead the
paper's Section 7 "more efficient translation" item worries about.
"""

import pytest

from repro import ChorelEngine, TranslatingChorelEngine, build_doem
from tests.conftest import make_guide_db, make_guide_history

EX45_QUERY = ('select N from guide.restaurant R, R.name N '
              'where R.<add at T>price = "moderate" and T >= 1Jan97')


@pytest.fixture(scope="module")
def doem():
    return build_doem(make_guide_db(), make_guide_history())


def test_ex51_translation_text(benchmark, record_artifact, doem):
    engine = TranslatingChorelEngine(doem, name="guide")
    translation = benchmark(engine.translate, EX45_QUERY)
    text = translation.text()
    # The Example 5.1 shape: nested exists over &price-history/&target/&add
    # with the &val value access.
    for piece in ("&price-history", "&target", "&add", "&val", "exists"):
        assert piece in text, text
    record_artifact("ex5_1_translation",
                    f"Chorel:\n{EX45_QUERY}\n\nLorel translation:\n{text}")


def test_backends_agree_on_paper_queries(doem):
    native = ChorelEngine(doem, name="guide")
    translating = TranslatingChorelEngine(doem, name="guide")
    queries = [
        "select guide.restaurant where guide.restaurant.price < 20.5",
        "select guide.<add>restaurant",
        "select guide.<add at T>restaurant where T < 4Jan97",
        "select N, T, NV from guide.restaurant.price<upd at T to NV>, "
        "guide.restaurant.name N where T >= 1Jan97 and NV > 15",
        EX45_QUERY,
    ]
    for query in queries:
        assert sorted(map(str, native.run(query))) == \
            sorted(map(str, translating.run(query))), query


@pytest.mark.parametrize("backend", ["native", "translated"])
def test_backend_evaluation_cost(benchmark, doem, backend, record_artifact):
    """Native DOEM evaluation vs. Lorel-over-encoding (same query)."""
    if backend == "native":
        engine = ChorelEngine(doem, name="guide")
    else:
        engine = TranslatingChorelEngine(doem, name="guide")
    result = benchmark(engine.run, EX45_QUERY)
    assert len(result) == 0  # the paper's data has no added price arc


@pytest.mark.parametrize("backend", ["native", "translated"])
@pytest.mark.parametrize("scale", [20, 80])
def test_backend_cost_vs_scale(benchmark, backend, scale):
    """The translation overhead as the database grows."""
    from repro import random_database, random_history
    db = random_database(seed=scale, nodes=scale)
    history = random_history(db, seed=scale, steps=4, set_size=scale // 5)
    doem = build_doem(db, history)
    if backend == "native":
        engine = ChorelEngine(doem, name="root")
    else:
        engine = TranslatingChorelEngine(doem, name="root")
    query = "select X, OV from root.#.price<upd at T from OV> X"
    result = benchmark(engine.run, query)
    assert result is not None


def test_encoding_setup_cost(benchmark, doem):
    """The one-time cost the translated backend pays up front."""
    def build():
        return TranslatingChorelEngine(doem, name="guide")
    engine = benchmark(build)
    assert engine.encoded.oem is not None
