"""Experiment fig2 -- Figure 2: the Guide OEM database.

Regenerates the Figure 2 database and checks its load-bearing properties:
heterogeneous prices (int vs. string), heterogeneous addresses (flat vs.
structured), a shared parking object with two parents, and the
parking/nearby-eats cycle.  Measures construction plus validity checking.
"""

from repro import COMPLEX
from tests.conftest import make_guide_db


def build_and_check():
    db = make_guide_db()
    db.check()
    return db


def test_fig2_guide_database(benchmark, record_artifact):
    db = benchmark(build_and_check)

    # heterogeneity: one int price, one string price, one missing
    price_types = sorted(type(db.value(p)).__name__
                         for r in db.children(db.root, "restaurant")
                         for p in db.children(r, "price"))
    assert price_types == ["int", "str"]

    # the shared parking object has two distinct parents
    parents = sorted(set(db.parents("n7")) - {"n7"})
    assert parents == ["r1", "r2"]

    # the cycle: r1 -> parking -> nearby-eats -> r1
    assert db.has_arc("r1", "parking", "n7")
    assert db.has_arc("n7", "nearby-eats", "r1")

    record_artifact("fig2_oem_guide",
                    f"nodes={len(db)} arcs={db.arc_count()}\n"
                    f"price value types: {price_types}\n"
                    f"shared parking parents: {parents}\n\n"
                    + db.describe())


def test_fig2_serialization_round_trip(benchmark):
    """The OEM interchange format on the Figure 2 graph (cycles included)."""
    from repro import dumps, loads
    db = make_guide_db()

    def round_trip():
        return loads(dumps(db))

    restored = benchmark(round_trip)
    assert restored.same_as(db)
