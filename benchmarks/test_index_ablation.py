"""Experiment bench-index -- annotation indexes (Section 7 future work).

"Designing indexes on annotations (based on their types and timestamps)
and studying the use of such indexes" -- the paper leaves this open; we
built :class:`repro.lore.indexes.AnnotationIndex` and measure what it
buys over the evaluator's full scan for the QSS workhorse question
"which objects were created in (t[-1], t[0]]?".

Expected shape: the indexed lookup wins by orders of magnitude on large
histories, at a one-time rebuild cost linear in the annotation count.
"""

import pytest

from repro import (
    AnnotationIndex,
    ChorelEngine,
    build_doem,
    parse_timestamp,
    random_database,
    random_history,
)

SCALES = [10, 40]


def make_doem(steps):
    db = random_database(seed=4242, nodes=80)
    history = random_history(db, seed=4242, steps=steps, set_size=10)
    return build_doem(db, history), history


@pytest.mark.parametrize("steps", SCALES)
def test_engine_scan(benchmark, steps):
    """Baseline: the Chorel engine's full evaluation."""
    doem, history = make_doem(steps)
    engine = ChorelEngine(doem, name="root")
    times = history.timestamps()
    low = times[len(times) // 2]
    # '#' cannot carry annotations, so the scan walks every reachable
    # object and probes creation times through a %-pattern step.
    query = f"select T from root.# X, X.%<cre at T> where T > {low}"

    def scan():
        return engine.run(query)

    result = benchmark(scan)
    assert result is not None


@pytest.mark.parametrize("steps", SCALES)
def test_indexed_lookup(benchmark, steps, record_artifact):
    """The AnnotationIndex answering the same time-interval question."""
    doem, history = make_doem(steps)
    index = AnnotationIndex(doem)
    times = history.timestamps()
    low = times[len(times) // 2]

    def lookup():
        return index.between("cre", low)

    hits = benchmark(lookup)
    record_artifact(f"index_hits_steps{steps}",
                    f"steps={steps} total cre={index.count('cre')} "
                    f"hits after {low}: {len(hits)}")

    # Cross-check against a direct annotation walk (ground truth).
    expected = sorted(
        node for node, annotations in doem.annotated_nodes()
        for annotation in annotations
        if type(annotation).__name__ == "Cre" and annotation.at > low)
    assert sorted(node for _, node in hits) == expected


@pytest.mark.parametrize("steps", SCALES)
def test_index_rebuild_cost(benchmark, steps):
    """The price of the index: a full rebuild scan."""
    doem, _ = make_doem(steps)
    index = benchmark(AnnotationIndex, doem)
    assert index.count("cre") + index.count("add") > 0


@pytest.mark.parametrize("backend", ["normal", "indexed"])
@pytest.mark.parametrize("steps", SCALES)
def test_engine_level_ablation(benchmark, backend, steps):
    """The full QSS filter-query shape, normal engine vs. IndexedChorelEngine.

    This is the end-to-end version of the scan-vs-index comparison: the
    query is exactly what a subscription's filter query looks like, and
    the indexed engine must return identical rows (asserted) while paying
    only the interval lookup plus backward path verification.
    """
    from repro import ChorelEngine, IndexedChorelEngine

    doem, history = make_doem(steps)
    times = history.timestamps()
    low = times[len(times) // 2]
    query = f"select T, X from root.<add at T>item X where T > {low}"

    normal = ChorelEngine(doem, name="root")
    expected = sorted(map(str, normal.run(query)))

    if backend == "normal":
        engine = normal
    else:
        engine = IndexedChorelEngine(doem, name="root")

    result = benchmark(engine.run, query)
    assert sorted(map(str, result)) == expected
    if backend == "indexed":
        assert engine.last_plan is not None
