"""Experiment bench-index -- annotation indexes (Section 7 future work).

"Designing indexes on annotations (based on their types and timestamps)
and studying the use of such indexes" -- the paper leaves this open; we
built :class:`repro.lore.indexes.AnnotationIndex` and measure what it
buys over the evaluator's full scan for the QSS workhorse question
"which objects were created in (t[-1], t[0]]?".

Expected shape: the indexed lookup wins by orders of magnitude on large
histories, at a one-time rebuild cost linear in the annotation count.
"""

import pytest

from repro import (
    AddArc,
    AnnotationIndex,
    ChangeSet,
    ChorelEngine,
    CreNode,
    IndexedChorelEngine,
    OEMDatabase,
    OEMHistory,
    SnapshotCache,
    TimestampIndex,
    build_doem,
    parse_timestamp,
    random_database,
    random_history,
    snapshot_at,
)

SCALES = [10, 40]


def metrics_json(exp_id, **series):
    """Benchmark counters as a registry JSON export.

    A scratch :class:`MetricsRegistry` (not the process-global one, so
    artifact values are deterministic per benchmark instance) is filled
    with gauges named ``<exp_id>.<series>.<field>`` and dumped through
    the same ``export_json`` the observability docs describe -- the
    artifact format is exactly what a metrics scrape of the experiment
    would look like.
    """
    from repro.obs.metrics import MetricsRegistry

    scratch = MetricsRegistry()
    for prefix, values in series.items():
        if not isinstance(values, dict):
            values = {"value": values}
        for name, value in values.items():
            scratch.gauge(f"{exp_id}.{prefix}.{name}").set(value)
    return scratch.export_json()


def make_doem(steps):
    db = random_database(seed=4242, nodes=80)
    history = random_history(db, seed=4242, steps=steps, set_size=10)
    return build_doem(db, history), history


def make_append_log(entries):
    """A DOEM shaped like an append-only feed: one ``item`` arc added
    under the root per day.  This is the workload annotation indexes are
    for -- the naive evaluator must visit every ``add`` annotation on the
    root's ``item`` arcs, while the index bisects straight to the tail.
    """
    db = OEMDatabase()
    history = OEMHistory()
    when = parse_timestamp("1Jan97")
    for i in range(entries):
        node = f"i{i}"
        history.append(when, ChangeSet(
            [CreNode(node, i), AddArc("root", "item", node)]))
        when = when.plus(days=1)
    return build_doem(db, history), history


@pytest.mark.parametrize("steps", SCALES)
def test_engine_scan(benchmark, steps):
    """Baseline: the Chorel engine's full evaluation."""
    doem, history = make_doem(steps)
    engine = ChorelEngine(doem, name="root")
    times = history.timestamps()
    low = times[len(times) // 2]
    # '#' cannot carry annotations, so the scan walks every reachable
    # object and probes creation times through a %-pattern step.
    query = f"select T from root.# X, X.%<cre at T> where T > {low}"

    def scan():
        return engine.run(query)

    result = benchmark(scan)
    assert result is not None


@pytest.mark.parametrize("steps", SCALES)
def test_indexed_lookup(benchmark, steps, record_artifact):
    """The TimestampIndex answering the same time-interval question."""
    doem, history = make_doem(steps)
    index = TimestampIndex(doem)
    times = history.timestamps()
    low = times[len(times) // 2]

    def lookup():
        return index.between("cre", low)

    hits = benchmark(lookup)
    index.stats.reset()
    hits = index.between("cre", low)
    record_artifact(f"index_hits_steps{steps}", metrics_json(
        "bench_index.lookup",
        params={"steps": steps},
        cre={"total": index.count("cre"), "hits": len(hits)},
        index=index.stats.as_dict()))

    # Cross-check against a direct annotation walk (ground truth).
    expected = sorted(
        node for node, annotations in doem.annotated_nodes()
        for annotation in annotations
        if type(annotation).__name__ == "Cre" and annotation.at > low)
    assert sorted(node for _, node in hits) == expected


@pytest.mark.parametrize("steps", SCALES)
def test_index_rebuild_cost(benchmark, steps):
    """The price of the index: a full rebuild scan."""
    doem, _ = make_doem(steps)
    index = benchmark(AnnotationIndex, doem)
    assert index.count("cre") + index.count("add") > 0


@pytest.mark.parametrize("backend", ["normal", "indexed"])
@pytest.mark.parametrize("steps", SCALES)
def test_engine_level_ablation(benchmark, backend, steps):
    """The full QSS filter-query shape, normal engine vs. IndexedChorelEngine.

    This is the end-to-end version of the scan-vs-index comparison: the
    query is exactly what a subscription's filter query looks like, and
    the indexed engine must return identical rows (asserted) while paying
    only the interval lookup plus backward path verification.
    """
    doem, history = make_doem(steps)
    times = history.timestamps()
    low = times[len(times) // 2]
    query = f"select T, X from root.<add at T>item X where T > {low}"

    normal = ChorelEngine(doem, name="root")
    expected = sorted(map(str, normal.run(query)))

    if backend == "normal":
        engine = normal
    else:
        engine = IndexedChorelEngine(doem, name="root")

    result = benchmark(engine.run, query)
    assert sorted(map(str, result)) == expected
    if backend == "indexed":
        assert engine.last_plan is not None


@pytest.mark.parametrize("entries", [60, 240])
def test_annotation_visit_reduction(benchmark, entries, record_artifact):
    """Indexed pushdown visits strictly fewer annotations than the scan.

    On the append-log workload the naive engine's ``add_fun`` touches the
    ``add`` annotation of every ``item`` arc ever added under the root;
    the indexed engine bisects the (kind, label) partition and only
    touches the ones inside the ``T > low`` interval.  Row sets are
    asserted identical, so the saving is pure overhead removed.
    """
    doem, history = make_append_log(entries)
    times = history.timestamps()
    low = times[-6]
    query = f"select T, X from root.<add at T>item X where T > {low}"

    naive = ChorelEngine(doem, name="root")
    expected = sorted(map(str, naive.run(query)))
    naive_visits = naive.annotation_visits
    assert expected, "threshold query must match something"

    indexed = IndexedChorelEngine(doem, name="root")
    benchmark(indexed.run, query)

    indexed.reset_counters()
    rows = indexed.run(query)
    assert sorted(map(str, rows)) == expected
    indexed_visits = indexed.annotation_visits
    assert indexed_visits < naive_visits, \
        f"indexed engine visited {indexed_visits} annotations, " \
        f"naive visited {naive_visits}"

    record_artifact(f"index_hits_engine_entries{entries}", metrics_json(
        "bench_index.engine",
        params={"entries": entries, "rows": len(rows)},
        naive={"annotation_visits": naive_visits},
        indexed={"annotation_visits": indexed_visits},
        index=indexed.index.stats.as_dict(),
        path_index=indexed.paths.stats.as_dict(),
        engine=indexed.stats.as_dict()))


@pytest.mark.parametrize("steps", SCALES)
def test_snapshot_cache_time_travel(benchmark, steps, record_artifact):
    """Cached ``Ot(D)`` extraction vs. recomputing every snapshot.

    The probe walks the history's timestamps in ascending order twice.
    Nearly every lookup is served by incremental replay from the nearest
    earlier checkpoint (the LRU keeps only the most recent four, so
    restarting the walk costs a couple of full recomputes, not one per
    probe).  The artifact records the hit-rate counters so the cache's
    behavior is auditable.
    """
    doem, history = make_doem(steps)
    times = history.timestamps()

    def probe():
        cache = SnapshotCache(doem, capacity=4)
        for when in list(times) + list(times):
            cache.snapshot_at(when)
        return cache

    cache = benchmark(probe)
    # Ground truth: the cached result equals the direct computation.
    mid = times[len(times) // 2]
    assert cache.snapshot_at(mid).same_as(snapshot_at(doem, mid))

    record_artifact(f"index_hits_snapshot_steps{steps}", metrics_json(
        "bench_index.snapshot",
        params={"steps": steps, "probes": 2 * len(times), "capacity": 4},
        cache=cache.stats.as_dict()))
