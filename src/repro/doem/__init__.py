"""DOEM (Delta-OEM): OEM graphs annotated with change histories.

Section 3 of the paper: "annotations are tags attached to the nodes and
arcs of an OEM graph that encode the history of basic change operations on
those nodes and arcs.  There is a one-to-one correspondence between
annotations and the basic change operations."

Public surface:

* :mod:`~repro.doem.annotations` -- ``cre``/``upd``/``add``/``rem`` tags;
* :class:`~repro.doem.model.DOEMDatabase` -- Definition 3.1;
* :func:`~repro.doem.build.build_doem` -- ``D(O, H)`` (Section 3.1);
* :mod:`~repro.doem.snapshot` -- ``O0(D)``, ``Ot(D)``, current snapshot;
* :mod:`~repro.doem.extract` -- ``H(D)`` and the feasibility test;
* :mod:`~repro.doem.encoding` -- the DOEM-in-OEM encoding (Section 5.1).
"""

from .annotations import Add, Annotation, Cre, Rem, Upd
from .model import DOEMDatabase
from .build import build_doem
from .snapshot import (
    SnapshotCache,
    SnapshotCacheStats,
    cached_snapshot_at,
    current_snapshot,
    original_snapshot,
    snapshot_at,
    snapshot_cache,
)
from .extract import encoded_history, is_feasible, original_database
from .encoding import decode_doem, encode_doem, EncodedDOEM
from .compact import compact

__all__ = [
    "Annotation",
    "Cre",
    "Upd",
    "Add",
    "Rem",
    "DOEMDatabase",
    "build_doem",
    "snapshot_at",
    "original_snapshot",
    "current_snapshot",
    "SnapshotCache",
    "SnapshotCacheStats",
    "snapshot_cache",
    "cached_snapshot_at",
    "encoded_history",
    "original_database",
    "is_feasible",
    "encode_doem",
    "decode_doem",
    "EncodedDOEM",
    "compact",
]
