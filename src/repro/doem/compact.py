"""DOEM history compaction: trading history for space (Section 6.1).

The paper's third space-conservation idea is "trading accuracy for space
by storing a smaller state at the expense of not being able to detect all
changes accurately".  The cleanest realization is *history truncation*:
:func:`compact` forgets everything before a cutoff time, making the
snapshot at the cutoff the new "original" database.

Guarantees (property-tested):

* ``snapshot_at(compact(D, t), u) == snapshot_at(D, u)`` for every
  ``u >= t`` -- the recent past is untouched;
* ``original_snapshot(compact(D, t)) == snapshot_at(D, t)`` -- the cutoff
  state becomes O0;
* ``encoded_history(compact(D, t))`` is exactly the sub-history of
  ``H(D)`` after ``t``;
* the result is feasible, and smaller or equal in nodes, arcs, and
  annotations.

What is lost is exactly what the paper says must be lost: annotations at
or before ``t`` (a QSS filter query asking about them returns nothing),
and objects that died before ``t`` disappear entirely.
"""

from __future__ import annotations

from ..oem.model import OEMDatabase
from ..timestamps import Timestamp, parse_timestamp
from .annotations import Add, Cre, Rem, Upd
from .model import DOEMDatabase
from .snapshot import snapshot_at

__all__ = ["compact"]


def compact(doem: DOEMDatabase, cutoff: object) -> DOEMDatabase:
    """A new DOEM database with all history at or before ``cutoff`` forgotten.

    ``doem`` is not modified.  Nodes and arcs that were already dead at
    the cutoff are dropped; annotations with timestamps <= cutoff are
    dropped; surviving structure and later history are kept verbatim.
    """
    when = parse_timestamp(cutoff)
    graph = doem.graph

    # The state at the cutoff is the new original snapshot: its nodes are
    # the live ones.  Additionally keep any node *created after* the
    # cutoff (it carries a cre annotation > cutoff) -- it may be dead now
    # but its post-cutoff history must survive.
    base = snapshot_at(doem, when)
    keep: set[str] = set(base.nodes())
    for node, annotations in doem.annotated_nodes():
        if any(isinstance(a, Cre) and a.at > when for a in annotations):
            keep.add(node)
    # Nodes still live *now* must also survive (e.g. linked after cutoff).
    live_now = _live_nodes(doem)
    keep |= live_now

    compacted_graph = OEMDatabase(root=graph.root)
    for node in graph.nodes():
        if node != graph.root and node in keep:
            compacted_graph.create_node(node, graph.value(node))
    if graph.root not in keep:  # pragma: no cover - the root is always live
        keep.add(graph.root)
    compacted_graph._values[graph.root] = graph.value(graph.root)

    compacted = DOEMDatabase(compacted_graph)

    # Arcs: keep an arc iff both endpoints survive AND the arc still
    # matters -- it is live at (or after) the cutoff, or gains an
    # annotation after the cutoff.
    for arc in graph.arcs():
        if arc.source not in keep or arc.target not in keep:
            continue
        annotations = doem.arc_annotations(*arc)
        later = [a for a in annotations if a.at > when]
        live_at_cutoff = doem.arc_live_at(*arc, when)
        if not live_at_cutoff and not later:
            continue
        compacted_graph.add_arc(*arc)
        for annotation in later:
            compacted.annotate_arc(*arc, annotation)
        # An arc that was live at the cutoff but whose first later
        # annotation is an Add would decode as "added twice"; that can't
        # happen in a valid history (live arcs are removed before being
        # re-added), so `later` sequences always alternate correctly.

    # Node annotations: keep only post-cutoff ones.  The "old value" chain
    # stays consistent because upd annotations carry their own old values
    # and the node's base value at the cutoff equals the old value of its
    # first post-cutoff update (by construction of DOEM).
    for node, annotations in doem.annotated_nodes():
        if node not in keep:
            continue
        for annotation in annotations:
            if annotation.at > when:
                compacted.annotate_node(node, annotation)

    return compacted


def _live_nodes(doem: DOEMDatabase) -> set[str]:
    """Nodes reachable through currently-live arcs."""
    from ..timestamps import POS_INF
    graph = doem.graph
    live = {graph.root}
    stack = [graph.root]
    while stack:
        node = stack.pop()
        for _, child in doem.live_children(node, POS_INF):
            if child not in live:
                live.add(child)
                stack.append(child)
    return live
