"""The DOEM database (Definition 3.1).

``D = (O, fN, fA)`` where ``O`` is an OEM database, ``fN`` maps each node
to a finite set of node annotations, and ``fA`` maps each arc to a finite
set of arc annotations.

The underlying OEM graph of a DOEM database is *not* any single snapshot:
removed arcs stay in the graph bearing ``rem`` annotations, and node values
are the **current** values (old values live in ``upd`` annotations).  The
snapshot-extraction functions in :mod:`repro.doem.snapshot` derive any
state from this one structure.
"""

from __future__ import annotations

import weakref
from typing import Iterable, Iterator

from ..errors import DOEMError, UnknownNodeError
from ..oem.model import Arc, OEMDatabase
from ..timestamps import Timestamp, parse_timestamp
from .annotations import Add, Annotation, ArcAnnotation, Cre, NodeAnnotation, Rem, Upd, sort_key

__all__ = ["DOEMDatabase"]


class DOEMDatabase:
    """An OEM graph plus node and arc annotation maps.

    The class wraps (and owns) an :class:`~repro.oem.model.OEMDatabase`;
    use :func:`repro.doem.build.build_doem` to construct one from an OEM
    database and a valid history, or build manually for tests.
    """

    def __init__(self, graph: OEMDatabase | None = None) -> None:
        self.graph = graph if graph is not None else OEMDatabase()
        self._node_annotations: dict[str, list[NodeAnnotation]] = {}
        self._arc_annotations: dict[Arc, list[ArcAnnotation]] = {}
        self._generation = 0
        self._listeners: list[weakref.ref] = []

    # ------------------------------------------------------------------
    # Change tracking (incremental index / cache maintenance)
    # ------------------------------------------------------------------

    @property
    def generation(self) -> int:
        """A counter bumped on every tracked mutation.

        Derived structures (snapshot caches, path indexes) compare this
        against the generation they were built at to detect staleness.
        Mutations through the DOEM API (``annotate_node``,
        ``annotate_arc``, the appliers in :mod:`repro.doem.build`) are
        tracked; raw ``self.graph`` edits should call :meth:`touch`.
        """
        return self._generation

    def fingerprint(self) -> tuple[int, int, int]:
        """A cheap staleness token: (generation, node count, arc count).

        The node/arc counts catch most untracked raw-graph mutations, so
        pull-based caches stay correct even for hand-built databases.
        """
        return (self._generation, len(self.graph), self.graph.arc_count())

    def touch(self) -> None:
        """Record an untracked mutation (bump the generation counter)."""
        self._generation += 1

    def add_annotation_listener(self, listener: object) -> None:
        """Register ``listener`` for incremental annotation maintenance.

        The listener (held weakly) must implement
        ``_on_annotation(subject_kind, subject, annotation)`` where
        ``subject_kind`` is ``"node"`` or ``"arc"``; it is invoked after
        every :meth:`annotate_node` / :meth:`annotate_arc`.
        :class:`~repro.lore.indexes.TimestampIndex` uses this to stay in
        sync as histories are folded in, without rebuild calls.
        """
        self._listeners.append(weakref.ref(listener))

    def remove_annotation_listener(self, listener: object) -> None:
        """Unregister a previously added listener (no-op if absent)."""
        self._listeners = [ref for ref in self._listeners
                           if ref() is not None and ref() is not listener]

    def __getstate__(self) -> dict:
        # Listeners are weakly-held process-local structures (attached
        # indexes, caches); a pickled replica -- e.g. an evaluator shipped
        # to a process-pool worker -- starts with none and re-attaches
        # its own if it needs them.
        state = dict(self.__dict__)
        state["_listeners"] = []
        return state

    def _notify(self, subject_kind: str, subject: object,
                annotation: Annotation) -> None:
        live: list[weakref.ref] = []
        for ref in self._listeners:
            listener = ref()
            if listener is None:
                continue
            live.append(ref)
            listener._on_annotation(subject_kind, subject, annotation)
        self._listeners = live

    # ------------------------------------------------------------------
    # Annotation accessors (fN and fA of Definition 3.1)
    # ------------------------------------------------------------------

    def node_annotations(self, node_id: str) -> tuple[NodeAnnotation, ...]:
        """``fN(n)``: the annotations on node ``n``, in canonical order."""
        if not self.graph.has_node(node_id):
            raise UnknownNodeError(node_id)
        return tuple(self._node_annotations.get(node_id, ()))

    def arc_annotations(self, source: str, label: str, target: str) -> tuple[ArcAnnotation, ...]:
        """``fA(a)``: the annotations on arc ``(source, label, target)``."""
        arc = Arc(source, label, target)
        if not self.graph.has_arc(*arc):
            raise DOEMError(f"no such arc: {arc}")
        return tuple(self._arc_annotations.get(arc, ()))

    def annotate_node(self, node_id: str, annotation: NodeAnnotation) -> None:
        """Attach a ``cre`` or ``upd`` annotation to a node."""
        if not isinstance(annotation, (Cre, Upd)):
            raise DOEMError(f"{annotation} is not a node annotation")
        if not self.graph.has_node(node_id):
            raise UnknownNodeError(node_id)
        annotations = self._node_annotations.setdefault(node_id, [])
        annotations.append(annotation)
        annotations.sort(key=sort_key)
        self._generation += 1
        self._notify("node", node_id, annotation)

    def annotate_arc(self, source: str, label: str, target: str,
                     annotation: ArcAnnotation) -> None:
        """Attach an ``add`` or ``rem`` annotation to an arc."""
        if not isinstance(annotation, (Add, Rem)):
            raise DOEMError(f"{annotation} is not an arc annotation")
        arc = Arc(source, label, target)
        if not self.graph.has_arc(*arc):
            raise DOEMError(f"no such arc: {arc}")
        annotations = self._arc_annotations.setdefault(arc, [])
        annotations.append(annotation)
        annotations.sort(key=sort_key)
        self._generation += 1
        self._notify("arc", arc, annotation)

    # ------------------------------------------------------------------
    # Derived accessors used by Chorel's annotation functions (Sec. 4.2.1)
    # ------------------------------------------------------------------

    def cre_times(self, node_id: str) -> list[Timestamp]:
        """``creFun(n)``: timestamps of ``cre`` annotations (empty or singleton)."""
        return [a.at for a in self.node_annotations(node_id)
                if isinstance(a, Cre)]

    def upd_triples(self, node_id: str) -> list[tuple[Timestamp, object, object]]:
        """``updFun(n)``: ``(time, old value, new value)`` triples.

        The new value is implicit in DOEM (Section 4.2): it is the old
        value of the temporally next ``upd`` annotation, or the node's
        current value when no later update exists.
        """
        updates = [a for a in self.node_annotations(node_id)
                   if isinstance(a, Upd)]
        triples: list[tuple[Timestamp, object, object]] = []
        for index, annotation in enumerate(updates):
            if index + 1 < len(updates):
                new_value = updates[index + 1].old_value
            else:
                new_value = self.graph.value(node_id)
            triples.append((annotation.at, annotation.old_value, new_value))
        return triples

    def add_pairs(self, source: str, label: str) -> list[tuple[Timestamp, str]]:
        """``addFun(n, l)``: ``(time, child)`` pairs for ``add`` annotations."""
        pairs: list[tuple[Timestamp, str]] = []
        for target in self.graph.children(source, label):
            for annotation in self.arc_annotations(source, label, target):
                if isinstance(annotation, Add):
                    pairs.append((annotation.at, target))
        return pairs

    def rem_pairs(self, source: str, label: str) -> list[tuple[Timestamp, str]]:
        """``remFun(n, l)``: ``(time, child)`` pairs for ``rem`` annotations."""
        pairs: list[tuple[Timestamp, str]] = []
        for target in self.graph.children(source, label):
            for annotation in self.arc_annotations(source, label, target):
                if isinstance(annotation, Rem):
                    pairs.append((annotation.at, target))
        return pairs

    # ------------------------------------------------------------------
    # Liveness: which nodes/arcs belong to the snapshot at time t
    # ------------------------------------------------------------------

    def arc_live_at(self, source: str, label: str, target: str,
                    when: object) -> bool:
        """Was the arc present in the snapshot at time ``when``?

        The latest annotation with timestamp <= t decides: ``add`` means
        present, ``rem`` means absent.  With no annotation <= t the arc is
        present iff it existed *originally* -- i.e. it has no annotations
        at all, or its earliest annotation is a ``rem`` (the same rule the
        paper states for ``O0(D)`` in Section 3.2; the paper's literal
        phrasing for ``Ot(D)`` would wrongly include arcs added after ``t``
        between pre-existing nodes, so we use the original-arc rule for the
        no-earlier-annotation case).
        """
        cutoff = parse_timestamp(when)
        annotations = self.arc_annotations(source, label, target)
        latest: ArcAnnotation | None = None
        for annotation in annotations:
            if annotation.at <= cutoff:
                latest = annotation
            else:
                break
        if latest is not None:
            return isinstance(latest, Add)
        return not annotations or isinstance(annotations[0], Rem)

    def value_at(self, node_id: str, when: object) -> object:
        """``v_t(n)``: the node's value at time ``when`` (Section 3.2).

        If there are no updates after ``t``, the value is the current
        value; otherwise it is the old value stored by the earliest update
        whose timestamp exceeds ``t``.
        """
        cutoff = parse_timestamp(when)
        for annotation in self.node_annotations(node_id):
            if isinstance(annotation, Upd) and annotation.at > cutoff:
                return annotation.old_value
        return self.graph.value(node_id)

    def node_existed_at(self, node_id: str, when: object) -> bool:
        """Had the node been created by time ``when``?

        True when the node has no ``cre`` annotation (it belongs to the
        original snapshot) or its creation timestamp is <= ``when``.
        Note: *existence* is necessary but not sufficient for membership
        in the snapshot -- the node must also be reachable at that time.
        """
        cutoff = parse_timestamp(when)
        times = self.cre_times(node_id)
        if not times:
            return True
        return times[0] <= cutoff

    def live_children(self, node_id: str, when: object,
                      label: str | None = None) -> Iterator[tuple[str, str]]:
        """Iterate ``(label, child)`` over arcs from ``node_id`` live at ``when``."""
        for arc in self.graph.out_arcs(node_id):
            if label is not None and arc.label != label:
                continue
            if self.arc_live_at(arc.source, arc.label, arc.target, when):
                yield (arc.label, arc.target)

    def timestamps(self) -> list[Timestamp]:
        """Every distinct timestamp occurring in any annotation, sorted."""
        times: set[Timestamp] = set()
        for annotations in self._node_annotations.values():
            times.update(a.at for a in annotations)
        for annotations in self._arc_annotations.values():
            times.update(a.at for a in annotations)
        return sorted(times)

    def annotation_count(self) -> int:
        """Total number of annotations in the database."""
        return (sum(len(v) for v in self._node_annotations.values())
                + sum(len(v) for v in self._arc_annotations.values()))

    def annotated_arcs(self) -> Iterator[tuple[Arc, tuple[ArcAnnotation, ...]]]:
        """Iterate over ``(arc, annotations)`` for arcs with annotations."""
        for arc, annotations in self._arc_annotations.items():
            yield arc, tuple(annotations)

    def annotated_nodes(self) -> Iterator[tuple[str, tuple[NodeAnnotation, ...]]]:
        """Iterate over ``(node, annotations)`` for nodes with annotations."""
        for node_id, annotations in self._node_annotations.items():
            yield node_id, tuple(annotations)

    def timeline(self, node_id: str) -> list[tuple[Timestamp, str]]:
        """A chronological account of everything that happened to one object.

        The paper's result UI "display[s] both the value and the history
        of the object"; this is that history, as ``(time, event)`` pairs:
        the object's creation and value updates, plus additions/removals
        of its incoming and outgoing arcs.  Events at one instant sort
        deterministically by text.
        """
        from ..oem.values import value_repr

        if not self.graph.has_node(node_id):
            raise UnknownNodeError(node_id)
        events: list[tuple[Timestamp, str]] = []
        updates = [a for a in self.node_annotations(node_id)
                   if isinstance(a, Upd)]
        for annotation in self.node_annotations(node_id):
            if isinstance(annotation, Cre):
                initial = updates[0].old_value if updates \
                    else self.graph.value(node_id)
                events.append((annotation.at,
                               f"created with value {value_repr(initial)}"))
        for when, old, new in self.upd_triples(node_id):
            events.append((when, f"value {value_repr(old)} -> "
                                 f"{value_repr(new)}"))
        for arc in self.graph.out_arcs(node_id):
            for annotation in self.arc_annotations(*arc):
                verb = "gained" if isinstance(annotation, Add) else "lost"
                events.append((annotation.at,
                               f"{verb} {arc.label!r} subobject "
                               f"&{arc.target}"))
        for arc in self.graph.in_arcs(node_id):
            for annotation in self.arc_annotations(*arc):
                verb = "linked from" if isinstance(annotation, Add) \
                    else "unlinked from"
                events.append((annotation.at,
                               f"{verb} &{arc.source} via {arc.label!r}"))
        events.sort(key=lambda event: (event[0], event[1]))
        return events

    # ------------------------------------------------------------------
    # Copying and comparison
    # ------------------------------------------------------------------

    def copy(self) -> "DOEMDatabase":
        """An independent deep copy."""
        clone = DOEMDatabase(self.graph.copy())
        clone._node_annotations = {k: list(v)
                                   for k, v in self._node_annotations.items()}
        clone._arc_annotations = {k: list(v)
                                  for k, v in self._arc_annotations.items()}
        return clone

    def same_as(self, other: "DOEMDatabase") -> bool:
        """Exact equality: identical graphs and identical annotation maps."""
        if not self.graph.same_as(other.graph):
            return False
        mine = {k: tuple(v) for k, v in self._node_annotations.items() if v}
        theirs = {k: tuple(v) for k, v in other._node_annotations.items() if v}
        if mine != theirs:
            return False
        mine_arcs = {k: tuple(v) for k, v in self._arc_annotations.items() if v}
        theirs_arcs = {k: tuple(v) for k, v in other._arc_annotations.items() if v}
        return mine_arcs == theirs_arcs

    def __repr__(self) -> str:
        return (f"<DOEMDatabase nodes={len(self.graph)} "
                f"arcs={self.graph.arc_count()} "
                f"annotations={self.annotation_count()}>")

    def describe(self, max_depth: int = 6) -> str:
        """Readable rendering of the graph with annotations inline."""
        lines = [repr(self)]
        for node_id, annotations in sorted(self._node_annotations.items()):
            if annotations:
                tags = ", ".join(str(a) for a in annotations)
                lines.append(f"  &{node_id}: {tags}")
        for arc, annotations in sorted(self._arc_annotations.items()):
            if annotations:
                tags = ", ".join(str(a) for a in annotations)
                lines.append(f"  {arc}: {tags}")
        return "\n".join(lines)
