"""Snapshot extraction from a DOEM database (Section 3.2).

A DOEM database represents an entire history; three extraction functions
recover individual states:

* :func:`original_snapshot` -- ``O0(D)``, the state before the first
  change set;
* :func:`snapshot_at` -- ``Ot(D)``, the state at an arbitrary time ``t``;
* :func:`current_snapshot` -- the state now (``t = +infinity``).

All three return fresh, fully valid OEM databases whose node identifiers
coincide with the DOEM database's, so results can be compared against
replayed histories directly (the round-trip property tests rely on this).
"""

from __future__ import annotations

from ..oem.model import OEMDatabase
from ..oem.values import COMPLEX
from ..timestamps import NEG_INF, POS_INF, Timestamp, parse_timestamp
from .annotations import Rem, Upd
from .model import DOEMDatabase

__all__ = ["snapshot_at", "original_snapshot", "current_snapshot"]


def snapshot_at(doem: DOEMDatabase, when: object) -> OEMDatabase:
    """``Ot(D)``: the snapshot of the encoded history at time ``when``.

    Implements the preorder traversal of Section 3.2: starting at the
    root, each node's value is computed from its ``upd`` annotations and
    the traversal follows only arcs that were present at time ``when``.
    Nodes not reached (not yet created, or unreachable at that time) are
    absent from the result, exactly as OEM's reachability semantics
    demand.
    """
    cutoff = parse_timestamp(when)
    graph = doem.graph
    result = OEMDatabase(root=graph.root,
                         root_value=_value_at(doem, graph.root, cutoff))
    visited = {graph.root}
    frontier = [graph.root]
    pending_arcs: list[tuple[str, str, str]] = []
    while frontier:
        node = frontier.pop()
        for label, child in doem.live_children(node, cutoff):
            if not doem.node_existed_at(child, cutoff):
                # A live arc to a not-yet-created node cannot arise from a
                # valid history; guard anyway for hand-built databases.
                continue
            if child not in visited:
                visited.add(child)
                result.create_node(child, _value_at(doem, child, cutoff))
                frontier.append(child)
            pending_arcs.append((node, label, child))
    for source, label, target in pending_arcs:
        result.add_arc(source, label, target)
    return result


def _value_at(doem: DOEMDatabase, node_id: str, cutoff: Timestamp) -> object:
    """The node's value at the cutoff (Section 3.2, step 1)."""
    return doem.value_at(node_id, cutoff)


def original_snapshot(doem: DOEMDatabase) -> OEMDatabase:
    """``O0(D)``: the snapshot before any recorded change.

    Per Section 3.2 this contains exactly the nodes without a ``cre``
    annotation; the arcs are those with no annotations or whose earliest
    annotation is a ``rem``.  Implemented as the snapshot "just before the
    first timestamp", which coincides with that description for feasible
    databases and extends it sensibly to infeasible ones.
    """
    return snapshot_at(doem, NEG_INF)


def current_snapshot(doem: DOEMDatabase) -> OEMDatabase:
    """The snapshot "now": all recorded changes applied."""
    return snapshot_at(doem, POS_INF)
