"""Snapshot extraction from a DOEM database (Section 3.2).

A DOEM database represents an entire history; three extraction functions
recover individual states:

* :func:`original_snapshot` -- ``O0(D)``, the state before the first
  change set;
* :func:`snapshot_at` -- ``Ot(D)``, the state at an arbitrary time ``t``;
* :func:`current_snapshot` -- the state now (``t = +infinity``).

All three return fresh, fully valid OEM databases whose node identifiers
coincide with the DOEM database's, so results can be compared against
replayed histories directly (the round-trip property tests rely on this).

For workloads that ask for many snapshots of the same database (time
travel, ``<at T>`` queries, QSS polling), :class:`SnapshotCache` keeps an
LRU set of checkpoint snapshots and serves each ``Ot(D)`` incrementally
from the nearest earlier checkpoint -- replaying only the change sets in
``(checkpoint, t]`` instead of walking the whole annotation graph per
call.  :func:`cached_snapshot_at` is the drop-in cached counterpart of
:func:`snapshot_at`, with one cache attached per DOEM database.
"""

from __future__ import annotations

import threading
import weakref
from collections import OrderedDict

from ..obs.events import emit_event
from ..obs.metrics import CounterField, registry as metrics_registry
from ..obs.trace import span
from ..oem.model import OEMDatabase
from ..oem.values import COMPLEX
from ..timestamps import NEG_INF, POS_INF, Timestamp, parse_timestamp
from .annotations import Rem, Upd
from .model import DOEMDatabase

__all__ = ["snapshot_at", "original_snapshot", "current_snapshot",
           "SnapshotCache", "SnapshotCacheStats", "snapshot_cache",
           "cached_snapshot_at", "peek_snapshot_cache"]


def snapshot_at(doem: DOEMDatabase, when: object) -> OEMDatabase:
    """``Ot(D)``: the snapshot of the encoded history at time ``when``.

    Implements the preorder traversal of Section 3.2: starting at the
    root, each node's value is computed from its ``upd`` annotations and
    the traversal follows only arcs that were present at time ``when``.
    Nodes not reached (not yet created, or unreachable at that time) are
    absent from the result, exactly as OEM's reachability semantics
    demand.
    """
    with span("doem.snapshot"):
        cutoff = parse_timestamp(when)
        graph = doem.graph
        result = OEMDatabase(root=graph.root,
                             root_value=_value_at(doem, graph.root, cutoff))
        visited = {graph.root}
        frontier = [graph.root]
        pending_arcs: list[tuple[str, str, str]] = []
        while frontier:
            node = frontier.pop()
            for label, child in doem.live_children(node, cutoff):
                if not doem.node_existed_at(child, cutoff):
                    # A live arc to a not-yet-created node cannot arise
                    # from a valid history; guard anyway for hand-built
                    # databases.
                    continue
                if child not in visited:
                    visited.add(child)
                    result.create_node(child, _value_at(doem, child, cutoff))
                    frontier.append(child)
                pending_arcs.append((node, label, child))
        for source, label, target in pending_arcs:
            result.add_arc(source, label, target)
        return result


def _value_at(doem: DOEMDatabase, node_id: str, cutoff: Timestamp) -> object:
    """The node's value at the cutoff (Section 3.2, step 1)."""
    return doem.value_at(node_id, cutoff)


def original_snapshot(doem: DOEMDatabase) -> OEMDatabase:
    """``O0(D)``: the snapshot before any recorded change.

    Per Section 3.2 this contains exactly the nodes without a ``cre``
    annotation; the arcs are those with no annotations or whose earliest
    annotation is a ``rem``.  Implemented as the snapshot "just before the
    first timestamp", which coincides with that description for feasible
    databases and extends it sensibly to infeasible ones.
    """
    return snapshot_at(doem, NEG_INF)


def current_snapshot(doem: DOEMDatabase) -> OEMDatabase:
    """The snapshot "now": all recorded changes applied."""
    return snapshot_at(doem, POS_INF)


# ----------------------------------------------------------------------
# Snapshot caching
# ----------------------------------------------------------------------


class SnapshotCacheStats:
    """Counters describing how a :class:`SnapshotCache` earned its keep.

    ``lookups = exact_hits + incremental + full``; ``replayed_sets`` is
    the number of change sets applied on the incremental path (the work a
    full replay from ``O0(D)`` would multiply many times over).

    Counters are registered in the global metrics registry under
    ``repro.snapshot_cache``; the attributes remain the API.
    """

    _FIELDS = ("lookups", "exact_hits", "incremental", "full",
               "replayed_sets", "evictions", "invalidations", "store_hits")

    lookups = CounterField()
    exact_hits = CounterField()
    incremental = CounterField()
    full = CounterField()
    replayed_sets = CounterField()
    evictions = CounterField()
    invalidations = CounterField()
    store_hits = CounterField()

    def __init__(self) -> None:
        self._metrics = metrics_registry().group("repro.snapshot_cache",
                                                 self._FIELDS)

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from a checkpoint (exact or base).

        Durable-checkpoint hits (``store_hits``) count as hits: the
        lookup replayed a bounded suffix instead of walking the whole
        annotation graph, exactly like an in-memory incremental hit.
        """
        if not self.lookups:
            return 0.0
        return (self.exact_hits + self.incremental
                + self.store_hits) / self.lookups

    def reset(self) -> None:
        self._metrics.reset()

    def as_dict(self) -> dict:
        """Raw counters plus the hit rate, for profiles and artifacts."""
        values = {name: getattr(self, name) for name in self._FIELDS}
        values["hit_rate"] = self.hit_rate
        return values

    def describe(self) -> str:
        return (f"lookups={self.lookups} exact_hits={self.exact_hits} "
                f"incremental={self.incremental} full={self.full} "
                f"hit_rate={self.hit_rate:.2f} "
                f"replayed_sets={self.replayed_sets} "
                f"evictions={self.evictions} "
                f"invalidations={self.invalidations} "
                f"store_hits={self.store_hits}")


class SnapshotCache:
    """An LRU checkpoint cache making repeated ``Ot(D)`` calls cheap.

    The cache keeps up to ``capacity`` checkpoint snapshots keyed by their
    timestamp.  A lookup at time ``t``:

    1. returns a copy of the checkpoint at exactly ``t`` when present;
    2. otherwise finds the latest checkpoint at some ``t0 <= t``, copies
       it, and replays only the encoded change sets in ``(t0, t]``
       (Section 3.2 guarantees ``Ot`` equals the replayed prefix, the
       invariant the differential harness re-proves on random histories);
    3. with no usable checkpoint, falls back to the direct annotation
       walk of :func:`snapshot_at`.

    Results of 2 and 3 are themselves cached (LRU eviction).  The cache
    watches the database's fingerprint and drops everything when the
    underlying DOEM database changes, so it is always safe to keep one
    around while folding new history in.

    Thread safety: every lookup/maintenance path runs under one reentrant
    lock, so concurrent ``snapshot_at`` calls from the parallel query
    executor serialize on the cache (each call still returns its own
    private copy).  The lock is per cache, not global -- caches of
    distinct DOEM databases never contend.
    """

    def __init__(self, doem: DOEMDatabase, capacity: int = 8) -> None:
        if capacity < 1:
            raise ValueError("SnapshotCache capacity must be >= 1")
        self.doem = doem
        self.capacity = capacity
        self.stats = SnapshotCacheStats()
        self._checkpoints: OrderedDict[Timestamp, OEMDatabase] = OrderedDict()
        self._history = None  # lazily extracted encoded history
        self._fingerprint: object = None
        self._store_log = None  # durable checkpoints (attach_store)
        self._lock = threading.RLock()

    def attach_store(self, log) -> None:
        """Serve misses through a durable log's checkpoints.

        ``log`` is the :class:`~repro.store.HistoryLog` this DOEM
        database was built from.  After a miss of the in-memory LRU (or
        right after an invalidation empties it), the cache loads the
        log's nearest materialized checkpoint and replays the bounded
        suffix, instead of falling back to the full annotation walk --
        the read-through that turns the cache into a view over the
        store's checkpoints.
        """
        with self._lock:
            self._store_log = log

    # -- freshness -------------------------------------------------------

    def _ensure_fresh(self) -> None:
        fingerprint = self.doem.fingerprint()
        if fingerprint != self._fingerprint:
            if self._fingerprint is not None:
                self.stats.invalidations += 1
            self._checkpoints.clear()
            self._history = None
            self._fingerprint = fingerprint

    def _encoded_history(self):
        if self._history is None:
            from .extract import encoded_history
            self._history = encoded_history(self.doem)
        return self._history

    # -- the cache proper ------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return len(self._checkpoints)

    def checkpoints(self) -> list[Timestamp]:
        """The cached checkpoint times, least- to most-recently used."""
        with self._lock:
            return list(self._checkpoints)

    def clear(self) -> None:
        """Drop every checkpoint (counters are kept)."""
        with self._lock:
            self._checkpoints.clear()

    def _store(self, when: Timestamp, snapshot: OEMDatabase) -> None:
        self._checkpoints[when] = snapshot
        self._checkpoints.move_to_end(when)
        while len(self._checkpoints) > self.capacity:
            evicted, _ = self._checkpoints.popitem(last=False)
            self.stats.evictions += 1
            emit_event("cache_eviction", level="info",
                       cache="snapshot", checkpoint=str(evicted),
                       capacity=self.capacity)

    def snapshot_at(self, when: object) -> OEMDatabase:
        """``Ot(D)`` via the cache; equal to :func:`snapshot_at`'s answer."""
        with span("doem.snapshot.cached"):
            with self._lock:
                return self._snapshot_at(when)

    def _snapshot_at(self, when: object) -> OEMDatabase:
        cutoff = parse_timestamp(when)
        self._ensure_fresh()
        self.stats.lookups += 1

        cached = self._checkpoints.get(cutoff)
        if cached is not None:
            self.stats.exact_hits += 1
            self._checkpoints.move_to_end(cutoff)
            return cached.copy()

        base_time = None
        for candidate in self._checkpoints:
            if candidate <= cutoff and (base_time is None
                                        or candidate > base_time):
                base_time = candidate
        durable = None
        if self._store_log is not None:
            nearest = self._store_log.nearest_checkpoint(cutoff)
            if nearest is not None and (base_time is None
                                        or nearest[0] > base_time):
                durable = nearest
        if durable is not None:
            self.stats.store_hits += 1
            base_time, snapshot = durable
            with span("doem.snapshot.replay"):
                for step_time, change_set in self._encoded_history():
                    if base_time < step_time <= cutoff:
                        change_set.apply_to(snapshot)
                        self.stats.replayed_sets += 1
        elif base_time is None:
            self.stats.full += 1
            snapshot = snapshot_at(self.doem, cutoff)
        else:
            self.stats.incremental += 1
            self._checkpoints.move_to_end(base_time)
            with span("doem.snapshot.replay"):
                snapshot = self._checkpoints[base_time].copy()
                for step_time, change_set in self._encoded_history():
                    if base_time < step_time <= cutoff:
                        change_set.apply_to(snapshot)
                        self.stats.replayed_sets += 1
        self._store(cutoff, snapshot)
        return snapshot.copy()

    def warm(self, times: object) -> None:
        """Precompute checkpoints at each of ``times`` (e.g. poll times)."""
        for when in times:
            self.snapshot_at(when)


_CACHES: "weakref.WeakKeyDictionary[DOEMDatabase, SnapshotCache]" = \
    weakref.WeakKeyDictionary()
_CACHES_LOCK = threading.Lock()


def snapshot_cache(doem: DOEMDatabase, capacity: int = 8) -> SnapshotCache:
    """The per-database :class:`SnapshotCache` (created on first use)."""
    with _CACHES_LOCK:
        cache = _CACHES.get(doem)
        if cache is None or cache.capacity != capacity:
            cache = SnapshotCache(doem, capacity=capacity)
            _CACHES[doem] = cache
        return cache


def peek_snapshot_cache(doem: DOEMDatabase) -> SnapshotCache | None:
    """The database's cache if one exists; never creates one.

    The query profiler uses this to report cache activity without
    perturbing the cache population it is observing.
    """
    with _CACHES_LOCK:
        return _CACHES.get(doem)


def cached_snapshot_at(doem: DOEMDatabase, when: object) -> OEMDatabase:
    """Drop-in cached variant of :func:`snapshot_at`."""
    return snapshot_cache(doem).snapshot_at(when)
