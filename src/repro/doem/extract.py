"""Recovering the encoded history ``H(D)`` and the feasibility test (Section 3.2).

A DOEM database faithfully captures the whole history of the underlying
OEM database: :func:`encoded_history` rebuilds ``H(D)`` from the
annotations, :func:`original_database` rebuilds ``O0(D)``, and
:func:`is_feasible` checks whether a (possibly hand-built) DOEM database
equals ``D(O0(D), H(D))`` -- i.e. whether it could have arisen from *some*
valid history.  For feasible databases the paper proves the pair
``(O0(D), H(D))`` is unique; the round-trip property tests exercise
exactly that claim.
"""

from __future__ import annotations

from ..errors import InvalidChangeError, InvalidHistoryError
from ..oem.changes import AddArc, ChangeOp, CreNode, RemArc, UpdNode
from ..oem.history import ChangeSet, OEMHistory
from ..oem.model import OEMDatabase
from ..timestamps import Timestamp
from .annotations import Add, Cre, Rem, Upd
from .build import build_doem
from .model import DOEMDatabase
from .snapshot import original_snapshot

__all__ = ["encoded_history", "original_database", "is_feasible"]


def encoded_history(doem: DOEMDatabase) -> OEMHistory:
    """``H(D)``: the history encoded by the annotations of ``doem``.

    Following Section 3.2: the timestamps of ``H(D)`` are exactly the
    timestamps occurring in annotations; the change set ``Ui`` at ``ti``
    contains

    1. ``addArc``/``remArc`` for each arc with an ``add(ti)``/``rem(ti)``
       annotation;
    2. ``updNode(n, v)`` for each ``upd(ti, ov)`` annotation, where ``v``
       is the *next* value of ``n`` (the old value of the temporally next
       update, or the current value when none follows);
    3. ``creNode(n, v)`` for each ``cre(ti)`` annotation, with ``v``
       defined the same way (value at creation = old value of the first
       update, or current value if never updated).
    """
    buckets: dict[Timestamp, list[ChangeOp]] = {}

    def bucket(when: Timestamp) -> list[ChangeOp]:
        return buckets.setdefault(when, [])

    graph = doem.graph
    for arc, annotations in doem.annotated_arcs():
        for annotation in annotations:
            if isinstance(annotation, Add):
                bucket(annotation.at).append(AddArc(*arc))
            else:
                bucket(annotation.at).append(RemArc(*arc))

    for node_id, annotations in doem.annotated_nodes():
        updates = [a for a in annotations if isinstance(a, Upd)]
        for index, annotation in enumerate(updates):
            if index + 1 < len(updates):
                next_value = updates[index + 1].old_value
            else:
                next_value = graph.value(node_id)
            bucket(annotation.at).append(UpdNode(node_id, next_value))
        creations = [a for a in annotations if isinstance(a, Cre)]
        for annotation in creations:
            if updates:
                initial_value = updates[0].old_value
            else:
                initial_value = graph.value(node_id)
            bucket(annotation.at).append(CreNode(node_id, initial_value))

    history = OEMHistory()
    for when in sorted(buckets):
        history.append(when, ChangeSet(buckets[when]))
    return history


def original_database(doem: DOEMDatabase) -> OEMDatabase:
    """``O0(D)``: the original snapshot (alias of
    :func:`repro.doem.snapshot.original_snapshot`, re-exported here so the
    extraction API is complete in one module)."""
    return original_snapshot(doem)


def is_feasible(doem: DOEMDatabase) -> bool:
    """Does ``doem`` represent some valid ``(O, H)`` pair?

    Section 3.2: "We construct the original snapshot ``O0(D)`` and the
    encoded history ``H(D)`` for ``D`` as above, and test if
    ``D(O0(D), H(D)) = D``."  Extraction or replay failures (e.g. a
    change set that is not valid) mean infeasible.
    """
    try:
        origin = original_database(doem)
        history = encoded_history(doem)
        rebuilt = build_doem(origin, history)
    except (InvalidChangeError, InvalidHistoryError):
        return False
    return rebuilt.same_as(doem)
