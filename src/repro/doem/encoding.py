"""Encoding DOEM databases in plain OEM (Section 5.1), and decoding back.

The paper implements DOEM "on top of" Lore by storing an OEM encoding of
each DOEM database and translating Chorel to Lorel over that encoding.
For each object ``o`` of the DOEM database there is an encoding object
``o'`` (we reuse the same identifier, which makes cross-backend result
comparison trivial) with these subobjects:

* ``&val`` -- an atomic node holding the current value when ``o`` is
  atomic; a self-loop when ``o`` is complex;
* ``&cre`` -- an atomic timestamp subobject per ``cre`` annotation;
* ``&upd`` -- one complex subobject per ``upd`` annotation, with
  ``&time``, ``&ov`` (old value) and ``&nv`` (new value, stored
  redundantly "for efficiency and ease of translation");
* ``l`` -- a direct arc to ``p'`` for every arc ``(o, l, p)`` in the
  **current snapshot** (so plain Lorel queries default to the current
  state);
* ``&l-history`` -- one history object per arc ``(o, l, p)`` of the DOEM
  graph (live or removed), with ``&target`` and one ``&add``/``&rem``
  atomic timestamp subobject per annotation.

Values that are the reserved value C (an old/new value may be complex)
are encoded as childless complex nodes.  Objects left with no incoming
arcs (conceptually deleted but historically relevant) hang off the root
via ``&orphan`` arcs so the encoding is a *legal* OEM database.

User labels must not start with ``&`` -- the paper reserves that prefix
for the encoding.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import EncodingError
from ..oem.model import Arc, OEMDatabase
from ..oem.values import COMPLEX
from ..timestamps import POS_INF, Timestamp
from .annotations import Add, Cre, Rem, Upd
from .model import DOEMDatabase

__all__ = ["EncodedDOEM", "encode_doem", "decode_doem",
           "history_label", "label_from_history"]

VAL = "&val"
CRE = "&cre"
UPD = "&upd"
TIME = "&time"
OV = "&ov"
NV = "&nv"
TARGET = "&target"
ADD = "&add"
REM = "&rem"
ORPHAN = "&orphan"


def history_label(label: str) -> str:
    """The ``&l-history`` label for a user label ``l``."""
    return f"&{label}-history"


def label_from_history(label: str) -> str | None:
    """Invert :func:`history_label`; None when ``label`` is not one."""
    if label.startswith("&") and label.endswith("-history"):
        return label[1:-len("-history")]
    return None


@dataclass
class EncodedDOEM:
    """The OEM encoding of a DOEM database.

    ``oem`` is the encoding itself; ``object_ids`` is the set of encoding
    objects ``o'`` (one per DOEM object, same identifiers), distinguishing
    them from auxiliary nodes (values, update records, history objects).
    """

    oem: OEMDatabase
    object_ids: set[str] = field(default_factory=set)

    def is_encoding_object(self, node_id: str) -> bool:
        """True when ``node_id`` encodes a DOEM object (not an auxiliary)."""
        return node_id in self.object_ids


def encode_doem(doem: DOEMDatabase) -> EncodedDOEM:
    """Encode ``doem`` as a plain OEM database per Section 5.1."""
    for node_id in doem.graph.nodes():
        for label in doem.graph.out_labels(node_id):
            if label.startswith("&"):
                raise EncodingError(
                    f"user label {label!r} starts with '&', which is "
                    f"reserved for the DOEM encoding")

    source = doem.graph
    encoded = OEMDatabase(root=source.root)
    object_ids: set[str] = set()

    # Pass 1: one complex encoding object per DOEM object.
    for node_id in source.nodes():
        if node_id != source.root:
            encoded.create_node(node_id, COMPLEX)
        object_ids.add(node_id)

    def fresh(prefix: str) -> str:
        return encoded.create_node(encoded.new_node_id(prefix), COMPLEX)

    def atom(prefix: str, value: object) -> str:
        node = encoded.new_node_id(prefix)
        if value is COMPLEX:
            # The reserved value C encodes as a childless complex node.
            encoded.create_node(node, COMPLEX)
        else:
            encoded.create_node(node, value)  # type: ignore[arg-type]
        return node

    # Pass 2: values and node annotations.
    for node_id in source.nodes():
        value = source.value(node_id)
        if value is COMPLEX:
            encoded.add_arc(node_id, VAL, node_id)  # self-loop marks complex
        else:
            encoded.add_arc(node_id, VAL, atom("v", value))
        for annotation in doem.node_annotations(node_id):
            if isinstance(annotation, Cre):
                encoded.add_arc(node_id, CRE, atom("c", annotation.at))
            else:
                record = fresh("u")
                encoded.add_arc(node_id, UPD, record)
                encoded.add_arc(record, TIME, atom("t", annotation.at))
                encoded.add_arc(record, OV, atom("o", annotation.old_value))
        # The redundant &nv subobjects, chained from the upd triples.
        for when, _old, new in doem.upd_triples(node_id):
            record = _find_upd_record(encoded, node_id, when)
            encoded.add_arc(record, NV, atom("n", new))

    # Pass 3: arcs -- direct arcs for the current snapshot, plus history
    # objects for every arc.
    for arc in source.arcs():
        annotations = doem.arc_annotations(*arc)
        if doem.arc_live_at(arc.source, arc.label, arc.target, POS_INF):
            encoded.add_arc(arc.source, arc.label, arc.target)
        record = fresh("h")
        encoded.add_arc(arc.source, history_label(arc.label), record)
        encoded.add_arc(record, TARGET, arc.target)
        for annotation in annotations:
            kind = ADD if isinstance(annotation, Add) else REM
            encoded.add_arc(record, kind, atom("a", annotation.at))

    # Pass 4: keep conceptually-deleted objects reachable.  One global
    # reachability pass, then incremental closure per attached orphan
    # (attaching X may make other would-be orphans reachable through it).
    reachable = encoded.reachable()
    for node_id in sorted(object_ids):
        if node_id in reachable:
            continue
        encoded.add_arc(encoded.root, ORPHAN, node_id)
        stack = [node_id]
        reachable.add(node_id)
        while stack:
            current = stack.pop()
            for child in encoded.children(current):
                if child not in reachable:
                    reachable.add(child)
                    stack.append(child)

    encoded.check()
    return EncodedDOEM(oem=encoded, object_ids=object_ids)


def _find_upd_record(encoded: OEMDatabase, node_id: str,
                     when: Timestamp) -> str:
    """Locate the ``&upd`` record of ``node_id`` whose ``&time`` equals ``when``."""
    for record in encoded.children(node_id, UPD):
        for time_node in encoded.children(record, TIME):
            if encoded.value(time_node) == when:
                return record
    raise EncodingError(
        f"no &upd record at {when} under {node_id!r}")  # pragma: no cover


def decode_doem(encoded: EncodedDOEM) -> DOEMDatabase:
    """Invert :func:`encode_doem`, recovering the DOEM database.

    Raises :class:`~repro.errors.EncodingError` on malformed encodings
    (missing ``&val``, a history object without ``&target``, ...).  The
    direct (current-snapshot) arcs are not consulted except for a
    consistency check; all arc information comes from the ``&l-history``
    objects, as the translation scheme intends.
    """
    oem = encoded.oem
    object_ids = encoded.object_ids
    if oem.root not in object_ids:
        raise EncodingError("encoding root is not an encoding object")

    graph = OEMDatabase(root=oem.root)
    doem = DOEMDatabase(graph)

    def decoded_value(value_node: str) -> object:
        if oem.is_complex(value_node):
            return COMPLEX
        return oem.value(value_node)

    # Nodes first (all complex for now -- a DOEM graph may hold an atomic
    # node with lingering removed arcs, so values are set after arcs).
    values: dict[str, object] = {}
    for node_id in sorted(object_ids):
        val_children = list(oem.children(node_id, VAL))
        if len(val_children) != 1:
            raise EncodingError(
                f"object {node_id!r} must have exactly one &val subobject")
        val_node = val_children[0]
        if val_node == node_id:
            value = COMPLEX
        else:
            value = decoded_value(val_node)
            if value is COMPLEX:
                raise EncodingError(
                    f"&val of atomic object {node_id!r} is complex")
        values[node_id] = value
        if node_id != graph.root:
            graph.create_node(node_id, COMPLEX)

    # Node annotations.
    for node_id in sorted(object_ids):
        for cre_node in oem.children(node_id, CRE):
            doem.annotate_node(node_id, Cre(_timestamp(oem, cre_node)))
        for record in oem.children(node_id, UPD):
            times = [_timestamp(oem, t) for t in oem.children(record, TIME)]
            olds = [decoded_value(o) for o in oem.children(record, OV)]
            if len(times) != 1 or len(olds) != 1:
                raise EncodingError(
                    f"malformed &upd record under {node_id!r}")
            doem.annotate_node(node_id, Upd(times[0], olds[0]))

    # Arcs from history objects; then annotations.
    for node_id in sorted(object_ids):
        for label in list(oem.out_labels(node_id)):
            base = label_from_history(label)
            if base is None:
                continue
            for record in oem.children(node_id, label):
                targets = list(oem.children(record, TARGET))
                if len(targets) != 1:
                    raise EncodingError(
                        f"history object under {node_id!r} lacks a single "
                        f"&target")
                target = targets[0]
                if target not in object_ids:
                    raise EncodingError(
                        f"history &target {target!r} is not an encoding object")
                graph.add_arc(node_id, base, target)
                for add_node in oem.children(record, ADD):
                    doem.annotate_arc(node_id, base, target,
                                      Add(_timestamp(oem, add_node)))
                for rem_node in oem.children(record, REM):
                    doem.annotate_arc(node_id, base, target,
                                      Rem(_timestamp(oem, rem_node)))

    # Now set the node values, bypassing the no-children check exactly the
    # way build_doem does when an update turns a complex object atomic
    # while removed arcs linger in the graph.
    for node_id, value in values.items():
        graph._values[node_id] = value

    # Consistency: every direct (non-&) arc must be live in the decoding.
    for arc in oem.arcs():
        if arc.source in object_ids and not arc.label.startswith("&"):
            if not doem.arc_live_at(arc.source, arc.label, arc.target, POS_INF):
                raise EncodingError(
                    f"direct arc {arc} is not live in the decoded history")

    return doem


def _timestamp(oem: OEMDatabase, node_id: str) -> Timestamp:
    value = oem.value(node_id)
    if not isinstance(value, Timestamp):
        raise EncodingError(
            f"expected a timestamp value at {node_id!r}, found {value!r}")
    return value
