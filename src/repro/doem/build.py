"""Constructing the DOEM database ``D(O, H)`` (Section 3.1).

Starting from the OEM database ``O`` with empty annotation sets, each
timestamped change set of the history is *folded into* the graph:

* ``updNode`` performs the update **and** attaches ``upd(t, old value)``;
* ``creNode`` creates the node and attaches ``cre(t)``;
* ``addArc`` adds the arc and attaches ``add(t)`` (re-adding a previously
  removed arc annotates the existing, dead arc);
* ``remArc`` does **not** remove the arc -- it attaches ``rem(t)``.

"This representation directly stores the changes themselves, not the
before and after images of the changes, and thus takes the snapshot-delta
approach."

Because removed arcs linger, operation validity is checked against the
*conceptual current snapshot* (liveness via annotations), not against the
raw DOEM graph.

Index and cache maintenance: every operation the applier folds in ends in
an ``annotate_node``/``annotate_arc`` call, which bumps the database's
generation counter and notifies attached annotation listeners -- this is
how a :class:`~repro.lore.indexes.TimestampIndex` stays current without
rebuilds and how :class:`~repro.doem.snapshot.SnapshotCache` and
:class:`~repro.lore.indexes.PathIndex` detect staleness.  Raw graph
mutations additionally call :meth:`~repro.doem.model.DOEMDatabase.touch`
so the fingerprint moves even mid-operation.
"""

from __future__ import annotations

from typing import Iterable

from ..errors import InvalidChangeError
from ..oem.changes import AddArc, ChangeOp, CreNode, RemArc, UpdNode
from ..oem.history import ChangeSet, OEMHistory
from ..oem.model import OEMDatabase
from ..oem.values import COMPLEX
from ..timestamps import POS_INF, Timestamp
from .annotations import Add, Cre, Rem, Upd
from .model import DOEMDatabase

__all__ = ["build_doem", "apply_change_set", "DOEMApplier"]


class DOEMApplier:
    """Incrementally folds change sets into a DOEM database.

    The QSS DOEM Manager (Section 6.1) keeps one of these per
    subscription: every polling interval produces one change set, which is
    incorporated with :meth:`apply`.
    """

    def __init__(self, doem: DOEMDatabase) -> None:
        self.doem = doem
        self._dead_nodes: set[str] = set()

    # -- liveness helpers (current conceptual snapshot) -----------------

    def _node_is_live(self, node_id: str) -> bool:
        return self.doem.graph.has_node(node_id) and node_id not in self._dead_nodes

    def _arc_is_live(self, source: str, label: str, target: str) -> bool:
        if not self.doem.graph.has_arc(source, label, target):
            return False
        return self.doem.arc_live_at(source, label, target, POS_INF)

    def _live_children_exist(self, node_id: str) -> bool:
        return any(True for _ in self.doem.live_children(node_id, POS_INF))

    # -- the four operations --------------------------------------------

    def _apply_op(self, op: ChangeOp, when: Timestamp) -> None:
        graph = self.doem.graph
        if isinstance(op, CreNode):
            if graph.has_node(op.node):
                raise InvalidChangeError(
                    f"creNode: identifier {op.node!r} already used "
                    f"(identifiers of deleted nodes are not reused)")
            graph.create_node(op.node, op.value)
            self.doem.touch()
            self.doem.annotate_node(op.node, Cre(when))
        elif isinstance(op, UpdNode):
            if not self._node_is_live(op.node):
                raise InvalidChangeError(f"updNode: node {op.node!r} is not live")
            if op.value is not COMPLEX and self._live_children_exist(op.node):
                raise InvalidChangeError(
                    f"updNode({op.node}): object still has live subobjects")
            old_value = graph.value(op.node)
            graph._values[op.node] = op.value  # bypass child check: dead arcs linger
            self.doem.touch()
            self.doem.annotate_node(op.node, Upd(when, old_value))
        elif isinstance(op, AddArc):
            if not self._node_is_live(op.source):
                raise InvalidChangeError(f"addArc: parent {op.source!r} is not live")
            if not self._node_is_live(op.target):
                raise InvalidChangeError(f"addArc: child {op.target!r} is not live")
            if not graph.is_complex(op.source):
                raise InvalidChangeError(f"addArc: parent {op.source!r} is atomic")
            if self._arc_is_live(*op.arc):
                raise InvalidChangeError(f"addArc: arc {op.arc} already present")
            if not graph.has_arc(*op.arc):
                graph.add_arc(*op.arc)
                self.doem.touch()
            self.doem.annotate_arc(op.source, op.label, op.target, Add(when))
        elif isinstance(op, RemArc):
            if not self._arc_is_live(*op.arc):
                raise InvalidChangeError(f"remArc: arc {op.arc} is not present")
            self.doem.annotate_arc(op.source, op.label, op.target, Rem(when))
        else:  # pragma: no cover - exhaustiveness guard
            raise InvalidChangeError(f"unknown change operation: {op!r}")

    def apply(self, when: Timestamp, change_set: ChangeSet) -> None:
        """Fold one timestamped change set into the DOEM database.

        Operations run in the canonical order (cre -> rem -> upd -> add);
        afterwards, nodes unreachable in the *current snapshot* are marked
        dead (Section 2.2's deletion rule), though their history stays in
        the graph.
        """
        for op in change_set.canonical_order():
            self._apply_op(op, when)
        self._mark_dead_nodes()

    def _mark_dead_nodes(self) -> None:
        """Mark nodes unreachable through live arcs as conceptually deleted."""
        graph = self.doem.graph
        live = {graph.root}
        frontier = [graph.root]
        while frontier:
            node = frontier.pop()
            for _, child in self.doem.live_children(node, POS_INF):
                if child not in live:
                    live.add(child)
                    frontier.append(child)
        self._dead_nodes = set(graph.nodes()) - live


def apply_change_set(doem: DOEMDatabase, when: object,
                     change_set: ChangeSet | Iterable[ChangeOp]) -> DOEMDatabase:
    """Fold one change set into ``doem`` (convenience wrapper)."""
    from ..timestamps import parse_timestamp
    if not isinstance(change_set, ChangeSet):
        change_set = ChangeSet(change_set)
    applier = DOEMApplier(doem)
    applier._mark_dead_nodes()
    applier.apply(parse_timestamp(when), change_set)
    return doem


def build_doem(origin: OEMDatabase, history: OEMHistory) -> DOEMDatabase:
    """Construct ``D(O, H)`` for an OEM database and a valid history.

    ``origin`` is copied; the result owns its own graph.  Raises
    :class:`~repro.errors.InvalidChangeError` if the history is not valid
    for ``origin``.
    """
    doem = DOEMDatabase(origin.copy())
    applier = DOEMApplier(doem)
    for when, change_set in history:
        applier.apply(when, change_set)
    return doem
