"""The four annotation kinds of Section 3.

Nodes may carry ``cre(t)`` (created at ``t``) and ``upd(t, ov)`` (updated
at ``t``; ``ov`` is the *old* value) annotations; arcs may carry ``add(t)``
and ``rem(t)``.  Annotations are immutable and ordered by timestamp, with
a deterministic kind-based tiebreak so annotation lists have a canonical
sort.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from ..timestamps import Timestamp, parse_timestamp
from ..oem.values import AtomicValue, Value, check_value, value_repr

__all__ = ["Cre", "Upd", "Add", "Rem", "Annotation",
           "NodeAnnotation", "ArcAnnotation", "sort_key"]


@dataclass(frozen=True)
class Cre:
    """``cre(t)``: the node was created at time ``t``."""

    at: Timestamp

    def __post_init__(self) -> None:
        object.__setattr__(self, "at", parse_timestamp(self.at))

    def __str__(self) -> str:
        return f"cre(t:{self.at})"


@dataclass(frozen=True)
class Upd:
    """``upd(t, ov)``: the node was updated at ``t``; ``ov`` is the old value."""

    at: Timestamp
    old_value: Value

    def __post_init__(self) -> None:
        object.__setattr__(self, "at", parse_timestamp(self.at))
        check_value(self.old_value)

    def __str__(self) -> str:
        return f"upd(t:{self.at}, ov:{value_repr(self.old_value)})"


@dataclass(frozen=True)
class Add:
    """``add(t)``: the arc was added at time ``t``."""

    at: Timestamp

    def __post_init__(self) -> None:
        object.__setattr__(self, "at", parse_timestamp(self.at))

    def __str__(self) -> str:
        return f"add(t:{self.at})"


@dataclass(frozen=True)
class Rem:
    """``rem(t)``: the arc was removed at time ``t``."""

    at: Timestamp

    def __post_init__(self) -> None:
        object.__setattr__(self, "at", parse_timestamp(self.at))

    def __str__(self) -> str:
        return f"rem(t:{self.at})"


NodeAnnotation = Union[Cre, Upd]
"""Annotations that may appear on nodes."""

ArcAnnotation = Union[Add, Rem]
"""Annotations that may appear on arcs."""

Annotation = Union[Cre, Upd, Add, Rem]
"""Any annotation."""

_KIND_ORDER = {Cre: 0, Upd: 1, Add: 0, Rem: 1}


def sort_key(annotation: Annotation) -> tuple:
    """Canonical sort key: by timestamp, then kind, then old value text.

    Within one timestamp an ``add`` precedes a ``rem`` (an arc added and
    later removed at distinct times never ties; a tie can only arise from
    hand-built DOEM databases, where this order keeps behaviour stable).
    """
    extra = value_repr(annotation.old_value) if isinstance(annotation, Upd) else ""
    return (annotation.at, _KIND_ORDER[type(annotation)], extra)
