"""The four basic change operations of Section 2.1.

``creNode``, ``updNode``, ``addArc``, and ``remArc`` are the only ways an
OEM database changes at the database level; Lorel-style updates
(:mod:`repro.oem.history` / :mod:`repro.lorel.update`) compile down to
them.  Each operation is an immutable dataclass with:

* :meth:`ChangeOp.is_valid` -- the paper's precondition against a database;
* :meth:`ChangeOp.apply` -- perform the operation (raising
  :class:`~repro.errors.InvalidChangeError` when invalid);
* :meth:`ChangeOp.inverse` -- the compensating operation, used by tests and
  by the DOEM snapshot reconstruction checks.

There is deliberately **no** delete operation: "In OEM, persistence is by
reachability from the distinguished root node ... to delete an object it
suffices to remove all arcs leading to it."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from ..errors import InvalidChangeError
from .model import OEMDatabase
from .values import COMPLEX, Value, check_value, value_repr

__all__ = ["CreNode", "UpdNode", "AddArc", "RemArc", "ChangeOp"]


@dataclass(frozen=True)
class CreNode:
    """``creNode(n, v)``: create a new object ``n`` with initial value ``v``."""

    node: str
    value: Value

    def __post_init__(self) -> None:
        check_value(self.value)

    def is_valid(self, db: OEMDatabase) -> bool:
        """The identifier must not occur in the database."""
        return not db.has_node(self.node)

    def apply(self, db: OEMDatabase) -> None:
        """Create the node; raises if the identifier is taken."""
        if not self.is_valid(db):
            raise InvalidChangeError(f"creNode: node {self.node!r} already exists")
        db.create_node(self.node, self.value)

    def inverse(self, db: OEMDatabase) -> "ChangeOp | None":
        """Creation has no basic inverse (deletion is by unreachability)."""
        return None

    def touched_nodes(self) -> frozenset[str]:
        """Node identifiers this operation mentions."""
        return frozenset({self.node})

    def __str__(self) -> str:
        return f"creNode({self.node}, {value_repr(self.value)})"


@dataclass(frozen=True)
class UpdNode:
    """``updNode(n, v)``: change the value of object ``n`` to ``v``.

    The object must be atomic or a complex object without subobjects.
    """

    node: str
    value: Value

    def __post_init__(self) -> None:
        check_value(self.value)

    def is_valid(self, db: OEMDatabase) -> bool:
        """Node must exist; a node with children can only stay complex."""
        if not db.has_node(self.node):
            return False
        if db.has_children(self.node) and self.value is not COMPLEX:
            return False
        return True

    def apply(self, db: OEMDatabase) -> None:
        """Update the value; raises when the precondition fails."""
        if not db.has_node(self.node):
            raise InvalidChangeError(f"updNode: unknown node {self.node!r}")
        db.update_value(self.node, self.value)

    def inverse(self, db: OEMDatabase) -> "ChangeOp":
        """The update restoring the value currently in ``db``."""
        return UpdNode(self.node, db.value(self.node))

    def touched_nodes(self) -> frozenset[str]:
        """Node identifiers this operation mentions."""
        return frozenset({self.node})

    def __str__(self) -> str:
        return f"updNode({self.node}, {value_repr(self.value)})"


@dataclass(frozen=True)
class AddArc:
    """``addArc(p, l, c)``: add an ``l``-labeled arc from ``p`` to ``c``."""

    source: str
    label: str
    target: str

    def is_valid(self, db: OEMDatabase) -> bool:
        """Endpoints exist, parent complex, arc not already present."""
        return (db.has_node(self.source) and db.has_node(self.target)
                and db.is_complex(self.source)
                and not db.has_arc(self.source, self.label, self.target))

    def apply(self, db: OEMDatabase) -> None:
        """Add the arc; raises when the precondition fails."""
        db.add_arc(self.source, self.label, self.target)

    def inverse(self, db: OEMDatabase) -> "ChangeOp":
        """Removing the arc undoes adding it."""
        return RemArc(self.source, self.label, self.target)

    def touched_nodes(self) -> frozenset[str]:
        """Node identifiers this operation mentions."""
        return frozenset({self.source, self.target})

    @property
    def arc(self) -> tuple[str, str, str]:
        """The ``(source, label, target)`` triple."""
        return (self.source, self.label, self.target)

    def __str__(self) -> str:
        return f"addArc({self.source}, {self.label!r}, {self.target})"


@dataclass(frozen=True)
class RemArc:
    """``remArc(p, l, c)``: remove the ``l``-labeled arc from ``p`` to ``c``."""

    source: str
    label: str
    target: str

    def is_valid(self, db: OEMDatabase) -> bool:
        """Endpoints exist and the arc is present."""
        return (db.has_node(self.source) and db.has_node(self.target)
                and db.has_arc(self.source, self.label, self.target))

    def apply(self, db: OEMDatabase) -> None:
        """Remove the arc; raises when the precondition fails."""
        db.remove_arc(self.source, self.label, self.target)

    def inverse(self, db: OEMDatabase) -> "ChangeOp":
        """Adding the arc back undoes removing it."""
        return AddArc(self.source, self.label, self.target)

    def touched_nodes(self) -> frozenset[str]:
        """Node identifiers this operation mentions."""
        return frozenset({self.source, self.target})

    @property
    def arc(self) -> tuple[str, str, str]:
        """The ``(source, label, target)`` triple."""
        return (self.source, self.label, self.target)

    def __str__(self) -> str:
        return f"remArc({self.source}, {self.label!r}, {self.target})"


ChangeOp = Union[CreNode, UpdNode, AddArc, RemArc]
"""Any of the four basic change operations."""
