"""The OEM database: a rooted, labeled, directed graph of objects.

Definition 2.1: an OEM database is a 4-tuple ``O = (N, A, v, r)`` where
``N`` is a set of object identifiers, ``A`` a set of labeled directed arcs
``(p, l, c)``, ``v`` maps each node to an atomic value or the reserved
value C (complex), and ``r`` is a distinguished root.  Only complex objects
have outgoing arcs, and every node must be reachable from the root.

:class:`OEMDatabase` enforces the first three constraints eagerly and the
reachability constraint on demand (:meth:`OEMDatabase.check`,
:meth:`OEMDatabase.collect_garbage`), because Section 2.2 explicitly
permits *temporary* unreachability while a change set is being applied.
"""

from __future__ import annotations

import copy as _copy
import itertools
from collections import deque
from typing import Iterable, Iterator, NamedTuple

from ..errors import (
    DuplicateNodeError,
    InvalidChangeError,
    OEMError,
    UnknownNodeError,
)
from .values import COMPLEX, Value, check_value, value_repr

__all__ = ["Arc", "OEMDatabase"]


class Arc(NamedTuple):
    """A labeled directed arc ``(p, l, c)``: ``c`` is an ``l``-labeled child of ``p``."""

    source: str
    label: str
    target: str

    def __str__(self) -> str:
        return f"({self.source}, {self.label!r}, {self.target})"


class OEMDatabase:
    """A mutable OEM database.

    Nodes are identified by strings (the paper writes ``n1, n2, ...``).
    The database keeps forward and reverse adjacency so that reachability,
    garbage collection, and diffing are all linear-time.

    The class deliberately exposes *low-level* mutators that mirror the
    paper's basic change operations (:meth:`create_node`,
    :meth:`update_value`, :meth:`add_arc`, :meth:`remove_arc`); the typed
    operation objects in :mod:`repro.oem.changes` call straight into these.
    """

    def __init__(self, root: str = "root", root_value: Value = COMPLEX) -> None:
        self._values: dict[str, Value] = {}
        self._out: dict[str, dict[str, dict[str, None]]] = {}
        self._in: dict[str, set[Arc]] = {}
        self._counter = itertools.count(1)
        self._root = root
        self.create_node(root, root_value)

    # ------------------------------------------------------------------
    # Identity and basic accessors
    # ------------------------------------------------------------------

    @property
    def root(self) -> str:
        """The distinguished root object identifier."""
        return self._root

    def nodes(self) -> Iterator[str]:
        """Iterate over all node identifiers (insertion order)."""
        return iter(self._values)

    def __len__(self) -> int:
        """Number of nodes currently in the database."""
        return len(self._values)

    def __contains__(self, node_id: str) -> bool:
        return node_id in self._values

    def has_node(self, node_id: str) -> bool:
        """Return True when ``node_id`` names an object in the database."""
        return node_id in self._values

    def value(self, node_id: str) -> Value:
        """Return the value of ``node_id`` (atomic value or COMPLEX)."""
        try:
            return self._values[node_id]
        except KeyError:
            raise UnknownNodeError(node_id) from None

    def is_complex(self, node_id: str) -> bool:
        """True when the object is complex (its value is C)."""
        return self.value(node_id) is COMPLEX

    def is_atomic(self, node_id: str) -> bool:
        """True when the object carries an atomic value."""
        return not self.is_complex(node_id)

    def new_node_id(self, prefix: str = "n") -> str:
        """Mint a node identifier unused by this database.

        Deleted identifiers are never recycled (Section 2.2 assumes
        "object identifiers of deleted nodes are not reused"), which the
        monotone counter guarantees for ids minted here.
        """
        while True:
            candidate = f"{prefix}{next(self._counter)}"
            if candidate not in self._values:
                return candidate

    # ------------------------------------------------------------------
    # Arcs
    # ------------------------------------------------------------------

    def arcs(self) -> Iterator[Arc]:
        """Iterate over every arc in the database."""
        for source, by_label in self._out.items():
            for label, targets in by_label.items():
                for target in targets:
                    yield Arc(source, label, target)

    def arc_count(self) -> int:
        """Total number of arcs."""
        return sum(len(targets)
                   for by_label in self._out.values()
                   for targets in by_label.values())

    def has_arc(self, source: str, label: str, target: str) -> bool:
        """True when the arc ``(source, label, target)`` exists."""
        return target in self._out.get(source, {}).get(label, {})

    def out_labels(self, node_id: str) -> Iterator[str]:
        """Iterate over the distinct labels of arcs leaving ``node_id``."""
        if node_id not in self._values:
            raise UnknownNodeError(node_id)
        return iter(self._out.get(node_id, {}))

    def children(self, node_id: str, label: str | None = None) -> Iterator[str]:
        """Iterate over children of ``node_id``; restrict to ``label`` if given."""
        if node_id not in self._values:
            raise UnknownNodeError(node_id)
        by_label = self._out.get(node_id, {})
        if label is not None:
            yield from by_label.get(label, {})
            return
        for targets in by_label.values():
            yield from targets

    def out_arcs(self, node_id: str) -> Iterator[Arc]:
        """Iterate over all arcs leaving ``node_id``."""
        if node_id not in self._values:
            raise UnknownNodeError(node_id)
        for label, targets in self._out.get(node_id, {}).items():
            for target in targets:
                yield Arc(node_id, label, target)

    def in_arcs(self, node_id: str) -> Iterator[Arc]:
        """Iterate over all arcs entering ``node_id``."""
        if node_id not in self._values:
            raise UnknownNodeError(node_id)
        return iter(self._in.get(node_id, set()))

    def parents(self, node_id: str) -> Iterator[str]:
        """Iterate over the distinct parents of ``node_id``."""
        seen: set[str] = set()
        for arc in self.in_arcs(node_id):
            if arc.source not in seen:
                seen.add(arc.source)
                yield arc.source

    def has_children(self, node_id: str) -> bool:
        """True when any arc leaves ``node_id``."""
        by_label = self._out.get(node_id, {})
        return any(targets for targets in by_label.values())

    # ------------------------------------------------------------------
    # Mutators (preconditions of Section 2.1)
    # ------------------------------------------------------------------

    def create_node(self, node_id: str, value: Value) -> str:
        """``creNode(n, v)``: create a fresh object with the given value.

        The identifier must be new; the value atomic or COMPLEX.
        Returns the identifier for convenience.
        """
        if node_id in self._values:
            raise DuplicateNodeError(node_id)
        self._values[node_id] = check_value(value)
        self._out[node_id] = {}
        self._in[node_id] = set()
        return node_id

    def update_value(self, node_id: str, value: Value) -> None:
        """``updNode(n, v)``: change the value of an object.

        Per Section 2.1 the object must be atomic or a complex object
        without subobjects -- a complex object's children must be unlinked
        before it can be turned atomic.
        """
        if node_id not in self._values:
            raise UnknownNodeError(node_id)
        check_value(value)
        if self.has_children(node_id) and value is not COMPLEX:
            raise InvalidChangeError(
                f"updNode({node_id}): object still has subobjects; remove "
                f"its outgoing arcs before making it atomic")
        self._values[node_id] = value

    def add_arc(self, source: str, label: str, target: str) -> None:
        """``addArc(p, l, c)``: add a labeled arc.

        Both objects must exist, the parent must be complex, and the arc
        must not already be present.
        """
        if source not in self._values:
            raise UnknownNodeError(source)
        if target not in self._values:
            raise UnknownNodeError(target)
        if not self.is_complex(source):
            raise InvalidChangeError(
                f"addArc({source}, {label!r}, {target}): parent is atomic")
        targets = self._out[source].setdefault(label, {})
        if target in targets:
            raise InvalidChangeError(
                f"addArc({source}, {label!r}, {target}): arc already exists")
        targets[target] = None
        self._in[target].add(Arc(source, label, target))

    def remove_arc(self, source: str, label: str, target: str) -> None:
        """``remArc(p, l, c)``: remove a labeled arc.

        Both objects and the arc itself must exist.
        """
        if source not in self._values:
            raise UnknownNodeError(source)
        if target not in self._values:
            raise UnknownNodeError(target)
        targets = self._out.get(source, {}).get(label)
        if not targets or target not in targets:
            raise InvalidChangeError(
                f"remArc({source}, {label!r}, {target}): no such arc")
        del targets[target]
        if not targets:
            del self._out[source][label]
        self._in[target].discard(Arc(source, label, target))

    def _delete_node(self, node_id: str) -> None:
        """Physically drop a node and its arcs.  Internal: used by GC only."""
        for arc in list(self.out_arcs(node_id)):
            self.remove_arc(*arc)
        for arc in list(self.in_arcs(node_id)):
            self.remove_arc(*arc)
        del self._values[node_id]
        del self._out[node_id]
        del self._in[node_id]

    # ------------------------------------------------------------------
    # Reachability (persistence semantics of Section 2.1/2.2)
    # ------------------------------------------------------------------

    def reachable(self, start: str | None = None) -> set[str]:
        """The set of nodes reachable from ``start`` (default: the root)."""
        start = self._root if start is None else start
        if start not in self._values:
            raise UnknownNodeError(start)
        seen = {start}
        frontier = deque([start])
        while frontier:
            node = frontier.popleft()
            for by_label in self._out.get(node, {}).values():
                for child in by_label:
                    if child not in seen:
                        seen.add(child)
                        frontier.append(child)
        return seen

    def unreachable_nodes(self) -> set[str]:
        """Nodes not reachable from the root (implicitly deleted objects)."""
        return set(self._values) - self.reachable()

    def collect_garbage(self) -> set[str]:
        """Delete every unreachable node; return the set of deleted ids.

        This implements OEM's persistence-by-reachability: "to delete an
        object it suffices to remove all arcs leading to it" (Section 2.1);
        after each change set the unreachable objects are considered
        deleted (Section 2.2).
        """
        doomed = self.unreachable_nodes()
        for node_id in doomed:
            # Drop arcs among doomed nodes lazily; arcs into live nodes too.
            for arc in list(self.out_arcs(node_id)):
                self.remove_arc(*arc)
        for node_id in doomed:
            for arc in list(self.in_arcs(node_id)):
                self.remove_arc(*arc)
            del self._values[node_id]
            del self._out[node_id]
            del self._in[node_id]
        return doomed

    def check(self) -> None:
        """Verify the invariants of Definition 2.1, raising on violation.

        Checks: the root exists; only complex nodes have outgoing arcs;
        arc endpoints exist; every node is reachable from the root.
        """
        if self._root not in self._values:
            raise OEMError(f"root {self._root!r} is not a node")
        for node_id, value in self._values.items():
            if value is not COMPLEX and self.has_children(node_id):
                raise OEMError(
                    f"atomic object {node_id} has outgoing arcs")
        for arc in self.arcs():
            if arc.source not in self._values or arc.target not in self._values:
                raise OEMError(f"dangling arc {arc}")
        stranded = self.unreachable_nodes()
        if stranded:
            sample = ", ".join(sorted(stranded)[:5])
            raise OEMError(
                f"{len(stranded)} node(s) unreachable from the root: {sample}")

    # ------------------------------------------------------------------
    # Copying and comparison
    # ------------------------------------------------------------------

    def subgraph(self, node_id: str, new_root: str | None = None) -> "OEMDatabase":
        """The reachable closure of ``node_id``, as a standalone database.

        Node identifiers are preserved; ``new_root`` renames the entry
        point when ``node_id``'s identifier would be confusing as a root.
        Cycles and sharing within the closure are preserved.
        """
        if node_id not in self._values:
            raise UnknownNodeError(node_id)
        members = self.reachable(node_id)
        root_id = new_root or node_id
        extracted = OEMDatabase(root=root_id,
                                root_value=self.value(node_id))
        for member in members:
            if member != node_id:
                extracted.create_node(member, self.value(member))
        for arc in self.arcs():
            if arc.source in members and arc.target in members:
                source = root_id if arc.source == node_id else arc.source
                target = root_id if arc.target == node_id else arc.target
                extracted.add_arc(source, arc.label, target)
        return extracted

    def copy(self) -> "OEMDatabase":
        """An independent deep copy of the database."""
        clone = OEMDatabase.__new__(OEMDatabase)
        clone._values = dict(self._values)
        clone._out = {node: {label: dict(targets)
                             for label, targets in by_label.items()}
                      for node, by_label in self._out.items()}
        clone._in = {node: set(arcs) for node, arcs in self._in.items()}
        clone._counter = itertools.count(next(_copy.copy(self._counter)))
        clone._root = self._root
        return clone

    def same_as(self, other: "OEMDatabase") -> bool:
        """Exact equality: same root, node ids, values, and arcs."""
        if self._root != other._root:
            return False
        if self._values != other._values:
            return False
        return set(self.arcs()) == set(other.arcs())

    def isomorphic_to(self, other: "OEMDatabase") -> bool:
        """Structural equality up to renaming of node identifiers.

        Two databases are isomorphic when a bijection on nodes maps root to
        root, preserves values, and preserves labeled arcs both ways.  The
        check runs a bisimulation-style partition refinement and then a
        backtracking match within blocks; it is intended for test-sized
        graphs (the diff tests compare snapshots this way).
        """
        if len(self) != len(other) or self.arc_count() != other.arc_count():
            return False
        mapping = _find_isomorphism(self, other)
        return mapping is not None

    # ------------------------------------------------------------------
    # Presentation
    # ------------------------------------------------------------------

    def describe(self, node_id: str | None = None, max_depth: int = 6) -> str:
        """An indented, human-readable rendering rooted at ``node_id``."""
        start = self._root if node_id is None else node_id
        lines: list[str] = []
        seen: set[str] = set()

        def walk(node: str, label: str, depth: int) -> None:
            indent = "  " * depth
            prefix = f"{indent}{label}: " if label else indent
            value = self.value(node)
            if value is COMPLEX:
                if node in seen:
                    lines.append(f"{prefix}&{node} (shared)")
                    return
                seen.add(node)
                lines.append(f"{prefix}&{node} {{")
                if depth < max_depth:
                    for arc in sorted(self.out_arcs(node)):
                        walk(arc.target, arc.label, depth + 1)
                lines.append(f"{indent}}}")
            else:
                lines.append(f"{prefix}&{node} = {value_repr(value)}")

        walk(start, "", 0)
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (f"<OEMDatabase root={self._root!r} nodes={len(self)} "
                f"arcs={self.arc_count()}>")


def _signature_refinement(db: OEMDatabase, rounds: int = 6) -> dict[str, int]:
    """Assign each node a structural signature via iterated neighborhood hashing."""
    sig = {node: hash((db.value(node) is COMPLEX, db.value(node)
                       if db.value(node) is not COMPLEX else None))
           for node in db.nodes()}
    for _ in range(rounds):
        new_sig = {}
        for node in db.nodes():
            out_part = tuple(sorted((arc.label, sig[arc.target])
                                    for arc in db.out_arcs(node)))
            in_part = tuple(sorted((arc.label, sig[arc.source])
                                   for arc in db.in_arcs(node)))
            new_sig[node] = hash((sig[node], out_part, in_part))
        sig = new_sig
    return sig


def _find_isomorphism(left: OEMDatabase,
                      right: OEMDatabase) -> dict[str, str] | None:
    """Find a value/arc-preserving bijection, or None.  Backtracking search."""
    left_sig = _signature_refinement(left)
    right_sig = _signature_refinement(right)
    if sorted(left_sig.values()) != sorted(right_sig.values()):
        return None

    candidates: dict[str, list[str]] = {}
    by_sig: dict[int, list[str]] = {}
    for node, signature in right_sig.items():
        by_sig.setdefault(signature, []).append(node)
    for node, signature in left_sig.items():
        candidates[node] = by_sig.get(signature, [])

    mapping: dict[str, str] = {}
    used: set[str] = set()
    order = sorted(left.nodes(), key=lambda n: len(candidates[n]))

    def compatible(a: str, b: str) -> bool:
        if left.value(a) != right.value(b):
            return False
        for arc in left.out_arcs(a):
            if arc.target in mapping and \
                    not right.has_arc(b, arc.label, mapping[arc.target]):
                return False
        for arc in left.in_arcs(a):
            if arc.source in mapping and \
                    not right.has_arc(mapping[arc.source], arc.label, b):
                return False
        return True

    def solve(index: int) -> bool:
        if index == len(order):
            return True
        node = order[index]
        for candidate in candidates[node]:
            if candidate in used:
                continue
            if (node == left.root) != (candidate == right.root):
                continue
            if not compatible(node, candidate):
                continue
            mapping[node] = candidate
            used.add(candidate)
            if solve(index + 1):
                return True
            del mapping[node]
            used.discard(candidate)
        return False

    if solve(0):
        return mapping
    return None
