"""An ergonomic construction DSL for OEM databases.

The paper's running example (Figure 2) is a graph with shared subobjects
(node ``n7`` has two parents) and a cycle (``parking`` / ``nearby-eats``).
Building such graphs through raw ``create_node``/``add_arc`` calls is
noisy, so :class:`GraphBuilder` lets nested Python dictionaries describe
the tree-shaped part and named references (:class:`Ref`) describe sharing
and cycles::

    builder = GraphBuilder()
    parking = builder.ref("parking_lot")
    builder.build({
        "restaurant": [
            {"name": "Janta", "parking": parking},
            {"name": "Bangkok Cuisine",
             "parking": builder.define(parking, {
                 "address": "Lytton lot 2",
                 "nearby-eats": builder.root_ref()})},
        ],
    })
    db = builder.database

Dictionaries become complex objects, lists fan out multiple same-labeled
arcs, scalars become atomic objects, and refs stitch the graph together.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

from ..errors import OEMError
from .model import OEMDatabase
from .values import COMPLEX, is_atomic_value

__all__ = ["Ref", "GraphBuilder", "build_database"]


@dataclass
class Ref:
    """A named placeholder for a node that may be defined before or after use."""

    name: str
    node_id: str | None = None
    _pending: list[tuple[str, str]] = field(default_factory=list)

    def __repr__(self) -> str:
        state = self.node_id if self.node_id else "undefined"
        return f"Ref({self.name!r} -> {state})"


class _Definition:
    """Marks a spec that both defines a ref and describes its content."""

    def __init__(self, ref: Ref, spec: object) -> None:
        self.ref = ref
        self.spec = spec


class GraphBuilder:
    """Builds an :class:`~repro.oem.model.OEMDatabase` from nested specs."""

    def __init__(self, root: str = "root") -> None:
        self.database = OEMDatabase(root=root)
        self._refs: dict[str, Ref] = {}

    # ------------------------------------------------------------------

    def ref(self, name: str) -> Ref:
        """Get (or create) the named reference handle."""
        if name not in self._refs:
            self._refs[name] = Ref(name)
        return self._refs[name]

    def root_ref(self) -> Ref:
        """A reference resolving to the database root (for cycles back up)."""
        anchor = self.ref("__root__")
        anchor.node_id = self.database.root
        return anchor

    def define(self, ref: Ref | str, spec: object) -> _Definition:
        """Attach content to a reference at its point of use."""
        if isinstance(ref, str):
            ref = self.ref(ref)
        return _Definition(ref, spec)

    # ------------------------------------------------------------------

    def build(self, spec: Mapping, at: str | None = None) -> str:
        """Materialize ``spec`` under the node ``at`` (default: the root).

        Returns the node id the spec was attached to.  Raises
        :class:`~repro.errors.OEMError` if any reference is still
        undefined once construction finishes.
        """
        parent = self.database.root if at is None else at
        self._fill_complex(parent, spec)
        unresolved = [ref.name for ref in self._refs.values()
                      if ref.node_id is None and ref._pending]
        if unresolved:
            raise OEMError(
                f"undefined reference(s) after build: {sorted(unresolved)}")
        return parent

    # ------------------------------------------------------------------

    def _materialize(self, spec: object) -> str:
        """Create (or locate) the node described by ``spec``; return its id."""
        if isinstance(spec, _Definition):
            node_id = self._materialize(spec.spec)
            self._bind(spec.ref, node_id)
            return node_id
        if isinstance(spec, Ref):
            if spec.node_id is not None:
                return spec.node_id
            # Forward reference: mint the node now, fill it in later.
            node_id = self.database.create_node(
                self.database.new_node_id(), COMPLEX)
            self._bind(spec, node_id)
            return node_id
        if isinstance(spec, Mapping):
            node_id = self.database.create_node(
                self.database.new_node_id(), COMPLEX)
            self._fill_complex(node_id, spec)
            return node_id
        if is_atomic_value(spec):
            return self.database.create_node(
                self.database.new_node_id(), spec)  # type: ignore[arg-type]
        raise OEMError(f"cannot build an OEM object from {spec!r}")

    def _fill_complex(self, node_id: str, spec: Mapping) -> None:
        for label, child_spec in spec.items():
            children: Sequence[object]
            if isinstance(child_spec, (list, tuple)):
                children = child_spec
            else:
                children = [child_spec]
            for child in children:
                if isinstance(child, Ref) and child.node_id is None:
                    # Defer the arc until the ref is defined, so the target
                    # can be atomic as well as complex.
                    child._pending.append((node_id, label))
                    continue
                child_id = self._materialize(child)
                self.database.add_arc(node_id, label, child_id)

    def _bind(self, ref: Ref, node_id: str) -> None:
        if ref.node_id is not None and ref.node_id != node_id:
            raise OEMError(f"reference {ref.name!r} defined twice")
        ref.node_id = node_id
        for source, label in ref._pending:
            self.database.add_arc(source, label, node_id)
        ref._pending.clear()


def build_database(spec: Mapping, root: str = "root") -> OEMDatabase:
    """One-shot helper: build a database from a plain nested spec (no refs)."""
    builder = GraphBuilder(root=root)
    builder.build(spec)
    return builder.database
