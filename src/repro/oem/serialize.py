"""A textual interchange format for OEM databases, plus JSON import/export.

OEM was designed for data *exchange* [PGMW95], so the library ships a
round-trippable textual syntax close to the one the Lore papers use::

    &root {
      restaurant: &n1 {
        name: &n2 "Janta"
        price: &n3 10
        parking: &n7
      }
      restaurant: &n4 { ... }
    }

* ``&id`` introduces an object identifier; the second and later mentions of
  an id are back-references, which is how sharing and cycles serialize.
* Complex objects are ``{ label: object ... }`` blocks (labels repeat for
  multiple same-labeled arcs); atomic objects are literals: integers,
  reals, double-quoted strings, ``true``/``false``, and timestamps written
  ``@1Jan97``.

:func:`dumps`/:func:`loads` write and parse this format; :func:`to_json`
and :func:`from_json` bridge to plain JSON trees (losing sharing, which is
fine for tree-shaped data such as parsed HTML).
"""

from __future__ import annotations

import contextlib
import json
import re
import sys
from typing import Iterator

from ..errors import SerializationError
from ..timestamps import Timestamp, parse_timestamp
from .model import OEMDatabase
from .values import COMPLEX, is_atomic_value

__all__ = ["dumps", "loads", "to_json", "from_json"]

_BARE_LABEL = re.compile(r"^[A-Za-z&_][A-Za-z0-9_\-&]*$")
_BARE_ID = re.compile(r"^[A-Za-z0-9_\-]+$")


@contextlib.contextmanager
def _recursion_headroom(extra: int):
    """Temporarily raise the recursion limit for deep (chain-shaped) graphs.

    The writer and parser recurse per nesting level; pathological but
    legal databases (a 10,000-node chain) would otherwise hit Python's
    default limit mid-serialization.
    """
    current = sys.getrecursionlimit()
    wanted = extra + 200
    if wanted > current:
        sys.setrecursionlimit(wanted)
    try:
        yield
    finally:
        sys.setrecursionlimit(current)


# ---------------------------------------------------------------------------
# Writing
# ---------------------------------------------------------------------------

def _quote_label(label: str) -> str:
    if _BARE_LABEL.match(label):
        return label
    return json.dumps(label)


def _quote_id(node_id: str) -> str:
    if _BARE_ID.match(node_id):
        return f"&{node_id}"
    return "&" + json.dumps(node_id)


def _atomic_literal(value: object) -> str:
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, Timestamp):
        return f"@{value}"
    if isinstance(value, (int, float)):
        return repr(value)
    if isinstance(value, str):
        return json.dumps(value)
    raise SerializationError(f"cannot serialize atomic value {value!r}")


def dumps(db: OEMDatabase, indent: int = 2) -> str:
    """Serialize ``db`` to the textual OEM format.

    Every node reachable from the root is emitted exactly once in full;
    later occurrences are back-references (``&id`` with no body), which
    preserves shared subobjects and cycles.
    """
    emitted: set[str] = set()
    pad = " " * indent

    def render(node_id: str, depth: int) -> Iterator[str]:
        head = _quote_id(node_id)
        if node_id in emitted:
            yield head
            return
        emitted.add(node_id)
        value = db.value(node_id)
        if value is not COMPLEX:
            yield f"{head} {_atomic_literal(value)}"
            return
        arcs = sorted(db.out_arcs(node_id))
        if not arcs:
            yield f"{head} {{}}"
            return
        yield f"{head} {{"
        for arc in arcs:
            parts = list(render(arc.target, depth + 1))
            first = f"{pad * (depth + 1)}{_quote_label(arc.label)}: {parts[0]}"
            yield first
            yield from parts[1:]
        yield f"{pad * depth}}}"

    lines: list[str] = []
    with _recursion_headroom(len(db) * 3):
        for piece in render(db.root, 0):
            lines.append(piece)
    # Join nested renderings that were produced as flat line lists: the
    # recursive generator already carries correct indentation in bodies.
    return "\n".join(lines) + "\n"


# ---------------------------------------------------------------------------
# Parsing
# ---------------------------------------------------------------------------

class _Reader:
    """Minimal cursor over the serialized text with line/column tracking."""

    def __init__(self, text: str) -> None:
        self.text = text
        self.pos = 0

    def _location(self) -> tuple[int, int]:
        consumed = self.text[:self.pos]
        line = consumed.count("\n") + 1
        column = len(consumed) - (consumed.rfind("\n") + 1) + 1
        return line, column

    def error(self, message: str) -> SerializationError:
        line, column = self._location()
        return SerializationError(message, line, column)

    def skip_space(self) -> None:
        while self.pos < len(self.text):
            ch = self.text[self.pos]
            if ch in " \t\r\n":
                self.pos += 1
            elif ch == "#":  # comment to end of line
                newline = self.text.find("\n", self.pos)
                self.pos = len(self.text) if newline < 0 else newline
            else:
                break

    def peek(self) -> str:
        return self.text[self.pos] if self.pos < len(self.text) else ""

    def expect(self, ch: str) -> None:
        if self.peek() != ch:
            raise self.error(f"expected {ch!r}, found {self.peek()!r}")
        self.pos += 1

    def read_quoted(self) -> str:
        start = self.pos
        if self.peek() != '"':
            raise self.error("expected a quoted string")
        self.pos += 1
        while self.pos < len(self.text):
            ch = self.text[self.pos]
            if ch == "\\":
                self.pos += 2
                continue
            if ch == '"':
                self.pos += 1
                try:
                    return json.loads(self.text[start:self.pos])
                except json.JSONDecodeError as exc:
                    raise self.error(f"bad string literal: {exc}") from exc
            self.pos += 1
        raise self.error("unterminated string literal")

    def read_while(self, pattern: str) -> str:
        match = re.match(pattern, self.text[self.pos:])
        if not match:
            raise self.error("unexpected character")
        self.pos += match.end()
        return match.group(0)


def loads(text: str, root_hint: str | None = None) -> OEMDatabase:
    """Parse the textual OEM format back into an :class:`OEMDatabase`.

    The first object in the text becomes the root.  ``root_hint`` is only
    used when the text's root id must be overridden (rare; tests).
    """
    reader = _Reader(text)
    reader.skip_space()
    if reader.peek() != "&":
        raise reader.error("OEM text must start with an object id (&...)")

    db: list[OEMDatabase] = []  # created lazily once the root id is known
    defined: set[str] = set()

    def read_id() -> str:
        reader.expect("&")
        if reader.peek() == '"':
            return reader.read_quoted()
        return reader.read_while(r"[A-Za-z0-9_\-]+")

    def ensure_node(node_id: str) -> None:
        if not db:
            root_id = root_hint or node_id
            db.append(OEMDatabase(root=root_id))
            defined.add(root_id)
            return
        if node_id not in db[0]:
            db[0].create_node(node_id, COMPLEX)

    def read_object() -> str:
        node_id = read_id()
        ensure_node(node_id)
        reader.skip_space()
        ch = reader.peek()
        if ch == "{":
            if node_id in defined and db[0].has_children(node_id):
                raise reader.error(f"object &{node_id} defined twice")
            defined.add(node_id)
            reader.expect("{")
            reader.skip_space()
            while reader.peek() != "}":
                label = read_label()
                reader.skip_space()
                reader.expect(":")
                reader.skip_space()
                child = read_object()
                db[0].add_arc(node_id, label, child)
                reader.skip_space()
                if reader.peek() == ",":
                    reader.pos += 1
                    reader.skip_space()
            reader.expect("}")
        elif ch == '"' or ch == "@" or ch.isdigit() or ch in "+-" \
                or reader.text.startswith(("true", "false"), reader.pos):
            value = read_atomic()
            defined.add(node_id)
            db[0].update_value(node_id, value)
        # otherwise: a bare back-reference; nothing more to read.
        return node_id

    def read_label() -> str:
        if reader.peek() == '"':
            return reader.read_quoted()
        return reader.read_while(r"[A-Za-z&_][A-Za-z0-9_\-&]*")

    def read_atomic():
        ch = reader.peek()
        if ch == '"':
            return reader.read_quoted()
        if ch == "@":
            reader.pos += 1
            raw = reader.read_while(r"[A-Za-z0-9:\- ]+").strip()
            return parse_timestamp(raw)
        if reader.text.startswith("true", reader.pos):
            reader.pos += 4
            return True
        if reader.text.startswith("false", reader.pos):
            reader.pos += 5
            return False
        raw = reader.read_while(r"[-+]?[0-9][0-9_]*(\.[0-9]+)?([eE][-+]?[0-9]+)?")
        if any(marker in raw for marker in ".eE"):
            return float(raw)
        return int(raw)

    with _recursion_headroom(text.count("{") * 2):
        read_object()
    reader.skip_space()
    if reader.pos != len(reader.text):
        raise reader.error("trailing text after root object")
    if not db:
        raise SerializationError("empty OEM text")
    return db[0]


# ---------------------------------------------------------------------------
# JSON bridge
# ---------------------------------------------------------------------------

def to_json(db: OEMDatabase, node_id: str | None = None) -> object:
    """Export the tree under ``node_id`` (default: root) as a JSON value.

    Sharing collapses into repeated subtrees; a cycle raises
    :class:`~repro.errors.SerializationError` since JSON cannot express it.
    Multiple same-labeled children become JSON arrays.
    """
    start = db.root if node_id is None else node_id
    on_stack: set[str] = set()

    def walk(node: str) -> object:
        if node in on_stack:
            raise SerializationError(
                f"cycle through &{node} cannot be represented as JSON")
        value = db.value(node)
        if value is not COMPLEX:
            if isinstance(value, Timestamp):
                return f"@{value}"
            return value
        on_stack.add(node)
        result: dict[str, object] = {}
        for label in sorted(db.out_labels(node)):
            kids = [walk(child) for child in db.children(node, label)]
            result[label] = kids[0] if len(kids) == 1 else kids
        on_stack.discard(node)
        return result

    return walk(start)


def from_json(value: object, root: str = "root") -> OEMDatabase:
    """Import a JSON value as a tree-shaped OEM database.

    Objects become complex nodes, arrays fan out same-labeled arcs (the
    array must appear as an object member), and scalars become atomic
    nodes.  A top-level scalar becomes a single ``value``-labeled child of
    the root, keeping the root complex as Definition 2.1 requires of
    parents.
    """
    db = OEMDatabase(root=root)

    def attach(parent: str, label: str, item: object) -> None:
        if isinstance(item, dict):
            node = db.create_node(db.new_node_id(), COMPLEX)
            db.add_arc(parent, label, node)
            for key, child in item.items():
                if isinstance(child, list):
                    for element in child:
                        attach(node, key, element)
                else:
                    attach(node, key, child)
        elif isinstance(item, list):
            for element in item:
                attach(parent, label, element)
        elif item is None:
            node = db.create_node(db.new_node_id(), "")
            db.add_arc(parent, label, node)
        elif isinstance(item, str) and item.startswith("@"):
            node = db.create_node(db.new_node_id(), parse_timestamp(item[1:]))
            db.add_arc(parent, label, node)
        elif is_atomic_value(item):
            node = db.create_node(db.new_node_id(), item)  # type: ignore[arg-type]
            db.add_arc(parent, label, node)
        else:
            raise SerializationError(f"cannot import JSON value {item!r}")

    if isinstance(value, dict):
        for key, child in value.items():
            if isinstance(child, list):
                for element in child:
                    attach(db.root, key, element)
            else:
                attach(db.root, key, child)
    else:
        attach(db.root, "value", value)
    return db
