"""The Object Exchange Model (OEM) substrate.

OEM (Section 2 of the paper; originally [PGMW95]) is a simple graph-based
data model: nodes are objects, labeled arcs are object--subobject
relationships, atomic objects carry values, and persistence is by
reachability from a distinguished root.

Public surface:

* :class:`~repro.oem.model.OEMDatabase` -- the database itself.
* :mod:`~repro.oem.values` -- the atomic value domain and Lorel coercion.
* :mod:`~repro.oem.changes` -- the four basic change operations.
* :mod:`~repro.oem.history` -- change sets and OEM histories.
* :mod:`~repro.oem.serialize` -- a textual interchange format.
* :mod:`~repro.oem.builder` -- an ergonomic construction DSL.
"""

from .values import COMPLEX, AtomicValue, Value, is_atomic_value
from .model import Arc, OEMDatabase
from .changes import AddArc, ChangeOp, CreNode, RemArc, UpdNode
from .history import ChangeSet, OEMHistory
from .builder import GraphBuilder
from .serialize import dumps, loads, from_json, to_json

__all__ = [
    "COMPLEX",
    "AtomicValue",
    "Value",
    "is_atomic_value",
    "Arc",
    "OEMDatabase",
    "ChangeOp",
    "CreNode",
    "UpdNode",
    "AddArc",
    "RemArc",
    "ChangeSet",
    "OEMHistory",
    "GraphBuilder",
    "dumps",
    "loads",
    "from_json",
    "to_json",
]
