"""Change sets and OEM histories (Section 2.2).

A *change set* is a set ``U`` of basic change operations that is valid for
a database ``O``: some ordering of ``U`` is a valid sequence, every valid
ordering produces the same result, and ``U`` never contains both
``addArc(p,l,c)`` and ``remArc(p,l,c)``.

An *OEM history* is a sequence ``H = (t1,U1),...,(tn,Un)`` of timestamped
change sets with strictly increasing timestamps (Definition 2.2).  After a
change set is applied, unreachable objects are considered deleted and the
remainder of the history must not touch them; identifiers are never reused.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

from ..errors import InvalidChangeError, InvalidHistoryError
from ..timestamps import Timestamp, parse_timestamp
from .changes import AddArc, ChangeOp, CreNode, RemArc, UpdNode
from .model import OEMDatabase
from .values import COMPLEX

__all__ = ["ChangeSet", "OEMHistory"]

# Canonical application order within one change set.  creNode must precede
# arcs to the new node; remArc must precede an updNode that turns a complex
# object atomic; updNode (possibly turning an atomic object complex) must
# precede addArc out of it.  Hence: cre -> rem -> upd -> add.
_PHASE = {CreNode: 0, RemArc: 1, UpdNode: 2, AddArc: 3}


class ChangeSet:
    """An unordered set of basic change operations applied atomically.

    The constructor performs the *syntactic* conflict checks of
    Definition 2.2 clause (3) plus the determinism conditions that make all
    valid orderings agree:

    * no ``addArc`` and ``remArc`` for the same ``(p, l, c)``;
    * at most one ``updNode`` per node (two would be order-dependent);
    * at most one ``creNode`` per node identifier;
    * no ``updNode`` following a ``creNode`` of the same node is *allowed*
      (create-then-update has a single valid order, so it is deterministic).

    Validity *against a particular database* is checked by
    :meth:`is_valid_for` / :meth:`apply_to`, which use the canonical order
    cre -> rem -> upd -> add.
    """

    def __init__(self, operations: Iterable[ChangeOp] = ()) -> None:
        self._ops: list[ChangeOp] = list(operations)
        self._check_conflicts()

    def _check_conflicts(self) -> None:
        seen_ops = set()
        adds: set[tuple[str, str, str]] = set()
        rems: set[tuple[str, str, str]] = set()
        updated: set[str] = set()
        created: set[str] = set()
        for op in self._ops:
            if op in seen_ops:
                raise InvalidHistoryError(f"duplicate operation in change set: {op}")
            seen_ops.add(op)
            if isinstance(op, AddArc):
                adds.add(op.arc)
            elif isinstance(op, RemArc):
                rems.add(op.arc)
            elif isinstance(op, UpdNode):
                if op.node in updated:
                    raise InvalidHistoryError(
                        f"two updNode operations for node {op.node!r} in one "
                        f"change set would be order-dependent")
                updated.add(op.node)
            elif isinstance(op, CreNode):
                if op.node in created:
                    raise InvalidHistoryError(
                        f"two creNode operations for node {op.node!r}")
                created.add(op.node)
        clash = adds & rems
        if clash:
            arc = next(iter(clash))
            raise InvalidHistoryError(
                f"change set contains both addArc and remArc for {arc}")
        overlap = created & updated
        if overlap:
            raise InvalidHistoryError(
                f"change set both creates and updates node(s) "
                f"{sorted(overlap)}; fold the update into the creation value")

    # ------------------------------------------------------------------

    def operations(self) -> tuple[ChangeOp, ...]:
        """The operations, in insertion order (no semantic ordering)."""
        return tuple(self._ops)

    def canonical_order(self) -> list[ChangeOp]:
        """The operations in the canonical application order.

        The order is cre -> rem -> upd -> add; within a phase, operations
        are sorted deterministically by their textual form, so replay is
        reproducible.
        """
        return sorted(self._ops, key=lambda op: (_PHASE[type(op)], str(op)))

    def __len__(self) -> int:
        return len(self._ops)

    def __iter__(self) -> Iterator[ChangeOp]:
        return iter(self._ops)

    def __bool__(self) -> bool:
        return bool(self._ops)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ChangeSet):
            return NotImplemented
        return set(self._ops) == set(other._ops)

    def __hash__(self) -> int:
        return hash(frozenset(self._ops))

    def __repr__(self) -> str:
        body = ", ".join(str(op) for op in self.canonical_order())
        return f"ChangeSet({{{body}}})"

    # ------------------------------------------------------------------

    def is_valid_for(self, db: OEMDatabase) -> bool:
        """True when the set can be applied to (a copy of) ``db``."""
        try:
            self.apply_to(db.copy())
        except InvalidChangeError:
            return False
        return True

    def apply_to(self, db: OEMDatabase, collect_garbage: bool = True) -> set[str]:
        """Apply the set to ``db`` in canonical order, mutating it.

        Per Section 2.2, unreachability is tolerated *within* the set and
        resolved afterwards: when ``collect_garbage`` is true (the
        default), nodes left unreachable are deleted and their identifiers
        returned.  Raises :class:`~repro.errors.InvalidChangeError` when
        any operation's precondition fails, leaving ``db`` in a partial
        state -- validate on a copy first if atomicity matters.
        """
        for op in self.canonical_order():
            op.apply(db)
        if collect_garbage:
            return db.collect_garbage()
        return set()

    def created_nodes(self) -> set[str]:
        """Identifiers of nodes this set creates."""
        return {op.node for op in self._ops if isinstance(op, CreNode)}

    def filter(self, kind: type) -> list[ChangeOp]:
        """The operations of one kind (e.g. ``AddArc``)."""
        return [op for op in self._ops if isinstance(op, kind)]


class OEMHistory:
    """A sequence of timestamped change sets (Definition 2.2).

    Timestamps must be strictly increasing.  The class is append-only;
    entries may be supplied to the constructor or added with
    :meth:`append`.  Timestamps are coerced with
    :func:`repro.timestamps.parse_timestamp`, so ``history.append("1Jan97",
    ops)`` works directly.
    """

    def __init__(self,
                 entries: Iterable[tuple[object, ChangeSet | Iterable[ChangeOp]]] = ()) -> None:
        self._entries: list[tuple[Timestamp, ChangeSet]] = []
        for when, change_set in entries:
            self.append(when, change_set)

    def append(self, when: object, change_set: ChangeSet | Iterable[ChangeOp]) -> None:
        """Append ``(when, change_set)``; ``when`` must exceed the last timestamp."""
        timestamp = parse_timestamp(when)
        if not timestamp.is_finite:
            raise InvalidHistoryError("history timestamps must be finite")
        if self._entries and timestamp <= self._entries[-1][0]:
            raise InvalidHistoryError(
                f"history timestamps must be strictly increasing: "
                f"{timestamp} does not follow {self._entries[-1][0]}")
        if not isinstance(change_set, ChangeSet):
            change_set = ChangeSet(change_set)
        self._entries.append((timestamp, change_set))

    # ------------------------------------------------------------------

    def entries(self) -> tuple[tuple[Timestamp, ChangeSet], ...]:
        """All ``(timestamp, change_set)`` pairs, oldest first."""
        return tuple(self._entries)

    def timestamps(self) -> list[Timestamp]:
        """The timestamps ``t1 < t2 < ... < tn``."""
        return [when for when, _ in self._entries]

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[tuple[Timestamp, ChangeSet]]:
        return iter(self._entries)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, OEMHistory):
            return NotImplemented
        return self._entries == other._entries

    def __repr__(self) -> str:
        return f"<OEMHistory of {len(self)} change set(s)>"

    # ------------------------------------------------------------------

    def is_valid_for(self, db: OEMDatabase) -> bool:
        """True when every change set applies in sequence to ``db``'s copy."""
        try:
            self.apply_to(db.copy())
        except InvalidChangeError:
            return False
        return True

    def apply_to(self, db: OEMDatabase) -> OEMDatabase:
        """Apply the whole history to ``db`` in place and return it.

        Garbage (unreachable nodes) is collected after every change set,
        matching the paper's deletion semantics.
        """
        for _, change_set in self._entries:
            change_set.apply_to(db)
        return db

    def replay(self, db: OEMDatabase) -> list[OEMDatabase]:
        """Return the snapshot sequence ``[O0, O1, ..., On]``.

        ``O0`` is a copy of ``db``; ``Oi`` is ``Ui(Oi-1)``.  ``db`` itself
        is left untouched.
        """
        snapshots = [db.copy()]
        current = db.copy()
        for _, change_set in self._entries:
            change_set.apply_to(current)
            snapshots.append(current.copy())
        return snapshots

    def snapshot_at(self, db: OEMDatabase, when: object) -> OEMDatabase:
        """The state of ``db`` after all change sets with timestamp <= ``when``."""
        cutoff = parse_timestamp(when)
        current = db.copy()
        for timestamp, change_set in self._entries:
            if timestamp > cutoff:
                break
            change_set.apply_to(current)
        return current

    def prefix(self, when: object) -> "OEMHistory":
        """The sub-history of entries with timestamp <= ``when``."""
        cutoff = parse_timestamp(when)
        clipped = OEMHistory()
        for timestamp, change_set in self._entries:
            if timestamp > cutoff:
                break
            clipped.append(timestamp, change_set)
        return clipped

    def operation_count(self) -> int:
        """Total number of basic change operations across all sets."""
        return sum(len(change_set) for _, change_set in self._entries)
