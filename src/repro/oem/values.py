"""The atomic value domain of OEM and Lorel's forgiving coercion rules.

Definition 2.1 maps every node to "a value that is an integer, string,
etc., or the reserved value C (for complex)".  We support integers, reals,
strings, booleans, and timestamps (the last so that DOEM annotations can be
encoded in plain OEM, Section 5.1).

Section 4.1 describes Lorel's type system: "When faced with the task of
comparing different types, Lorel first tries to coerce them to a common
type.  When such coercions fail, the comparison simply returns false
instead of raising an error."  :func:`compare` implements exactly that
behaviour, and :func:`like` implements SQL-style pattern matching used by
Lorel's ``like`` operator.
"""

from __future__ import annotations

import re
from typing import Union

from ..errors import ValueError_
from ..timestamps import Timestamp, parse_timestamp
from ..timestamps import is_timestamp_literal as _is_ts_literal

__all__ = [
    "COMPLEX",
    "Complex",
    "AtomicValue",
    "Value",
    "is_atomic_value",
    "check_value",
    "value_repr",
    "coerce_pair",
    "compare",
    "like",
]


class Complex:
    """The reserved value ``C`` marking complex (non-atomic) objects.

    There is a single instance, :data:`COMPLEX`; identity comparison is
    safe and the instance is falsy so that ``if node_value:`` reads well.
    """

    _instance: "Complex | None" = None

    def __new__(cls) -> "Complex":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "COMPLEX"

    def __bool__(self) -> bool:
        return False

    def __deepcopy__(self, memo: dict) -> "Complex":
        return self

    def __copy__(self) -> "Complex":
        return self


COMPLEX = Complex()
"""The singleton reserved value ``C`` of Definition 2.1."""

AtomicValue = Union[int, float, str, bool, Timestamp]
"""Python types admitted as atomic OEM values."""

Value = Union[AtomicValue, Complex]
"""Any legal node value: an atomic value or :data:`COMPLEX`."""


def is_atomic_value(value: object) -> bool:
    """Return True when ``value`` belongs to the atomic value domain."""
    return isinstance(value, (int, float, str, bool, Timestamp)) \
        and not isinstance(value, Complex)


def check_value(value: object) -> Value:
    """Validate that ``value`` is a legal OEM node value and return it.

    Raises :class:`~repro.errors.ValueError_` for anything outside the
    domain (lists, dicts, None, ...).
    """
    if value is COMPLEX or is_atomic_value(value):
        return value  # type: ignore[return-value]
    raise ValueError_(
        f"illegal OEM value {value!r}: expected int, float, str, bool, "
        f"Timestamp, or COMPLEX")


def value_repr(value: Value) -> str:
    """A stable, human-readable rendering of a node value."""
    if value is COMPLEX:
        return "C"
    if isinstance(value, str):
        return repr(value)
    return str(value)


# ---------------------------------------------------------------------------
# Lorel coercion
# ---------------------------------------------------------------------------

_NUMERIC_RE = re.compile(r"^\s*[-+]?(\d+\.?\d*|\.\d+)([eE][-+]?\d+)?\s*$")


def _as_number(value: AtomicValue) -> float | int | None:
    """Try to view ``value`` as a number; return None when impossible."""
    if isinstance(value, bool):
        return int(value)
    if isinstance(value, (int, float)):
        return value
    if isinstance(value, str) and _NUMERIC_RE.match(value):
        try:
            return int(value)
        except ValueError:
            return float(value)
    return None


def _as_timestamp(value: AtomicValue) -> Timestamp | None:
    """Try to view ``value`` as a timestamp; return None when impossible."""
    if isinstance(value, Timestamp):
        return value
    if isinstance(value, str) and _is_ts_literal(value):
        return parse_timestamp(value)
    return None


def coerce_pair(left: AtomicValue, right: AtomicValue):
    """Coerce two atomic values to a common comparable type.

    Returns a ``(left', right')`` pair on success or ``None`` when no
    coercion exists.  The coercion lattice, mirroring Lorel:

    * timestamp vs. timestamp-like string -> timestamps;
    * number vs. number-like (int, float, bool, numeric string) -> numbers;
    * string vs. string -> strings;
    * everything else -> no coercion (comparisons then yield False).
    """
    left_ts, right_ts = _as_timestamp(left), _as_timestamp(right)
    if isinstance(left, Timestamp) or isinstance(right, Timestamp):
        if left_ts is not None and right_ts is not None:
            return left_ts, right_ts
        return None

    left_num, right_num = _as_number(left), _as_number(right)
    if isinstance(left, (int, float)) or isinstance(right, (int, float)):
        if left_num is not None and right_num is not None:
            return left_num, right_num
        return None

    if isinstance(left, str) and isinstance(right, str):
        # Two strings that both look like timestamps compare temporally.
        if left_ts is not None and right_ts is not None:
            return left_ts, right_ts
        return left, right

    return None


_OPERATORS = {
    "=": lambda a, b: a == b,
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<>": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


def compare(left: object, right: object, op: str = "=") -> bool:
    """Lorel's forgiving comparison (Example 4.1).

    Complex values and failed coercions make the comparison return
    ``False`` -- never an error.  ``op`` is one of ``= == != <> < <= > >=``.
    """
    if op not in _OPERATORS:
        raise ValueError_(f"unknown comparison operator: {op!r}")
    if left is COMPLEX or right is COMPLEX or left is None or right is None:
        return False
    if not (is_atomic_value(left) and is_atomic_value(right)):
        return False
    pair = coerce_pair(left, right)  # type: ignore[arg-type]
    if pair is None:
        return False
    coerced_left, coerced_right = pair
    return _OPERATORS[op](coerced_left, coerced_right)


def like(value: object, pattern: str) -> bool:
    """SQL-style ``like`` matching with ``%`` (any run) and ``_`` (one char).

    Non-string values are coerced to their textual form first, in keeping
    with Lorel's forgiving style; complex values never match.
    """
    if value is COMPLEX or value is None:
        return False
    if isinstance(value, Timestamp):
        text = str(value)
    elif isinstance(value, bool):
        text = "true" if value else "false"
    elif isinstance(value, (int, float)):
        text = str(value)
    elif isinstance(value, str):
        text = value
    else:
        return False
    regex = "".join(
        ".*" if ch == "%" else "." if ch == "_" else re.escape(ch)
        for ch in pattern)
    return re.fullmatch(regex, text, flags=re.DOTALL) is not None
