"""repro: DOEM and Chorel -- representing and querying changes in
semistructured data.

A from-scratch reproduction of Chawathe, Abiteboul & Widom,
"Representing and Querying Changes in Semistructured Data" (ICDE 1998):
the OEM data model, DOEM change representation, the Lorel and Chorel
query languages (native and translation-based backends), snapshot
differencing (OEMdiff/htmldiff), and the Query Subscription Service.

Quick start::

    from repro import OEMDatabase, OEMHistory, UpdNode, build_doem, ChorelEngine

    db = OEMDatabase(root="guide")
    price = db.create_node("p1", 10)
    db.add_arc("guide", "price", price)

    history = OEMHistory([("1Jan97", [UpdNode("p1", 20)])])
    doem = build_doem(db, history)

    engine = ChorelEngine(doem, name="guide")
    result = engine.run("select T, NV from guide.price<upd at T to NV>")

See ``examples/`` for runnable end-to-end scenarios and ``DESIGN.md`` for
the paper-to-module map.
"""

from .errors import (
    DiffError,
    DOEMError,
    EncodingError,
    EvaluationError,
    FrequencyError,
    InfeasibleDOEMError,
    InvalidChangeError,
    InvalidHistoryError,
    LexError,
    OEMError,
    ParseError,
    QSSError,
    QueryError,
    ReproError,
    SerializationError,
    SubscriptionError,
    TimestampError,
    TranslationError,
)
from .timestamps import NEG_INF, POS_INF, Timestamp, parse_timestamp
from .obs import (
    MetricsRegistry,
    QueryProfile,
    Span,
    Tracer,
    disable_tracing,
    enable_tracing,
    get_tracer,
    metrics_registry,
    profile_query,
    span,
)
from .oem import (
    COMPLEX,
    AddArc,
    Arc,
    ChangeOp,
    ChangeSet,
    CreNode,
    GraphBuilder,
    OEMDatabase,
    OEMHistory,
    RemArc,
    UpdNode,
)
from .oem.serialize import dumps, from_json, loads, to_json
from .doem import (
    Add,
    Cre,
    compact,
    DOEMDatabase,
    Rem,
    SnapshotCache,
    SnapshotCacheStats,
    Upd,
    build_doem,
    cached_snapshot_at,
    current_snapshot,
    decode_doem,
    encode_doem,
    encoded_history,
    is_feasible,
    original_snapshot,
    snapshot_at,
    snapshot_cache,
)
from .lorel import LorelEngine, QueryResult, format_query, parse_query
from .parallel import ParallelExecutor, WorkerPool, parallel_run, run_many
from .lorel.update import parse_update, plan_update
from .chorel import ChorelEngine, TranslatingChorelEngine, translate_query
from .chorel.optimize import IndexedChorelEngine
from .plan import (
    CompiledPlan,
    EngineStats,
    IndexPlan,
    PassManager,
    compile_query,
    execute_plan,
)
from .triggers import Activation, Event, Rule, TriggerManager
from .lore import (
    AnnotationIndex,
    IndexStats,
    LabelIndex,
    LoreStore,
    PathIndex,
    TimestampIndex,
    ValueIndex,
)
from .diff import apply_diff, html_diff, html_to_oem, id_diff, match_snapshots, oem_diff
from .qss import (
    QSC,
    DOEMManager,
    FrequencySpec,
    Notification,
    QSSServer,
    Subscription,
    Wrapper,
)
from .sources import (
    LibrarySource,
    RestaurantGuideSource,
    Source,
    StaticSource,
    large_database,
    large_history,
    large_world,
    random_change_set,
    random_database,
    random_history,
)

__version__ = "1.0.0"

__all__ = [
    # errors
    "ReproError", "OEMError", "DOEMError", "QueryError", "QSSError",
    "InvalidChangeError", "InvalidHistoryError", "InfeasibleDOEMError",
    "EncodingError", "SerializationError", "LexError", "ParseError",
    "EvaluationError", "TranslationError", "TimestampError", "DiffError",
    "FrequencyError", "SubscriptionError",
    # time
    "Timestamp", "parse_timestamp", "NEG_INF", "POS_INF",
    # observability
    "Tracer", "Span", "get_tracer", "enable_tracing", "disable_tracing",
    "span", "MetricsRegistry", "metrics_registry", "QueryProfile",
    "profile_query",
    # OEM
    "OEMDatabase", "Arc", "COMPLEX", "GraphBuilder",
    "CreNode", "UpdNode", "AddArc", "RemArc", "ChangeOp",
    "ChangeSet", "OEMHistory",
    "dumps", "loads", "to_json", "from_json",
    # DOEM
    "DOEMDatabase", "Cre", "Upd", "Add", "Rem", "build_doem",
    "snapshot_at", "original_snapshot", "current_snapshot",
    "SnapshotCache", "SnapshotCacheStats", "snapshot_cache",
    "cached_snapshot_at",
    "encoded_history", "is_feasible", "encode_doem", "decode_doem",
    "compact",
    # query languages
    "LorelEngine", "QueryResult", "parse_query", "format_query",
    "parse_update", "plan_update",
    "ChorelEngine", "TranslatingChorelEngine", "translate_query",
    "IndexedChorelEngine",
    "CompiledPlan", "EngineStats", "IndexPlan", "PassManager",
    "compile_query", "execute_plan",
    # parallel execution
    "ParallelExecutor", "WorkerPool", "parallel_run", "run_many",
    # triggers (Section 7 future work)
    "TriggerManager", "Rule", "Event", "Activation",
    # lore
    "LoreStore", "LabelIndex", "ValueIndex", "AnnotationIndex",
    "TimestampIndex", "PathIndex", "IndexStats",
    # diff
    "match_snapshots", "oem_diff", "apply_diff", "id_diff",
    "html_to_oem", "html_diff",
    # QSS
    "QSSServer", "QSC", "Subscription", "Notification", "FrequencySpec",
    "Wrapper", "DOEMManager",
    # sources
    "Source", "StaticSource", "RestaurantGuideSource", "LibrarySource",
    "random_database", "random_change_set", "random_history",
    "large_database", "large_history", "large_world",
    "__version__",
]
