"""Identifier-based differencing: the fast path for cooperative sources.

OEMdiff's matcher exists because autonomous sources expose no stable
object identity (Section 6).  But when a source *does* preserve
identifiers between polls -- a wrapped relational system, an export with
primary keys -- differencing degenerates to set comparison: no matching,
no similarity scoring, strictly linear.

:func:`id_diff` computes ``U`` with ``U(old) == new`` **exactly** (same
identifiers, not just isomorphic), under the assumption that equal ids
denote the same object.  The QSS :class:`~repro.qss.managers.DOEMManager`
accepts ``differ="ids"`` to use it; the diff-scaling benchmark quantifies
what identifier stability buys.
"""

from __future__ import annotations

from ..errors import DiffError
from ..oem.changes import AddArc, ChangeOp, CreNode, RemArc, UpdNode
from ..oem.history import ChangeSet
from ..oem.model import OEMDatabase

__all__ = ["id_diff"]


def id_diff(old_db: OEMDatabase, new_db: OEMDatabase) -> ChangeSet:
    """Infer the change set between two snapshots sharing identifiers.

    Preconditions: the roots have equal identifiers, and no identifier of
    a node *deleted* from ``old_db`` is recycled for an unrelated object
    in ``new_db`` (the paper's id-discipline).  Violations surface as
    value updates or arc rewires rather than errors -- equal ids are
    trusted, that is the contract.
    """
    if old_db.root != new_db.root:
        raise DiffError(
            f"id_diff requires matching roots "
            f"({old_db.root!r} != {new_db.root!r}); use oem_diff for "
            f"sources without stable identifiers")

    ops: list[ChangeOp] = []
    old_nodes = set(old_db.nodes())
    new_nodes = set(new_db.nodes())

    for node in new_nodes - old_nodes:
        ops.append(CreNode(node, new_db.value(node)))
    for node in old_nodes & new_nodes:
        if old_db.value(node) != new_db.value(node):
            ops.append(UpdNode(node, new_db.value(node)))

    old_arcs = set(old_db.arcs())
    new_arcs = set(new_db.arcs())
    for arc in new_arcs - old_arcs:
        ops.append(AddArc(*arc))
    for arc in old_arcs - new_arcs:
        # Arcs inside a fully deleted subtree die by unreachability, but
        # distinguishing them from rewires requires reachability math
        # that costs more than emitting the removal; emit unless the
        # source endpoint itself disappeared (then GC handles the rest).
        if arc.source in new_nodes:
            ops.append(RemArc(*arc))

    return ChangeSet(ops)
