"""Snapshot differencing: inferring changes from pairs of OEM snapshots.

"We are often forced to infer changes based on a sequence of data
snapshots" (Section 1.2).  The paper delegates the algorithmics to its
companion papers [CRGMW96, CGM97]; this package implements a
label/value-guided hierarchical matching differ with the property QSS
needs: for snapshots ``A`` and ``B``, :func:`~repro.diff.oemdiff.oem_diff`
returns a valid change set ``U`` with ``U(A)`` isomorphic to ``B``.

* :mod:`~repro.diff.matching` -- node correspondence between snapshots;
* :mod:`~repro.diff.oemdiff` -- change-operation inference (the OEMdiff
  module of Figure 7);
* :mod:`~repro.diff.htmldiff` -- the htmldiff tool of Figure 1: HTML to
  OEM, diff, and marked-up HTML output.
"""

from .matching import match_snapshots, Matching
from .oemdiff import oem_diff, apply_diff
from .iddiff import id_diff
from .htmldiff import html_to_oem, html_diff

__all__ = ["match_snapshots", "Matching", "oem_diff", "apply_diff",
           "id_diff", "html_to_oem", "html_diff"]
