"""OEMdiff: inferring a change set from two OEM snapshots (Figure 7).

Given an old snapshot ``A`` and a new snapshot ``B`` (typically two
successive polling results), :func:`oem_diff` produces a
:class:`~repro.oem.history.ChangeSet` ``U``, phrased in ``A``'s identifier
space, such that ``U(A)`` is isomorphic to ``B``.  QSS folds these sets
into the subscription's DOEM database timestamp by timestamp.

The inference reads directly off a node matching
(:func:`~repro.diff.matching.match_snapshots`):

* unmatched new nodes   -> ``creNode`` (fresh identifiers);
* matched, changed value -> ``updNode``;
* new-side arcs missing on the old side -> ``addArc``;
* old-side arcs (from surviving parents) missing on the new side ->
  ``remArc`` -- unmatched old nodes then die by unreachability, OEM's
  deletion semantics.
"""

from __future__ import annotations

from typing import Callable, Iterable

from ..errors import DiffError
from ..obs.metrics import registry as metrics_registry
from ..obs.trace import span
from ..oem.changes import AddArc, ChangeOp, CreNode, RemArc, UpdNode
from ..oem.history import ChangeSet
from ..oem.model import OEMDatabase
from .matching import Matching, match_snapshots

__all__ = ["oem_diff", "apply_diff", "DiffStats"]


class DiffStats:
    """Operation counts of one diff, for reporting and benchmarks."""

    def __init__(self, change_set: ChangeSet) -> None:
        self.creates = len(change_set.filter(CreNode))
        self.updates = len(change_set.filter(UpdNode))
        self.additions = len(change_set.filter(AddArc))
        self.removals = len(change_set.filter(RemArc))

    @property
    def total(self) -> int:
        """Total number of basic change operations."""
        return self.creates + self.updates + self.additions + self.removals

    def __str__(self) -> str:
        return (f"cre={self.creates} upd={self.updates} "
                f"add={self.additions} rem={self.removals}")


def oem_diff(old_db: OEMDatabase, new_db: OEMDatabase,
             matching: Matching | None = None,
             reserved_ids: Iterable[str] = (),
             id_factory: Callable[[], str] | None = None) -> ChangeSet:
    """Infer ``U`` with ``U(old_db)`` isomorphic to ``new_db``.

    ``matching`` may be precomputed (tests exercise hand-built matchings);
    by default :func:`~repro.diff.matching.match_snapshots` runs first.
    ``reserved_ids`` lists identifiers that must not be minted for created
    nodes (QSS passes every identifier its DOEM database has *ever* used,
    since deleted identifiers are never reused); alternatively
    ``id_factory`` takes over identifier generation entirely.
    """
    if matching is None:
        with span("diff.match"):
            matching = match_snapshots(old_db, new_db)
    reserved = set(reserved_ids)

    counter = [0]

    def default_factory() -> str:
        while True:
            counter[0] += 1
            candidate = f"d{counter[0]}"
            if candidate not in reserved and not old_db.has_node(candidate):
                return candidate

    make_id = id_factory or default_factory

    ops: list[ChangeOp] = []
    with span("diff.infer"):
        # 1. Created nodes: unmatched on the new side.
        created: dict[str, str] = {}  # new id -> old-space id
        for node in new_db.nodes():
            if not matching.matched_new(node):
                fresh = make_id()
                if old_db.has_node(fresh) or fresh in created.values():
                    raise DiffError(
                        f"id factory produced a colliding id {fresh!r}")
                created[node] = fresh
                ops.append(CreNode(fresh, new_db.value(node)))

        def to_old(new_node: str) -> str:
            if new_node in created:
                return created[new_node]
            return matching.new_to_old[new_node]

        # 2. Updated values on matched nodes.
        for old_node, new_node in matching.old_to_new.items():
            if old_db.value(old_node) != new_db.value(new_node):
                ops.append(UpdNode(old_node, new_db.value(new_node)))

        # 3. Arcs present on the new side but absent on the old side.
        for arc in new_db.arcs():
            old_source = to_old(arc.source)
            old_target = to_old(arc.target)
            if not old_db.has_arc(old_source, arc.label, old_target):
                ops.append(AddArc(old_source, arc.label, old_target))

        # 4. Arcs on the old side, between surviving endpoints, that are
        #    gone.  Arcs touching unmatched old nodes die with them by
        #    unreachability, except arcs *from* survivors *to* doomed
        #    nodes, which must be removed explicitly to cut reachability.
        for arc in old_db.arcs():
            if not matching.matched_old(arc.source):
                continue  # the whole subtree dies with its unmatched parent
            new_source = matching.old_to_new[arc.source]
            if matching.matched_old(arc.target):
                new_target = matching.old_to_new[arc.target]
                if not new_db.has_arc(new_source, arc.label, new_target):
                    ops.append(RemArc(*arc))
            else:
                ops.append(RemArc(*arc))

    registry = metrics_registry()
    registry.counter("repro.diff.runs").inc()
    registry.counter("repro.diff.ops").inc(len(ops))
    return ChangeSet(ops)


def apply_diff(old_db: OEMDatabase, change_set: ChangeSet) -> OEMDatabase:
    """Apply a diff to a copy of ``old_db`` and return the result."""
    result = old_db.copy()
    change_set.apply_to(result)
    return result
