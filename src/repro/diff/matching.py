"""Node matching between two OEM snapshots.

The differencing algorithms of [CRGMW96] first compute a *matching*
between the objects of the old and new snapshots, then read the edit
operations off the matching.  This module implements a deterministic
matcher tuned for the snapshots QSS sees (polling results whose node
identifiers may be entirely fresh each time):

1. **Signature pass** -- every node gets an iterated structural hash
   (value for atoms; multiset of ``(label, child signature)`` for complex
   nodes, refined a bounded number of rounds so cycles converge).
2. **Anchor pass** -- roots match; nodes with equal signatures that are
   *unique on both sides* match.
3. **Propagation pass** -- matched parents greedily match their children
   label by label: exact-signature children first, then best-effort pairs
   scored by value equality and child-signature overlap (so an updated
   atom still matches its old incarnation rather than looking
   created+deleted).

The result intentionally favors *plausible minimal edits* over optimal
tree-edit distance -- the paper's own htmldiff makes the same trade
(min-cost matching is cubic; snapshots are polled frequently).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from ..oem.model import OEMDatabase
from ..oem.values import COMPLEX

__all__ = ["Matching", "match_snapshots", "node_signatures"]

_REFINEMENT_ROUNDS = 8


def node_signatures(db: OEMDatabase,
                    rounds: int = _REFINEMENT_ROUNDS) -> dict[str, int]:
    """Iterated structural hashes for every node of ``db``.

    Atomic nodes hash their value; complex nodes hash the multiset of
    ``(label, child signature)`` pairs.  ``rounds`` bounds the refinement
    so cyclic graphs terminate; two nodes with equal signatures are
    structurally indistinguishable to depth ``rounds``.
    """
    sig: dict[str, int] = {}
    for node in db.nodes():
        value = db.value(node)
        sig[node] = hash(("atom", value)) if value is not COMPLEX \
            else hash("complex")
    for _ in range(rounds):
        updated: dict[str, int] = {}
        for node in db.nodes():
            if db.value(node) is not COMPLEX:
                updated[node] = sig[node]
                continue
            children = tuple(sorted(
                (arc.label, sig[arc.target]) for arc in db.out_arcs(node)))
            updated[node] = hash((children,))
        if updated == sig:
            break
        sig = updated
    return sig


@dataclass
class Matching:
    """A partial bijection between old-snapshot and new-snapshot nodes."""

    old_to_new: dict[str, str] = field(default_factory=dict)
    new_to_old: dict[str, str] = field(default_factory=dict)

    def link(self, old: str, new: str) -> None:
        """Record ``old ~ new``; both sides must be unmatched."""
        if old in self.old_to_new or new in self.new_to_old:
            raise ValueError(f"double match: {old} ~ {new}")
        self.old_to_new[old] = new
        self.new_to_old[new] = old

    def matched_old(self, node: str) -> bool:
        """Is the old-side node matched?"""
        return node in self.old_to_new

    def matched_new(self, node: str) -> bool:
        """Is the new-side node matched?"""
        return node in self.new_to_old

    def __len__(self) -> int:
        return len(self.old_to_new)


def _value_key(db: OEMDatabase, node: str) -> object:
    value = db.value(node)
    return ("C",) if value is COMPLEX else (type(value).__name__, value)


def _string_similarity(left: str, right: str) -> float:
    """Token-bag overlap in [0, 1]; rewards small edits to long text."""
    left_tokens = left.split()
    right_tokens = right.split()
    if not left_tokens and not right_tokens:
        return 1.0
    if not left_tokens or not right_tokens:
        return 0.0
    overlap = _multiset_overlap(sorted(left_tokens), sorted(right_tokens))
    return 2 * overlap / (len(left_tokens) + len(right_tokens))


_TEXT_BAG_LIMIT = 64


def text_bags(db: OEMDatabase) -> dict[str, list[str]]:
    """A bounded token multiset of each subtree's text content.

    Used to score complex-node candidates by what their contents *say*,
    so an ``<li>`` whose price changed still matches its old incarnation
    (the [CRGMW96] differ compares text chunks the same way).
    """
    bags: dict[str, list[str]] = {}
    on_stack: set[str] = set()

    def collect(node: str) -> list[str]:
        if node in bags:
            return bags[node]
        if node in on_stack:
            return []
        value = db.value(node)
        if value is not COMPLEX:
            bag = sorted(str(value).split()[:_TEXT_BAG_LIMIT])
            bags[node] = bag
            return bag
        on_stack.add(node)
        merged: list[str] = []
        for arc in db.out_arcs(node):
            merged.extend(collect(arc.target))
            if len(merged) >= _TEXT_BAG_LIMIT:
                break
        on_stack.discard(node)
        bag = sorted(merged[:_TEXT_BAG_LIMIT])
        bags[node] = bag
        return bag

    for node in db.nodes():
        collect(node)
    return bags


def _similarity(old_db: OEMDatabase, old: str, new_db: OEMDatabase,
                new: str, old_sig: dict[str, int],
                new_sig: dict[str, int],
                old_bags: dict[str, list[str]] | None = None,
                new_bags: dict[str, list[str]] | None = None) -> float:
    """A [0, 1] score of how alike two unmatched candidates are."""
    score = 0.0
    old_value, new_value = old_db.value(old), new_db.value(new)
    if _value_key(old_db, old) == _value_key(new_db, new):
        score += 0.5
    elif isinstance(old_value, str) and isinstance(new_value, str):
        # Updated text should still match its old incarnation: partial
        # credit proportional to token overlap.
        score += 0.5 * _string_similarity(old_value, new_value)
    elif old_value is not COMPLEX and new_value is not COMPLEX and \
            type(old_value) is type(new_value):
        score += 0.15
    old_kids = sorted((arc.label, old_sig[arc.target])
                      for arc in old_db.out_arcs(old))
    new_kids = sorted((arc.label, new_sig[arc.target])
                      for arc in new_db.out_arcs(new))
    if old_kids or new_kids:
        overlap = _multiset_overlap(old_kids, new_kids)
        structural = 2 * overlap / (len(old_kids) + len(new_kids))
        textual = 0.0
        if old_bags is not None and new_bags is not None:
            left, right = old_bags.get(old, []), new_bags.get(new, [])
            if left or right:
                text_overlap = _multiset_overlap(left, right)
                textual = 2 * text_overlap / (len(left) + len(right))
        score += 0.4 * max(structural, textual)
    else:
        score += 0.4 if _value_key(old_db, old)[0] == _value_key(new_db, new)[0] else 0.0
    old_labels = {arc.label for arc in old_db.out_arcs(old)}
    new_labels = {arc.label for arc in new_db.out_arcs(new)}
    if old_labels or new_labels:
        union = old_labels | new_labels
        score += 0.1 * (len(old_labels & new_labels) / len(union))
    else:
        score += 0.1
    return score


def _multiset_overlap(left: list, right: list) -> int:
    counts: dict[object, int] = {}
    for item in left:
        counts[item] = counts.get(item, 0) + 1
    overlap = 0
    for item in right:
        if counts.get(item, 0) > 0:
            counts[item] -= 1
            overlap += 1
    return overlap


def match_snapshots(old_db: OEMDatabase,
                    new_db: OEMDatabase) -> Matching:
    """Compute a matching between ``old_db`` and ``new_db`` nodes."""
    old_sig = node_signatures(old_db)
    new_sig = node_signatures(new_db)
    old_bags = text_bags(old_db)
    new_bags = text_bags(new_db)
    matching = Matching()
    matching.link(old_db.root, new_db.root)

    # Anchor pass: signatures unique on both sides match unconditionally.
    old_by_sig: dict[int, list[str]] = {}
    for node, signature in old_sig.items():
        old_by_sig.setdefault(signature, []).append(node)
    new_by_sig: dict[int, list[str]] = {}
    for node, signature in new_sig.items():
        new_by_sig.setdefault(signature, []).append(node)
    for signature, old_nodes in old_by_sig.items():
        new_nodes = new_by_sig.get(signature, [])
        if len(old_nodes) == 1 and len(new_nodes) == 1:
            old, new = old_nodes[0], new_nodes[0]
            if not matching.matched_old(old) and not matching.matched_new(new):
                matching.link(old, new)

    # Propagation: repeatedly walk matched parents and pair their children.
    changed = True
    while changed:
        changed = False
        for old_parent, new_parent in list(matching.old_to_new.items()):
            if old_db.value(old_parent) is not COMPLEX:
                continue
            if new_db.value(new_parent) is not COMPLEX:
                continue
            changed |= _match_children(
                old_db, old_parent, new_db, new_parent,
                old_sig, new_sig, matching, old_bags, new_bags)
    return matching


def _match_children(old_db: OEMDatabase, old_parent: str,
                    new_db: OEMDatabase, new_parent: str,
                    old_sig: dict[str, int], new_sig: dict[str, int],
                    matching: Matching,
                    old_bags: dict[str, list[str]] | None = None,
                    new_bags: dict[str, list[str]] | None = None) -> bool:
    """Pair the children of one matched parent pair; True when progress."""
    progress = False
    labels = set(old_db.out_labels(old_parent)) | set(new_db.out_labels(new_parent))
    for label in sorted(labels):
        old_kids = [child for child in old_db.children(old_parent, label)
                    if not matching.matched_old(child)]
        new_kids = [child for child in new_db.children(new_parent, label)
                    if not matching.matched_new(child)]
        if not old_kids or not new_kids:
            continue

        # Exact-signature pairing first (stable order for determinism).
        remaining_new = list(new_kids)
        for old in sorted(old_kids):
            for new in sorted(remaining_new):
                if old_sig[old] == new_sig[new]:
                    matching.link(old, new)
                    remaining_new.remove(new)
                    progress = True
                    break
        old_kids = [child for child in old_kids
                    if not matching.matched_old(child)]
        new_kids = [child for child in remaining_new
                    if not matching.matched_new(child)]

        # Best-effort pairing by similarity for the rest.
        scored: list[tuple[float, str, str]] = []
        for old in old_kids:
            for new in new_kids:
                score = _similarity(old_db, old, new_db, new,
                                    old_sig, new_sig, old_bags, new_bags)
                if score >= 0.3:
                    scored.append((score, old, new))
        scored.sort(key=lambda entry: (-entry[0], entry[1], entry[2]))
        for score, old, new in scored:
            if matching.matched_old(old) or matching.matched_new(new):
                continue
            matching.link(old, new)
            progress = True
    return progress
