"""htmldiff: marked-up change visualization for HTML pages (Figure 1).

The paper's htmldiff tool [CRGMW96] "takes two versions of a web page as
input, and produces as output a marked-up copy of the web page that
highlights the differences between the two versions based on their
semistructured contents".  This module reproduces the pipeline:

1. :func:`html_to_oem` parses HTML (stdlib :mod:`html.parser`) into an
   OEM tree -- elements become complex objects with their tag as the
   incoming arc label, text runs become ``text``-labeled atomic objects,
   attributes become ``@attr``-labeled atoms;
2. the two trees are matched and diffed with
   :mod:`repro.diff.oemdiff`;
3. :func:`html_diff` renders the *new* version back to HTML with change
   markers -- the insert/update/delete icons of Figure 1 become
   ``<span class="htmldiff-...">`` wrappers plus a marker glyph, and a
   summary legend is prepended.
"""

from __future__ import annotations

import html as _html
from dataclasses import dataclass, field
from html.parser import HTMLParser

from ..oem.changes import AddArc, CreNode, RemArc, UpdNode
from ..oem.history import ChangeSet
from ..oem.model import OEMDatabase
from ..oem.values import COMPLEX
from .matching import Matching, match_snapshots
from .oemdiff import DiffStats, oem_diff

__all__ = ["html_to_oem", "html_diff", "HtmlDiffResult"]

_VOID_TAGS = frozenset({
    "area", "base", "br", "col", "embed", "hr", "img", "input",
    "link", "meta", "param", "source", "track", "wbr",
})

INSERT_MARK = "[+]"
UPDATE_MARK = "[~]"
DELETE_MARK = "[-]"


class _OEMBuilder(HTMLParser):
    """Streams HTML into an OEM tree."""

    def __init__(self, db: OEMDatabase) -> None:
        super().__init__(convert_charrefs=True)
        self.db = db
        self.stack: list[str] = [db.root]

    def handle_starttag(self, tag: str, attrs) -> None:
        node = self.db.create_node(self.db.new_node_id("h"), COMPLEX)
        self.db.add_arc(self.stack[-1], tag, node)
        for name, value in attrs:
            attr_node = self.db.create_node(self.db.new_node_id("h"),
                                            value if value is not None else "")
            self.db.add_arc(node, f"@{name}", attr_node)
        if tag not in _VOID_TAGS:
            self.stack.append(node)

    def handle_endtag(self, tag: str) -> None:
        if len(self.stack) > 1:
            self.stack.pop()

    def handle_data(self, data: str) -> None:
        text = data.strip()
        if not text:
            return
        node = self.db.create_node(self.db.new_node_id("h"), text)
        self.db.add_arc(self.stack[-1], "text", node)


def html_to_oem(source: str, root: str = "page") -> OEMDatabase:
    """Parse an HTML document into a tree-shaped OEM database."""
    db = OEMDatabase(root=root)
    builder = _OEMBuilder(db)
    builder.feed(source)
    builder.close()
    return db


@dataclass
class HtmlDiffResult:
    """Output of :func:`html_diff`.

    ``markup`` is the marked-up HTML; ``stats`` counts the inferred basic
    change operations; ``change_set`` is the raw diff (in the old tree's
    identifier space) for programmatic use.
    """

    markup: str
    stats: DiffStats
    change_set: ChangeSet
    inserted_new_nodes: set[str] = field(default_factory=set)
    updated_new_nodes: set[str] = field(default_factory=set)
    deleted_fragments: list[str] = field(default_factory=list)


def html_diff(old_source: str, new_source: str) -> HtmlDiffResult:
    """Diff two HTML versions, returning marked-up HTML (Figure 1 style).

    Inserted elements/text render wrapped in
    ``<span class="htmldiff-insert">[+] ...</span>``, updated text in
    ``htmldiff-update`` (with the old text in a ``title`` attribute), and
    fragments deleted from the old version are listed at the end inside a
    ``htmldiff-deleted`` block -- the browsable equivalents of the
    paper's colored icons.
    """
    old_db = html_to_oem(old_source, root="page")
    new_db = html_to_oem(new_source, root="page")
    matching = match_snapshots(old_db, new_db)
    change_set = oem_diff(old_db, new_db, matching=matching)
    stats = DiffStats(change_set)

    inserted: set[str] = set()       # new-side nodes that are creations
    for node in new_db.nodes():
        if not matching.matched_new(node):
            inserted.add(node)
    updated: set[str] = set()        # new-side nodes whose value changed
    for old_node, new_node in matching.old_to_new.items():
        if old_db.value(old_node) != new_db.value(new_node):
            updated.add(new_node)
    old_updated = {matching.new_to_old[node]: node for node in updated}

    # Old-side fragments that disappear entirely.
    deleted_fragments: list[str] = []
    removed_arcs = {op.arc for op in change_set.filter(RemArc)}
    for arc in old_db.arcs():
        if not matching.matched_old(arc.target) and \
                matching.matched_old(arc.source):
            deleted_fragments.append(_render_plain(old_db, arc.target, arc.label))

    def render(node: str, label: str) -> str:
        value = new_db.value(node)
        freshly_inserted = node in inserted
        if value is not COMPLEX:
            text = _html.escape(str(value))
            if label.startswith("@"):
                return ""  # attributes render with their element
            if freshly_inserted:
                return (f'<span class="htmldiff-insert">{INSERT_MARK} '
                        f"{text}</span>")
            if node in updated:
                old_node = matching.new_to_old[node]
                old_text = _html.escape(str(old_db.value(old_node)))
                return (f'<span class="htmldiff-update" title="was: '
                        f'{old_text}">{UPDATE_MARK} {text}</span>')
            return text
        attrs = []
        body_parts = []
        for arc in new_db.out_arcs(node):
            if arc.label.startswith("@"):
                attr_value = _html.escape(str(new_db.value(arc.target)), quote=True)
                attrs.append(f' {arc.label[1:]}="{attr_value}"')
            elif arc.label == "text":
                body_parts.append(render(arc.target, "text"))
            else:
                body_parts.append(render(arc.target, arc.label))
        body = "".join(body_parts)
        if label == "":
            return body
        open_tag = f"<{label}{''.join(sorted(attrs))}>"
        close_tag = "" if label in _VOID_TAGS else f"</{label}>"
        rendered = f"{open_tag}{body}{close_tag}"
        if freshly_inserted:
            return (f'<span class="htmldiff-insert">{INSERT_MARK} '
                    f"{rendered}</span>")
        return rendered

    body = "".join(render(arc.target, arc.label)
                   for arc in new_db.out_arcs(new_db.root))

    legend = (f'<div class="htmldiff-legend">htmldiff: '
              f"{stats.creates} insertion(s), {stats.updates} update(s), "
              f"{stats.removals} removal(s)</div>")
    deleted_block = ""
    if deleted_fragments:
        items = "".join(f"<li>{DELETE_MARK} {fragment}</li>"
                        for fragment in deleted_fragments)
        deleted_block = (f'<div class="htmldiff-deleted"><b>Deleted '
                         f"content:</b><ul>{items}</ul></div>")
    markup = legend + body + deleted_block
    return HtmlDiffResult(markup=markup, stats=stats, change_set=change_set,
                          inserted_new_nodes=inserted,
                          updated_new_nodes=updated,
                          deleted_fragments=deleted_fragments)


def _render_plain(db: OEMDatabase, node: str, label: str) -> str:
    """Plain (marker-free) HTML rendering of an old-side fragment."""
    value = db.value(node)
    if value is not COMPLEX:
        return _html.escape(str(value))
    body = "".join(_render_plain(db, arc.target, arc.label)
                   for arc in db.out_arcs(node)
                   if not arc.label.startswith("@"))
    if label in ("", "text"):
        return body
    close = "" if label in _VOID_TAGS else f"</{label}>"
    return f"<{label}>{body}{close}"
