"""Exception hierarchy for the repro package.

Every error raised by this library derives from :class:`ReproError`, so
applications can catch one base class.  Subsystems raise the more specific
classes below; they carry enough context (node identifiers, source
positions, query text) to diagnose a failure without a debugger.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class OEMError(ReproError):
    """Base class for errors concerning OEM databases."""


class UnknownNodeError(OEMError):
    """An operation referenced a node identifier not present in the database."""

    def __init__(self, node_id: str) -> None:
        super().__init__(f"unknown node identifier: {node_id!r}")
        self.node_id = node_id


class DuplicateNodeError(OEMError):
    """A node was created with an identifier that already exists."""

    def __init__(self, node_id: str) -> None:
        super().__init__(f"node identifier already in use: {node_id!r}")
        self.node_id = node_id


class InvalidChangeError(OEMError):
    """A basic change operation was not valid for the target database.

    Section 2.1 of the paper defines the preconditions of the four basic
    change operations (creNode, updNode, addArc, remArc); this error is
    raised when one of those preconditions fails.
    """


class InvalidHistoryError(OEMError):
    """A change set or history violated the validity rules of Section 2.2."""


class ValueError_(OEMError):
    """An atomic value was of an unsupported type."""


class SerializationError(ReproError):
    """Reading or writing the textual OEM format failed."""

    def __init__(self, message: str, line: int | None = None, column: int | None = None) -> None:
        location = ""
        if line is not None:
            location = f" at line {line}"
            if column is not None:
                location += f", column {column}"
        super().__init__(message + location)
        self.line = line
        self.column = column


class DOEMError(ReproError):
    """Base class for errors concerning DOEM databases."""


class InfeasibleDOEMError(DOEMError):
    """A DOEM database does not correspond to any valid (O, H) pair."""


class EncodingError(DOEMError):
    """The OEM encoding of a DOEM database was malformed or undecodable."""


class QueryError(ReproError):
    """Base class for query-language errors (Lorel and Chorel)."""


class LexError(QueryError):
    """The query text could not be tokenized."""

    def __init__(self, message: str, position: int) -> None:
        super().__init__(f"{message} (at offset {position})")
        self.position = position


class ParseError(QueryError):
    """The query text could not be parsed."""

    def __init__(self, message: str, position: int | None = None) -> None:
        if position is not None:
            message = f"{message} (at offset {position})"
        super().__init__(message)
        self.position = position


class EvaluationError(QueryError):
    """A query failed during evaluation (e.g., unbound variable)."""


class TranslationError(QueryError):
    """A Chorel query could not be translated to Lorel."""


class TimestampError(ReproError):
    """A textual timestamp could not be coerced to the time domain."""


class DiffError(ReproError):
    """The snapshot differencing algorithm failed."""


class QSSError(ReproError):
    """Base class for Query Subscription Service errors."""


class FrequencyError(QSSError):
    """A frequency specification could not be parsed."""


class SubscriptionError(QSSError):
    """A subscription was malformed or referenced unknown components."""


class StoreError(ReproError):
    """Base class for durable change-log store errors."""


class StoreCorruptionError(StoreError):
    """A segment or checkpoint failed its integrity checks."""


class StoreLockedError(StoreError):
    """Another process holds the store's single-writer lock."""
