"""A bounded worker pool with first-class observability.

:class:`WorkerPool` wraps :class:`concurrent.futures.ThreadPoolExecutor`
with the accounting the rest of the system wants:

* **utilization counters** -- ``<prefix>.submitted`` / ``completed`` /
  ``errors`` / ``cancelled`` in the global metrics registry, plus
  ``task_seconds`` (execution time) and ``wait_seconds`` (queue time)
  histograms and an ``active`` / ``peak_active`` gauge pair, so a
  metrics dump shows how busy the pool ran;
* **deterministic fan-out** -- :meth:`map_ordered` returns results in
  submission order regardless of completion order, the primitive the
  parallel query executor's merge step is built on;
* **bounded shutdown** -- :meth:`shutdown` drains or cancels pending
  work; a shut-down pool rejects new submissions instead of hanging.

Threads, not processes: the workloads here are dominated by pure-Python
graph walks that share large in-memory databases, so the cheap sharing
of a thread pool beats pickling whole DOEM databases across process
boundaries -- and the thread-safety contract of the underlying modules
(see ``docs/parallel.md``) is what makes it correct.
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import Future, ThreadPoolExecutor
from time import perf_counter
from typing import Callable, Iterable, Sequence, TypeVar

from ..obs.metrics import registry as metrics_registry

__all__ = ["WorkerPool", "default_worker_count", "default_pool"]

T = TypeVar("T")
R = TypeVar("R")

_MAX_DEFAULT_WORKERS = 8


def default_worker_count() -> int:
    """The default pool width: CPU count, clamped to [1, 8].

    Pure-Python evaluation holds the GIL most of the time, so very wide
    pools only add scheduling overhead; 8 is plenty to overlap the
    lock-released stretches (bisects, copies) and any wrapper I/O.
    """
    return max(1, min(_MAX_DEFAULT_WORKERS, os.cpu_count() or 1))


class WorkerPool:
    """A bounded thread pool with registry-backed utilization metrics.

    ``metrics_prefix`` names the counter family -- the query layer uses
    the default ``repro.pool``; the QSS server's poll pool reports under
    ``qss.pool`` so the two workloads stay distinguishable in one dump.
    """

    def __init__(self, max_workers: int | None = None, *,
                 metrics_prefix: str = "repro.pool",
                 thread_name_prefix: str = "repro-worker") -> None:
        if max_workers is None:
            max_workers = default_worker_count()
        if max_workers < 1:
            raise ValueError("WorkerPool needs max_workers >= 1")
        self.max_workers = max_workers
        self.metrics_prefix = metrics_prefix
        self._executor = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix=thread_name_prefix)
        self._metrics = metrics_registry().group(
            metrics_prefix, ("submitted", "completed", "errors", "cancelled"),
            histograms=("task_seconds", "wait_seconds"))
        self._active_gauge = metrics_registry().gauge(f"{metrics_prefix}.active")
        self._peak_gauge = metrics_registry().gauge(
            f"{metrics_prefix}.peak_active")
        metrics_registry().gauge(f"{metrics_prefix}.max_workers").set(
            max_workers)
        self._active = 0
        self._peak_active = 0
        self._lock = threading.Lock()
        self._shut_down = False

    # -- submission ------------------------------------------------------

    def submit(self, fn: Callable[..., R], *args, **kwargs) -> "Future[R]":
        """Schedule ``fn(*args, **kwargs)``; returns its future.

        Raises :class:`RuntimeError` after :meth:`shutdown` -- a closed
        pool must fail loudly, not queue work that will never run.
        """
        if self._shut_down:
            raise RuntimeError("cannot submit to a shut-down WorkerPool")
        submitted_at = perf_counter()

        def wrapped():
            self._metrics.histogram("wait_seconds").observe(
                perf_counter() - submitted_at)
            self._enter()
            started = perf_counter()
            try:
                result = fn(*args, **kwargs)
            except BaseException:
                self._metrics["errors"].inc()
                raise
            finally:
                self._metrics.histogram("task_seconds").observe(
                    perf_counter() - started)
                self._leave()
            self._metrics["completed"].inc()
            return result

        self._metrics["submitted"].inc()
        try:
            return self._executor.submit(wrapped)
        except RuntimeError:
            self._metrics["cancelled"].inc()
            raise

    def map_ordered(self, fn: Callable[[T], R],
                    items: Iterable[T]) -> list[R]:
        """Run ``fn`` over ``items`` concurrently; results in input order.

        The deterministic-merge primitive: completion order does not leak
        into the result list, so callers that partition work into ordered
        shards recover exactly the serial concatenation.
        """
        futures = [self.submit(fn, item) for item in items]
        return [future.result() for future in futures]

    # -- accounting ------------------------------------------------------

    def _enter(self) -> None:
        with self._lock:
            self._active += 1
            if self._active > self._peak_active:
                self._peak_active = self._active
                self._peak_gauge.set(self._peak_active)
            self._active_gauge.set(self._active)

    def _leave(self) -> None:
        with self._lock:
            self._active -= 1
            self._active_gauge.set(self._active)

    @property
    def active(self) -> int:
        """Tasks executing right now."""
        with self._lock:
            return self._active

    @property
    def peak_active(self) -> int:
        """The most tasks ever executing at once (utilization high-water)."""
        with self._lock:
            return self._peak_active

    @property
    def utilization(self) -> float:
        """``peak_active / max_workers`` -- how much of the pool was used."""
        return self.peak_active / self.max_workers

    def stats(self) -> dict:
        """The pool's counter family as plain values (for artifacts)."""
        snapshot = self._metrics.snapshot()
        snapshot[f"{self.metrics_prefix}.max_workers"] = self.max_workers
        snapshot[f"{self.metrics_prefix}.peak_active"] = self.peak_active
        return snapshot

    # -- lifecycle -------------------------------------------------------

    def shutdown(self, wait: bool = True,
                 cancel_pending: bool = False) -> None:
        """Stop the pool.

        ``wait=True`` blocks until running (and, unless
        ``cancel_pending``, queued) tasks finish; ``cancel_pending=True``
        cancels tasks still in the queue and counts them under
        ``<prefix>.cancelled``.  Safe to call repeatedly.
        """
        self._shut_down = True
        if cancel_pending:
            # Count the futures the executor will cancel.
            queue = getattr(self._executor, "_work_queue", None)
            if queue is not None:
                self._metrics["cancelled"].inc(queue.qsize())
        self._executor.shutdown(wait=wait, cancel_futures=cancel_pending)

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown(wait=True)


_DEFAULT_POOL: WorkerPool | None = None
_DEFAULT_POOL_LOCK = threading.Lock()


def default_pool() -> WorkerPool:
    """The process-wide shared pool (created on first use).

    Convenience entry point for :func:`repro.parallel.parallel_run` and
    ``engine.run_many`` callers that do not manage a pool themselves.
    Never shut this pool down from library code; it lives for the
    process.
    """
    global _DEFAULT_POOL
    with _DEFAULT_POOL_LOCK:
        if _DEFAULT_POOL is None or _DEFAULT_POOL._shut_down:
            _DEFAULT_POOL = WorkerPool()
        return _DEFAULT_POOL
