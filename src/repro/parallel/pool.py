"""A bounded worker pool with first-class observability.

:class:`WorkerPool` wraps :class:`concurrent.futures.ThreadPoolExecutor`
with the accounting the rest of the system wants:

* **utilization counters** -- ``<prefix>.submitted`` / ``completed`` /
  ``errors`` / ``cancelled`` in the global metrics registry, plus
  ``task_seconds`` (execution time) and ``wait_seconds`` (queue time)
  histograms and an ``active`` / ``peak_active`` gauge pair, so a
  metrics dump shows how busy the pool ran;
* **deterministic fan-out** -- :meth:`map_ordered` returns results in
  submission order regardless of completion order, the primitive the
  parallel query executor's merge step is built on;
* **bounded shutdown** -- :meth:`shutdown` drains or cancels pending
  work; a shut-down pool rejects new submissions instead of hanging.

Threads by default, processes on request: thread pools share the large
in-memory databases for free, and the thread-safety contract of the
underlying modules (see ``docs/parallel.md``) makes that correct -- but
pure-Python graph walks hold the GIL, so threads cannot overlap
CPU-bound shards.  ``WorkerPool(kind="process")`` wraps
:class:`concurrent.futures.ProcessPoolExecutor` instead: submitted
callables and arguments must be picklable, per-worker state (the shard
evaluator) is installed once per worker via ``initializer``/
``initargs`` (see :func:`worker_evaluator`), and accounting moves to
done-callbacks because the metrics closure cannot cross the process
boundary -- in process mode ``task_seconds`` therefore measures
submit-to-completion latency and ``wait_seconds`` is not observed.
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import BrokenExecutor, Future, \
    ProcessPoolExecutor, ThreadPoolExecutor
from time import perf_counter
from typing import Callable, Iterable, Sequence, TypeVar

from ..obs.events import emit_event
from ..obs.metrics import registry as metrics_registry
from ..obs.trace import get_tracer

__all__ = ["WorkerPool", "default_worker_count", "default_pool",
           "worker_evaluator"]

T = TypeVar("T")
R = TypeVar("R")

_MAX_DEFAULT_WORKERS = 8


def default_worker_count() -> int:
    """The default pool width: CPU count, clamped to [1, 8].

    Pure-Python evaluation holds the GIL most of the time, so very wide
    pools only add scheduling overhead; 8 is plenty to overlap the
    lock-released stretches (bisects, copies) and any wrapper I/O.
    """
    return max(1, min(_MAX_DEFAULT_WORKERS, os.cpu_count() or 1))


_WORKER_EVALUATOR = None


def _install_worker_evaluator(evaluator) -> None:
    """Process-pool initializer: pin this worker's evaluator replica.

    Runs once per worker process (and, trivially, works for thread pools
    too).  Shard tasks then reach the evaluator through
    :func:`worker_evaluator` instead of carrying it in every pickled
    task.
    """
    global _WORKER_EVALUATOR
    _WORKER_EVALUATOR = evaluator


def worker_evaluator():
    """The evaluator installed in this worker by the pool initializer."""
    if _WORKER_EVALUATOR is None:
        raise RuntimeError(
            "no worker evaluator installed; create the pool with "
            "initializer=_install_worker_evaluator (ParallelExecutor's "
            "processes=True does this)")
    return _WORKER_EVALUATOR


class WorkerPool:
    """A bounded worker pool with registry-backed utilization metrics.

    ``kind`` selects the executor: ``"thread"`` (the default) shares
    memory and suits workloads that release the GIL or shard I/O;
    ``"process"`` forks worker processes for CPU-bound pure-Python
    shards -- callables and arguments must then be picklable, and
    ``initializer``/``initargs`` seed per-worker state (the sharded
    Exchange installs the shard evaluator this way).

    ``metrics_prefix`` names the counter family -- the query layer uses
    the default ``repro.pool``; the QSS server's poll pool reports under
    ``qss.pool`` so the two workloads stay distinguishable in one dump.
    """

    def __init__(self, max_workers: int | None = None, *,
                 kind: str = "thread",
                 metrics_prefix: str = "repro.pool",
                 thread_name_prefix: str = "repro-worker",
                 initializer: Callable | None = None,
                 initargs: tuple = ()) -> None:
        if max_workers is None:
            max_workers = default_worker_count()
        if max_workers < 1:
            raise ValueError("WorkerPool needs max_workers >= 1")
        if kind not in ("thread", "process"):
            raise ValueError(f"unknown pool kind {kind!r}")
        self.max_workers = max_workers
        self.kind = kind
        self.metrics_prefix = metrics_prefix
        if kind == "process":
            self._executor = ProcessPoolExecutor(
                max_workers=max_workers,
                initializer=initializer, initargs=initargs)
        else:
            self._executor = ThreadPoolExecutor(
                max_workers=max_workers,
                thread_name_prefix=thread_name_prefix,
                initializer=initializer, initargs=initargs)
        self._metrics = metrics_registry().group(
            metrics_prefix, ("submitted", "completed", "errors", "cancelled"),
            histograms=("task_seconds", "wait_seconds"))
        self._active_gauge = metrics_registry().gauge(f"{metrics_prefix}.active")
        self._peak_gauge = metrics_registry().gauge(
            f"{metrics_prefix}.peak_active")
        metrics_registry().gauge(f"{metrics_prefix}.max_workers").set(
            max_workers)
        self._active = 0
        self._peak_active = 0
        self._lock = threading.Lock()
        self._shut_down = False

    # -- submission ------------------------------------------------------

    def submit(self, fn: Callable[..., R], *args, **kwargs) -> "Future[R]":
        """Schedule ``fn(*args, **kwargs)``; returns its future.

        Raises :class:`RuntimeError` after :meth:`shutdown` -- a closed
        pool must fail loudly, not queue work that will never run.
        """
        if self._shut_down:
            raise RuntimeError("cannot submit to a shut-down WorkerPool")
        submitted_at = perf_counter()
        if self.kind == "process":
            return self._submit_process(fn, args, kwargs, submitted_at)

        # Capture the submitting thread's open span so spans the task
        # opens on a worker thread nest under it instead of orphaning as
        # their own trace roots (the tracer's span stack is thread-local).
        tracer = get_tracer()
        parent_span = tracer.current_span() if tracer.enabled else None

        def wrapped():
            self._metrics.histogram("wait_seconds").observe(
                perf_counter() - submitted_at)
            self._enter()
            started = perf_counter()
            try:
                with tracer.attach_to(parent_span):
                    result = fn(*args, **kwargs)
            except BaseException:
                self._metrics["errors"].inc()
                raise
            finally:
                self._metrics.histogram("task_seconds").observe(
                    perf_counter() - started)
                self._leave()
            self._metrics["completed"].inc()
            return result

        self._metrics["submitted"].inc()
        try:
            return self._executor.submit(wrapped)
        except RuntimeError:
            self._metrics["cancelled"].inc()
            raise

    def _submit_process(self, fn, args, kwargs, submitted_at) -> Future:
        """Submit to the process executor; account via a done-callback.

        The thread pool's metrics closure cannot cross the process
        boundary, so the bare callable ships and the callback settles the
        books on completion: ``task_seconds`` here is submit-to-done
        latency, ``active`` counts in-flight (queued + running) tasks.
        """
        self._metrics["submitted"].inc()
        try:
            future = self._executor.submit(fn, *args, **kwargs)
        except RuntimeError:
            self._metrics["cancelled"].inc()
            raise
        self._enter()
        future.add_done_callback(
            lambda f: self._settle_process_task(f, submitted_at))
        return future

    def _settle_process_task(self, future: Future, submitted_at) -> None:
        self._leave()
        self._metrics.histogram("task_seconds").observe(
            perf_counter() - submitted_at)
        if future.cancelled():
            self._metrics["cancelled"].inc()
            return
        exc = future.exception()
        if exc is not None:
            self._metrics["errors"].inc()
            if isinstance(exc, BrokenExecutor):
                # The worker process died (segfault, os._exit, OOM kill)
                # rather than raising -- its telemetry delta is lost and
                # the whole executor is broken, so record the loss.
                emit_event("worker_crash", level="error",
                           pool=self.metrics_prefix,
                           error=type(exc).__name__, detail=str(exc))
        else:
            self._metrics["completed"].inc()

    def map_ordered(self, fn: Callable[[T], R],
                    items: Iterable[T]) -> list[R]:
        """Run ``fn`` over ``items`` concurrently; results in input order.

        The deterministic-merge primitive: completion order does not leak
        into the result list, so callers that partition work into ordered
        shards recover exactly the serial concatenation.
        """
        futures = [self.submit(fn, item) for item in items]
        return [future.result() for future in futures]

    # -- accounting ------------------------------------------------------

    def _enter(self) -> None:
        with self._lock:
            self._active += 1
            if self._active > self._peak_active:
                self._peak_active = self._active
                self._peak_gauge.set(self._peak_active)
            self._active_gauge.set(self._active)

    def _leave(self) -> None:
        with self._lock:
            self._active -= 1
            self._active_gauge.set(self._active)

    @property
    def active(self) -> int:
        """Tasks executing right now."""
        with self._lock:
            return self._active

    @property
    def peak_active(self) -> int:
        """The most tasks ever executing at once (utilization high-water)."""
        with self._lock:
            return self._peak_active

    @property
    def utilization(self) -> float:
        """``peak_active / max_workers`` -- how much of the pool was used."""
        return self.peak_active / self.max_workers

    def stats(self) -> dict:
        """The pool's counter family as plain values (for artifacts)."""
        snapshot = self._metrics.snapshot()
        snapshot[f"{self.metrics_prefix}.max_workers"] = self.max_workers
        snapshot[f"{self.metrics_prefix}.peak_active"] = self.peak_active
        return snapshot

    # -- lifecycle -------------------------------------------------------

    def shutdown(self, wait: bool = True,
                 cancel_pending: bool = False) -> None:
        """Stop the pool.

        ``wait=True`` blocks until running (and, unless
        ``cancel_pending``, queued) tasks finish; ``cancel_pending=True``
        cancels tasks still in the queue and counts them under
        ``<prefix>.cancelled``.  Safe to call repeatedly.
        """
        self._shut_down = True
        if cancel_pending:
            # Count the futures the executor will cancel.
            queue = getattr(self._executor, "_work_queue", None)
            if queue is not None:
                self._metrics["cancelled"].inc(queue.qsize())
        self._executor.shutdown(wait=wait, cancel_futures=cancel_pending)

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown(wait=True)


_DEFAULT_POOL: WorkerPool | None = None
_DEFAULT_POOL_LOCK = threading.Lock()


def default_pool() -> WorkerPool:
    """The process-wide shared pool (created on first use).

    Convenience entry point for :func:`repro.parallel.parallel_run` and
    ``engine.run_many`` callers that do not manage a pool themselves.
    Never shut this pool down from library code; it lives for the
    process.
    """
    global _DEFAULT_POOL
    with _DEFAULT_POOL_LOCK:
        if _DEFAULT_POOL is None or _DEFAULT_POOL._shut_down:
            _DEFAULT_POOL = WorkerPool()
        return _DEFAULT_POOL
