"""Sharded and batched query execution over the Lorel/Chorel engines.

Two orthogonal parallelism axes, both with **deterministic merges**:

* :meth:`ParallelExecutor.run` -- *intra-query* sharding, expressed in
  the plan algebra: the query is compiled through the engine's normal
  pipeline (:meth:`engine.compile`), and execution inserts an
  ``Exchange`` operator (:func:`repro.plan.physical.insert_exchange`)
  at the first from-item.  The Exchange binds its source serially, cuts
  the environments into contiguous shards
  (:mod:`repro.parallel.sharding`), runs the remaining plan stages per
  shard on worker threads, and concatenates in shard order -- replaying
  the serial enumeration exactly, so results are row- and
  order-identical to ``engine.run`` for any shard count (the property
  test in ``tests/parallel`` proves it on randomized histories).

* :meth:`ParallelExecutor.run_many` -- *inter-query* batching
  (``engine.run_many(queries)``).  The batch shares one acquisition of
  the engine's supporting structures -- queries are parsed once on the
  coordinating thread, the attached :class:`~repro.lore.indexes.PathIndex`
  freshness check and root expansion are pinned once instead of raced by
  every worker, and the attached :class:`~repro.lore.indexes.TimestampIndex`
  serves all workers -- then each query compiles and executes on a
  worker, and results return in input order.

Index pushdown is preserved: a query the planner lowers to an
``AnnotationFilter`` is answered by the index scan (already O(log n +
answers); slicing it thinner would only add overhead), with the engine's
pushdown accounting intact.

The executor never mutates the underlying database; conversely, callers
must not fold new history in *during* a parallel run -- the thread-safety
contract (``docs/parallel.md``) makes index/cache/metrics state safe, but
raw OEM/DOEM graph reads are unsynchronized snapshots-in-time.
"""

from __future__ import annotations

from typing import Iterable

from ..lorel.result import QueryResult
from ..obs.metrics import registry as metrics_registry
from ..obs.trace import span
from .pool import WorkerPool, default_pool

__all__ = ["ParallelExecutor", "parallel_run", "run_many"]

_metrics_group = None


def _engine_evaluator(engine):
    """The evaluator a shard worker needs to replicate ``engine``'s walk.

    Native engines own one directly; the translation backend evaluates
    through its inner Lorel engine.
    """
    evaluator = getattr(engine, "_evaluator", None)
    if evaluator is None:
        evaluator = engine.lorel._evaluator
    return evaluator


def _parallel_metrics():
    # The registry holds groups weakly; keep one strong module-level
    # reference so repro.parallel counters accumulate across executors
    # (including the ephemeral ones parallel_run/run_many create).
    global _metrics_group
    if _metrics_group is None:
        _metrics_group = metrics_registry().group(
            "repro.parallel",
            ("queries", "sharded_queries", "serial_queries", "shards",
             "batches", "batch_queries", "indexed_queries"))
    return _metrics_group


class ParallelExecutor:
    """Parallel execution wrapper around one Lorel/Chorel engine.

    ``pool`` shares an existing :class:`~repro.parallel.pool.WorkerPool`;
    ``max_workers`` creates a private pool instead (shut down by
    :meth:`close` / the context manager); with neither, the process-wide
    default pool is used.  ``min_shard_size`` tunes how many first-step
    bindings a shard must carry before sharding is worth it.

    ``processes=True`` creates a private *process* pool whose workers
    carry a replica of the engine's evaluator (installed once per worker
    by the pool initializer) -- the mode that lets CPU-bound pure-Python
    shards overlap on real cores instead of serializing on the GIL.
    Intra-query sharding (:meth:`run`) supports it; :meth:`run_many`
    requires a thread pool, since its unit of work is a bound engine
    method.
    """

    def __init__(self, engine, *, pool: WorkerPool | None = None,
                 max_workers: int | None = None,
                 min_shard_size: int = 1,
                 processes: bool = False) -> None:
        if min_shard_size < 1:
            raise ValueError("min_shard_size must be >= 1")
        self.engine = engine
        self.min_shard_size = min_shard_size
        if processes:
            if pool is not None:
                raise ValueError(
                    "processes=True creates its own pool; pass a "
                    "WorkerPool(kind='process') as pool= instead")
            from .pool import _install_worker_evaluator
            self.pool = WorkerPool(
                max_workers, kind="process",
                initializer=_install_worker_evaluator,
                initargs=(_engine_evaluator(engine),))
            self._owns_pool = True
        elif pool is not None:
            self.pool = pool
            self._owns_pool = False
        elif max_workers is not None:
            self.pool = WorkerPool(max_workers)
            self._owns_pool = True
        else:
            self.pool = default_pool()
            self._owns_pool = False
        self._metrics = _parallel_metrics()

    # -- lifecycle -------------------------------------------------------

    def close(self) -> None:
        """Shut down a privately owned pool (shared pools are left alone)."""
        if self._owns_pool:
            self.pool.shutdown(wait=True)

    def __enter__(self) -> "ParallelExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- single queries --------------------------------------------------

    def run(self, query, *, analyze: bool = False) -> QueryResult:
        """Evaluate one query with intra-query sharding.

        Row- and order-identical to ``engine.run(query)``.
        ``analyze=True`` collects per-operator runtime stats (identical
        rows) -- shard workers ship their stage stats back with the rows,
        so the merged tree on ``engine.last_compiled.runtime`` carries
        the same row totals a serial ANALYZE would.
        """
        engine = self.engine
        if isinstance(query, str):
            query = engine.parse(query)
        self._metrics["queries"].inc()
        compiled = engine._compile(query)
        if compiled.is_indexed:
            # The annotation-index scan is already sublinear; let the
            # engine serve it (and keep its pushdown accounting).
            self._metrics["indexed_queries"].inc()
            return engine.run(query, analyze=analyze)
        engine.last_compiled = compiled
        with span("parallel.query"):
            result = engine.execute(compiled, pool=self.pool,
                                    min_shard_size=self.min_shard_size,
                                    parallel_metrics=self._metrics,
                                    analyze=analyze)
        if getattr(engine, "stats", None) is not None:
            # Mirror the serial engine's pushdown split for this query.
            engine.stats.fallback_queries += 1
            engine.last_plan = None
        return result

    # -- batches ---------------------------------------------------------

    def run_many(self, queries: Iterable) -> list[QueryResult]:
        """Evaluate a batch of queries concurrently; results in input order.

        Equivalent to ``[engine.run(q) for q in queries]`` row for row.
        Parsing and index acquisition happen once, on the calling thread;
        each query then compiles and executes on a pool worker.
        """
        engine = self.engine
        if getattr(self.pool, "kind", "thread") == "process":
            raise ValueError(
                "run_many needs a thread pool (its unit of work is a "
                "bound engine method); use processes=True with run() "
                "for intra-query process sharding")
        with span("parallel.batch"):
            parsed = [engine.parse(query) if isinstance(query, str)
                      else query for query in queries]
            self._metrics["batches"].inc()
            self._metrics["batch_queries"].inc(len(parsed))
            if not parsed:
                return []
            self._acquire_shared()
            outcomes = self.pool.map_ordered(self._run_one, parsed)
        results: list[QueryResult] = []
        indexed = fallback = 0
        for result, mode in outcomes:
            results.append(result)
            if mode == "indexed":
                indexed += 1
            elif mode == "fallback":
                fallback += 1
        stats = getattr(engine, "stats", None)
        if stats is not None and indexed + fallback:
            # Pushdown accounting is applied here, on the calling thread,
            # so worker outcomes never race the CounterField descriptors.
            stats.indexed_queries += indexed
            stats.fallback_queries += fallback
            self._metrics["indexed_queries"].inc(indexed)
        return results

    def _run_one(self, parsed):
        """Compile + execute one batch member (runs on a pool worker)."""
        engine = self.engine
        compiled = engine._compile(parsed)
        result = engine.execute(compiled)
        if compiled.is_indexed:
            return result, "indexed"
        has_pushdown = getattr(engine, "stats", None) is not None
        return result, ("fallback" if has_pushdown else "plain")

    # -- shared context --------------------------------------------------

    def _acquire_shared(self) -> None:
        """Pin shared structures once before a batch fans out.

        The path index's fingerprint check (and its root-layer memo) runs
        here on the calling thread, so workers hit a warm, stable memo
        instead of all paying -- and serializing on -- the first-touch
        rebuild.  The timestamp index is attached to the database and
        needs no per-batch refresh.
        """
        paths = getattr(self.engine, "paths", None)
        if paths is not None:
            with span("parallel.acquire"):
                paths.nodes(())


def parallel_run(engine, query, *, pool: WorkerPool | None = None,
                 max_workers: int | None = None,
                 min_shard_size: int = 1) -> QueryResult:
    """One-shot sharded evaluation: ``engine.run(query)``, in parallel."""
    with ParallelExecutor(engine, pool=pool, max_workers=max_workers,
                          min_shard_size=min_shard_size) as executor:
        return executor.run(query)


def run_many(engine, queries, *, pool: WorkerPool | None = None,
             max_workers: int | None = None) -> list[QueryResult]:
    """One-shot batched evaluation; results in input order."""
    with ParallelExecutor(engine, pool=pool,
                          max_workers=max_workers) as executor:
        return executor.run_many(queries)
