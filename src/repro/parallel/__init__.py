"""Parallel query execution and concurrent fan-out primitives.

``repro.parallel`` layers workers on top of the serial engines without
changing what they compute: :class:`ParallelExecutor` shards a single
query along its first path-expression step and batches many queries over
one shared acquisition (``engine.run_many``), both with deterministic
merges that keep results row- and order-identical to serial evaluation.
:class:`WorkerPool` is the shared bounded pool (also used by the QSS
server's concurrent polling) -- threads by default, or
``kind="process"`` / ``ParallelExecutor(processes=True)`` for CPU-bound
shards that must overlap on real cores; :mod:`repro.parallel.sharding`
holds the contiguous-chunk partitioner the determinism argument rests
on.  See ``docs/parallel.md`` for the thread-safety contract.
"""

from .executor import ParallelExecutor, parallel_run, run_many
from .pool import WorkerPool, default_pool, default_worker_count, \
    worker_evaluator
from .sharding import chunk_evenly, chunk_fixed, shard_count

__all__ = [
    "ParallelExecutor",
    "parallel_run",
    "run_many",
    "WorkerPool",
    "default_pool",
    "default_worker_count",
    "worker_evaluator",
    "chunk_evenly",
    "chunk_fixed",
    "shard_count",
]
