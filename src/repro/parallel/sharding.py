"""Partitioning the first path-expression step into disjoint shards.

The evaluator's from clause enumerates bindings in a deterministic data
order (see :meth:`repro.lorel.eval.Evaluator.from_envs`).  Sharded
evaluation exploits that: bind the **first** from-item serially (cheap --
one step from the query root), split the resulting environments into
**contiguous** chunks, evaluate the remaining from-items/where/select per
chunk on worker threads, and concatenate chunk results in chunk order.
Because the chunks are contiguous and internally ordered, the
concatenation replays the serial enumeration exactly -- the merge is
deterministic and the rows come back identical, in identical order, for
any shard count.  (Koloniari et al. make the same observation for delta
logs: historical queries partition naturally along the object/annotation
axis.)
"""

from __future__ import annotations

from typing import Sequence, TypeVar

__all__ = ["chunk_evenly", "chunk_fixed", "shard_count"]

T = TypeVar("T")


def chunk_fixed(items: Sequence[T], size: int) -> list[list[T]]:
    """Split ``items`` into contiguous runs of exactly ``size`` rows
    (the last run may be shorter).

    The batched operators re-chunk with this -- a *fixed* width, unlike
    :func:`chunk_evenly`'s fixed *count* -- so every batch but the tail
    carries the same amortization. Concatenating the chunks replays the
    input exactly, preserving the deterministic-merge property.
    """
    if size < 1:
        raise ValueError("need a positive chunk size")
    items = list(items)
    return [items[start:start + size]
            for start in range(0, len(items), size)]


def chunk_evenly(items: Sequence[T], shards: int) -> list[list[T]]:
    """Split ``items`` into at most ``shards`` contiguous, near-even runs.

    Sizes differ by at most one; order within and across chunks preserves
    the input order; empty chunks are never produced.  ``chunk_evenly``
    of any ``shards >= 1`` concatenates back to ``items`` -- the property
    the deterministic merge relies on.
    """
    if shards < 1:
        raise ValueError("need at least one shard")
    items = list(items)
    count = min(shards, len(items))
    if count == 0:
        return []
    base, extra = divmod(len(items), count)
    chunks: list[list[T]] = []
    start = 0
    for position in range(count):
        size = base + (1 if position < extra else 0)
        chunks.append(items[start:start + size])
        start += size
    return chunks


def shard_count(n_items: int, max_workers: int, *,
                min_shard_size: int = 1) -> int:
    """How many shards to cut ``n_items`` first-step bindings into.

    Never more than ``max_workers`` (extra shards would only queue) and
    never so many that a shard falls below ``min_shard_size`` bindings
    (tiny shards pay more in submission overhead than they recover in
    overlap).
    """
    if n_items <= 0:
        return 0
    if min_shard_size < 1:
        raise ValueError("min_shard_size must be >= 1")
    return max(1, min(max_workers, n_items // min_shard_size or 1))
