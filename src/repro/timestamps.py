"""The time domain used by OEM histories, DOEM annotations, and Chorel.

Section 2.2 of the paper assumes "some time domain *time* that is discrete
and totally ordered; elements of *time* are called timestamps".  Section 4.2
additionally requires Lorel-style coercion: "we allow users to enter
timestamps using a textual representation, e.g. ``4Jan97``.  In keeping with
Lorel's extensive use of coercion, any recognizable format is allowed and is
converted automatically to an internal timestamp datatype."

This module provides:

* :class:`Timestamp` -- an immutable, totally ordered point in time with
  one-second granularity, plus the two infinities the QSS time variables
  need (``t[-i]`` is negative infinity before the i-th poll, Section 6).
* :func:`parse_timestamp` -- the forgiving coercion from the textual formats
  the paper uses (``1Jan97``, ``8Jan1997``), ISO dates, date-times, and raw
  integer ticks.
"""

from __future__ import annotations

import datetime as _dt
import functools
import re

from .errors import TimestampError

__all__ = [
    "Timestamp",
    "NEG_INF",
    "POS_INF",
    "parse_timestamp",
    "is_timestamp_literal",
]

_MONTHS = {
    "jan": 1, "feb": 2, "mar": 3, "apr": 4, "may": 5, "jun": 6,
    "jul": 7, "aug": 8, "sep": 9, "oct": 10, "nov": 11, "dec": 12,
}
_MONTH_NAMES = ["Jan", "Feb", "Mar", "Apr", "May", "Jun",
                "Jul", "Aug", "Sep", "Oct", "Nov", "Dec"]

# The compact style the paper uses throughout: 1Jan97, 30Dec96, 8Jan1997.
_PAPER_STYLE = re.compile(
    r"^\s*(\d{1,2})\s*([A-Za-z]{3,9})\s*(\d{2}|\d{4})"
    r"(?:[ T@](\d{1,2}):(\d{2})(?::(\d{2}))?\s*(am|pm|AM|PM)?)?\s*$"
)
_ISO_DATE = re.compile(r"^\s*(\d{4})-(\d{2})-(\d{2})"
                       r"(?:[ T](\d{1,2}):(\d{2})(?::(\d{2}))?)?\s*$")
_US_DATE = re.compile(r"^\s*(\d{1,2})/(\d{1,2})/(\d{2}|\d{4})\s*$")

_EPOCH = _dt.datetime(1970, 1, 1)


def _expand_year(text: str) -> int:
    """Expand a two-digit year the way 1998-era software did: 70-99 -> 19xx."""
    year = int(text)
    if len(text) == 4:
        return year
    return 1900 + year if year >= 70 else 2000 + year


@functools.total_ordering
class Timestamp:
    """An immutable point in the discrete, totally ordered time domain.

    Internally a timestamp is a count of seconds since 1970-01-01 00:00:00
    (an arbitrary but convenient origin; the paper only requires a discrete
    total order).  Two singleton sentinels, :data:`NEG_INF` and
    :data:`POS_INF`, compare below and above every finite timestamp; they
    are used by the QSS time variables and by "current snapshot" queries.
    """

    __slots__ = ("_ticks",)

    def __init__(self, ticks: int) -> None:
        if not isinstance(ticks, int):
            raise TimestampError(f"timestamp ticks must be an int, got {type(ticks).__name__}")
        object.__setattr__(self, "_ticks", ticks)

    # -- construction -------------------------------------------------

    @classmethod
    def from_datetime(cls, when: _dt.datetime) -> "Timestamp":
        """Build a timestamp from a naive :class:`datetime.datetime`."""
        return cls(int((when - _EPOCH).total_seconds()))

    @classmethod
    def from_date(cls, year: int, month: int, day: int,
                  hour: int = 0, minute: int = 0, second: int = 0) -> "Timestamp":
        """Build a timestamp from calendar components."""
        try:
            when = _dt.datetime(year, month, day, hour, minute, second)
        except ValueError as exc:
            raise TimestampError(str(exc)) from exc
        return cls.from_datetime(when)

    # -- accessors ----------------------------------------------------

    @property
    def ticks(self) -> int:
        """Seconds since the epoch origin of the time domain."""
        return self._ticks

    def to_datetime(self) -> _dt.datetime:
        """Return the timestamp as a naive :class:`datetime.datetime`."""
        return _EPOCH + _dt.timedelta(seconds=self._ticks)

    @property
    def is_finite(self) -> bool:
        """True for every ordinary timestamp; the infinities override this."""
        return True

    # -- arithmetic ---------------------------------------------------

    def plus(self, *, days: int = 0, hours: int = 0, minutes: int = 0,
             seconds: int = 0) -> "Timestamp":
        """Return a new timestamp offset by the given duration."""
        delta = ((days * 24 + hours) * 60 + minutes) * 60 + seconds
        return Timestamp(self._ticks + delta)

    def __sub__(self, other: "Timestamp") -> int:
        """Difference between two finite timestamps, in seconds."""
        if not (self.is_finite and other.is_finite):
            raise TimestampError("cannot subtract infinite timestamps")
        return self._ticks - other._ticks

    # -- ordering and hashing ------------------------------------------

    def _order_key(self) -> tuple[int, int]:
        return (0, self._ticks)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Timestamp):
            return NotImplemented
        return self._order_key() == other._order_key()

    def __lt__(self, other: "Timestamp") -> bool:
        if not isinstance(other, Timestamp):
            return NotImplemented
        return self._order_key() < other._order_key()

    def __hash__(self) -> int:
        return hash(self._order_key())

    # -- presentation ---------------------------------------------------

    def __str__(self) -> str:
        when = self.to_datetime()
        text = f"{when.day}{_MONTH_NAMES[when.month - 1]}{when.year % 100:02d}"
        if (when.hour, when.minute, when.second) != (0, 0, 0):
            text += f" {when.hour:02d}:{when.minute:02d}"
            if when.second:
                text += f":{when.second:02d}"
        return text

    def __repr__(self) -> str:
        return f"Timestamp({str(self)!r})"


class _Infinity(Timestamp):
    """Shared machinery for the two infinite timestamps."""

    __slots__ = ("_sign", "_name")

    def __init__(self, sign: int, name: str) -> None:
        super().__init__(0)
        object.__setattr__(self, "_sign", sign)
        object.__setattr__(self, "_name", name)

    @property
    def is_finite(self) -> bool:
        return False

    def _order_key(self) -> tuple[int, int]:
        return (self._sign, 0)

    def to_datetime(self) -> _dt.datetime:
        raise TimestampError(f"{self._name} has no calendar representation")

    def plus(self, **_kwargs: int) -> "Timestamp":
        return self

    def __str__(self) -> str:
        return self._name

    def __repr__(self) -> str:
        return self._name


NEG_INF: Timestamp = _Infinity(-1, "NEG_INF")
"""A timestamp smaller than every finite timestamp (``t[-i]`` before poll i)."""

POS_INF: Timestamp = _Infinity(+1, "POS_INF")
"""A timestamp larger than every finite timestamp ("now" for snapshots)."""


def parse_timestamp(text: object) -> Timestamp:
    """Coerce ``text`` to a :class:`Timestamp`, accepting any recognizable format.

    Accepted inputs:

    * an existing :class:`Timestamp` (returned unchanged);
    * a :class:`datetime.datetime` or :class:`datetime.date`;
    * an ``int`` (raw ticks);
    * the paper's compact style: ``"1Jan97"``, ``"30Dec96"``, ``"8Jan1997"``,
      optionally with a time of day (``"1Jan97 11:30pm"``);
    * ISO dates and date-times: ``"1997-01-01"``, ``"1997-01-01 23:30"``;
    * US-style dates: ``"1/8/97"``.

    Raises :class:`~repro.errors.TimestampError` when nothing matches, in
    the spirit of Lorel's coercion this is the *only* failure mode.
    """
    if isinstance(text, Timestamp):
        return text
    if isinstance(text, _dt.datetime):
        return Timestamp.from_datetime(text)
    if isinstance(text, _dt.date):
        return Timestamp.from_date(text.year, text.month, text.day)
    if isinstance(text, bool):
        raise TimestampError("cannot coerce a boolean to a timestamp")
    if isinstance(text, int):
        return Timestamp(text)
    if not isinstance(text, str):
        raise TimestampError(f"cannot coerce {type(text).__name__} to a timestamp")

    match = _PAPER_STYLE.match(text)
    if match:
        day, month_name, year = match.group(1), match.group(2), match.group(3)
        month = _MONTHS.get(month_name[:3].lower())
        if month is None:
            raise TimestampError(f"unknown month name in timestamp: {text!r}")
        hour = int(match.group(4) or 0)
        minute = int(match.group(5) or 0)
        second = int(match.group(6) or 0)
        meridiem = (match.group(7) or "").lower()
        if meridiem == "pm" and hour < 12:
            hour += 12
        if meridiem == "am" and hour == 12:
            hour = 0
        return Timestamp.from_date(_expand_year(year), month, int(day),
                                   hour, minute, second)

    match = _ISO_DATE.match(text)
    if match:
        return Timestamp.from_date(
            int(match.group(1)), int(match.group(2)), int(match.group(3)),
            int(match.group(4) or 0), int(match.group(5) or 0),
            int(match.group(6) or 0))

    match = _US_DATE.match(text)
    if match:
        return Timestamp.from_date(_expand_year(match.group(3)),
                                   int(match.group(1)), int(match.group(2)))

    raise TimestampError(f"unrecognizable timestamp format: {text!r}")


def is_timestamp_literal(text: str) -> bool:
    """Return True if ``text`` looks like a textual timestamp literal.

    The Lorel/Chorel lexer uses this to recognize tokens such as ``4Jan97``
    that start with digits but are not numbers.
    """
    return bool(_PAPER_STYLE.match(text) or _ISO_DATE.match(text)
                or _US_DATE.match(text))
