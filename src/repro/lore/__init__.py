"""A miniature Lore: persistent storage and indexes for OEM/DOEM databases.

The paper implements DOEM and Chorel "on top of" the Lore DBMS [MAG+97],
which supplies object storage and query processing for OEM.  This package
is the corresponding substrate in pure Python:

* :class:`~repro.lore.storage.LoreStore` -- a named collection of OEM and
  DOEM databases with file persistence (the QSS "DOEM Store" of Figure 7);
* :mod:`~repro.lore.indexes` -- label, value, and **annotation** indexes.
  Annotation indexes (by kind and timestamp) are the paper's Section 7
  future-work item; the index-ablation benchmark measures what they buy.
  :class:`~repro.lore.indexes.TimestampIndex` is the incrementally
  maintained variant (attached to a DOEM database via its annotation
  listeners) and :class:`~repro.lore.indexes.PathIndex` memoizes
  label-path reachability for Lorel/Chorel path evaluation; both carry
  :class:`~repro.lore.indexes.IndexStats` hit-rate counters.
"""

from .storage import LoreStore
from .indexes import (
    AnnotationIndex,
    IndexStats,
    LabelIndex,
    PathIndex,
    TimestampIndex,
    ValueIndex,
)

__all__ = ["LoreStore", "LabelIndex", "ValueIndex", "AnnotationIndex",
           "TimestampIndex", "PathIndex", "IndexStats"]
