"""Indexes over OEM graphs and DOEM annotations.

Lore maintains label and value indexes to accelerate path-expression
evaluation; the paper's future-work list adds "indexes on annotations
(based on their types and timestamps) ... to achieve a more efficient
translation of Chorel queries" (Section 7).  All three are implemented
here as explicit, rebuildable structures:

* :class:`LabelIndex` -- label -> arcs (parent, child) pairs;
* :class:`ValueIndex` -- exact-match hash plus a sorted array for range
  scans over comparable atomic values;
* :class:`AnnotationIndex` -- (annotation kind, timestamp range) ->
  annotated nodes/arcs, the structure the QSS filter queries (``T >
  t[-1]``) want.

The indexes are deliberately *not* wired invisibly into the evaluator;
the benchmarks compare indexed scans against full evaluator scans to
quantify the ablation.
"""

from __future__ import annotations

import bisect
from typing import Iterable, Iterator

from ..doem.annotations import Add, Cre, Rem, Upd
from ..doem.model import DOEMDatabase
from ..oem.model import Arc, OEMDatabase
from ..oem.values import COMPLEX, is_atomic_value
from ..timestamps import NEG_INF, POS_INF, Timestamp, parse_timestamp

__all__ = ["LabelIndex", "ValueIndex", "AnnotationIndex"]


class LabelIndex:
    """An inverted index from arc labels to the arcs bearing them."""

    def __init__(self, db: OEMDatabase | None = None) -> None:
        self._by_label: dict[str, list[Arc]] = {}
        if db is not None:
            self.rebuild(db)

    def rebuild(self, db: OEMDatabase) -> None:
        """Re-scan the database and rebuild the index from scratch."""
        self._by_label = {}
        for arc in db.arcs():
            self._by_label.setdefault(arc.label, []).append(arc)

    def arcs(self, label: str) -> list[Arc]:
        """All arcs labeled ``label``."""
        return list(self._by_label.get(label, ()))

    def labels(self) -> list[str]:
        """All distinct labels, sorted."""
        return sorted(self._by_label)

    def parents_of_label(self, label: str) -> set[str]:
        """Distinct sources of ``label`` arcs."""
        return {arc.source for arc in self._by_label.get(label, ())}

    def count(self, label: str) -> int:
        """Number of arcs labeled ``label``."""
        return len(self._by_label.get(label, ()))


class ValueIndex:
    """Exact and range lookup of atomic node values.

    Values are partitioned by coarse type (number / string / timestamp /
    bool) so that range scans stay well-ordered; Lorel's coercing
    comparisons can consult both the number and string partitions when a
    literal is ambiguous.
    """

    _NUMBER = "number"
    _STRING = "string"
    _TIMESTAMP = "timestamp"
    _BOOL = "bool"

    def __init__(self, db: OEMDatabase | None = None) -> None:
        self._exact: dict[tuple[str, object], list[str]] = {}
        self._sorted: dict[str, list[tuple[object, str]]] = {}
        if db is not None:
            self.rebuild(db)

    @classmethod
    def _partition(cls, value: object) -> str | None:
        if isinstance(value, bool):
            return cls._BOOL
        if isinstance(value, (int, float)):
            return cls._NUMBER
        if isinstance(value, Timestamp):
            return cls._TIMESTAMP
        if isinstance(value, str):
            return cls._STRING
        return None

    def rebuild(self, db: OEMDatabase) -> None:
        """Re-scan the database and rebuild the index from scratch."""
        self._exact = {}
        buckets: dict[str, list[tuple[object, str]]] = {}
        for node in db.nodes():
            value = db.value(node)
            if value is COMPLEX or not is_atomic_value(value):
                continue
            partition = self._partition(value)
            if partition is None:
                continue
            self._exact.setdefault((partition, value), []).append(node)
            sort_key = value.ticks if isinstance(value, Timestamp) else value
            buckets.setdefault(partition, []).append((sort_key, node))
        self._sorted = {partition: sorted(items)
                        for partition, items in buckets.items()}

    def lookup(self, value: object) -> list[str]:
        """Nodes whose value equals ``value`` exactly (same partition)."""
        partition = self._partition(value)
        if partition is None:
            return []
        return list(self._exact.get((partition, value), ()))

    def range_scan(self, low: object | None, high: object | None,
                   *, include_low: bool = True,
                   include_high: bool = True) -> list[str]:
        """Nodes with values in the given range (same-partition bounds)."""
        probe = low if low is not None else high
        if probe is None:
            raise ValueError("range_scan needs at least one bound")
        partition = self._partition(probe)
        items = self._sorted.get(partition, [])
        keys = [key for key, _ in items]

        def norm(value: object) -> object:
            return value.ticks if isinstance(value, Timestamp) else value

        start = 0
        if low is not None:
            edge = norm(low)
            start = bisect.bisect_left(keys, edge) if include_low \
                else bisect.bisect_right(keys, edge)
        end = len(items)
        if high is not None:
            edge = norm(high)
            end = bisect.bisect_right(keys, edge) if include_high \
                else bisect.bisect_left(keys, edge)
        return [node for _, node in items[start:end]]


class AnnotationIndex:
    """Timestamp-ordered index over DOEM annotations, by kind.

    Answers the workhorse question of QSS filter queries -- "which
    annotations of kind K fall in the time interval (lo, hi]?" -- in
    O(log n + answers) instead of a full graph scan.
    """

    _NODE_KINDS = {"cre": Cre, "upd": Upd}
    _ARC_KINDS = {"add": Add, "rem": Rem}

    def __init__(self, doem: DOEMDatabase | None = None) -> None:
        # kind -> sorted list of (ticks-ordering key, timestamp, subject)
        self._entries: dict[str, list[tuple[tuple, Timestamp, object]]] = {}
        if doem is not None:
            self.rebuild(doem)

    @staticmethod
    def _order_key(when: Timestamp) -> tuple:
        return when._order_key()  # stable total order incl. infinities

    def rebuild(self, doem: DOEMDatabase) -> None:
        """Re-scan the DOEM database and rebuild all four kind lists."""
        buckets: dict[str, list[tuple[tuple, Timestamp, object]]] = {
            kind: [] for kind in ("cre", "upd", "add", "rem")}
        for node, annotations in doem.annotated_nodes():
            for annotation in annotations:
                kind = "cre" if isinstance(annotation, Cre) else "upd"
                buckets[kind].append(
                    (self._order_key(annotation.at), annotation.at, node))
        for arc, annotations in doem.annotated_arcs():
            for annotation in annotations:
                kind = "add" if isinstance(annotation, Add) else "rem"
                buckets[kind].append(
                    (self._order_key(annotation.at), annotation.at, arc))
        self._entries = {kind: sorted(items, key=lambda e: (e[0], str(e[2])))
                         for kind, items in buckets.items()}

    def count(self, kind: str) -> int:
        """Number of annotations of ``kind`` in the index."""
        return len(self._entries.get(kind, ()))

    def between(self, kind: str, low: object = NEG_INF,
                high: object = POS_INF, *, include_low: bool = False,
                include_high: bool = True) -> list[tuple[Timestamp, object]]:
        """Annotations of ``kind`` with timestamps in the interval.

        The default bounds ``(low, high]`` match the QSS predicate shape
        ``T > t[-1] and T <= t[0]``.  Subjects are node ids for
        ``cre``/``upd`` and :class:`~repro.oem.model.Arc` for
        ``add``/``rem``.
        """
        if kind not in self._entries:
            raise KeyError(f"unknown annotation kind {kind!r}")
        items = self._entries[kind]
        keys = [entry[0] for entry in items]
        low_ts, high_ts = parse_timestamp(low), parse_timestamp(high)
        start = bisect.bisect_left(keys, self._order_key(low_ts)) \
            if include_low else bisect.bisect_right(keys, self._order_key(low_ts))
        end = bisect.bisect_right(keys, self._order_key(high_ts)) \
            if include_high else bisect.bisect_left(keys, self._order_key(high_ts))
        return [(when, subject) for _, when, subject in items[start:end]]

    def created_since(self, low: object) -> list[str]:
        """Node ids created strictly after ``low`` (QSS's common ask)."""
        return [node for _, node in self.between("cre", low)]
