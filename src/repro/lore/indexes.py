"""Indexes over OEM graphs and DOEM annotations.

Lore maintains label and value indexes to accelerate path-expression
evaluation; the paper's future-work list adds "indexes on annotations
(based on their types and timestamps) ... to achieve a more efficient
translation of Chorel queries" (Section 7).  All three are implemented
here as explicit, rebuildable structures:

* :class:`LabelIndex` -- label -> arcs (parent, child) pairs;
* :class:`ValueIndex` -- exact-match hash plus a sorted array for range
  scans over comparable atomic values;
* :class:`AnnotationIndex` -- (annotation kind, timestamp range) ->
  annotated nodes/arcs, the structure the QSS filter queries (``T >
  t[-1]``) want.

The indexes are deliberately *not* wired invisibly into the evaluator;
the benchmarks compare indexed scans against full evaluator scans to
quantify the ablation.
"""

from __future__ import annotations

import bisect
import threading
from typing import Iterable, Iterator

from ..doem.annotations import Add, Annotation, Cre, Rem, Upd
from ..doem.model import DOEMDatabase
from ..obs.metrics import CounterField, registry as metrics_registry
from ..oem.model import Arc, OEMDatabase
from ..oem.values import COMPLEX, is_atomic_value
from ..timestamps import NEG_INF, POS_INF, Timestamp, parse_timestamp

__all__ = ["LabelIndex", "ValueIndex", "AnnotationIndex", "TimestampIndex",
           "PathIndex", "IndexStats"]


class IndexStats:
    """Hit-rate counters shared by the incremental indexes.

    * ``lookups`` -- queries answered by the index;
    * ``hits`` -- lookups that found at least one entry (``misses`` is the
      complement);
    * ``visited`` -- entries the index actually touched to answer its
      lookups -- the number the ablation benchmark compares against the
      naive engine's full annotation scans;
    * ``inserts`` -- incremental maintenance events;
    * ``rebuilds`` -- full from-scratch (re)constructions.

    The counters live in the process-global
    :class:`~repro.obs.metrics.MetricsRegistry` under ``prefix`` (family
    sums across instances appear in metrics dumps); the attributes here
    are thin views, so the original ``stats.lookups += 1`` API is
    unchanged.
    """

    _FIELDS = ("lookups", "hits", "visited", "inserts", "rebuilds")

    lookups = CounterField()
    hits = CounterField()
    visited = CounterField()
    inserts = CounterField()
    rebuilds = CounterField()

    def __init__(self, prefix: str = "repro.index") -> None:
        self._metrics = metrics_registry().group(prefix, self._FIELDS)

    def inc(self, field: str, amount: int = 1) -> None:
        """Atomically increment one counter (safe from worker threads,
        unlike the ``stats.field += 1`` read-modify-write)."""
        self._metrics[field].inc(amount)

    @property
    def misses(self) -> int:
        return self.lookups - self.hits

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups that produced at least one entry."""
        return self.hits / self.lookups if self.lookups else 0.0

    def reset(self) -> None:
        self._metrics.reset()

    def as_dict(self) -> dict:
        """Raw counters plus derived rates, for profiles and artifacts."""
        values = {name: getattr(self, name) for name in self._FIELDS}
        values["misses"] = self.misses
        values["hit_rate"] = self.hit_rate
        return values

    def describe(self) -> str:
        return (f"lookups={self.lookups} hits={self.hits} "
                f"misses={self.misses} hit_rate={self.hit_rate:.2f} "
                f"visited={self.visited} inserts={self.inserts} "
                f"rebuilds={self.rebuilds}")


class LabelIndex:
    """An inverted index from arc labels to the arcs bearing them."""

    def __init__(self, db: OEMDatabase | None = None) -> None:
        self._by_label: dict[str, list[Arc]] = {}
        if db is not None:
            self.rebuild(db)

    def rebuild(self, db: OEMDatabase) -> None:
        """Re-scan the database and rebuild the index from scratch."""
        self._by_label = {}
        for arc in db.arcs():
            self._by_label.setdefault(arc.label, []).append(arc)

    def arcs(self, label: str) -> list[Arc]:
        """All arcs labeled ``label``."""
        return list(self._by_label.get(label, ()))

    def labels(self) -> list[str]:
        """All distinct labels, sorted."""
        return sorted(self._by_label)

    def parents_of_label(self, label: str) -> set[str]:
        """Distinct sources of ``label`` arcs."""
        return {arc.source for arc in self._by_label.get(label, ())}

    def count(self, label: str) -> int:
        """Number of arcs labeled ``label``."""
        return len(self._by_label.get(label, ()))


class ValueIndex:
    """Exact and range lookup of atomic node values.

    Values are partitioned by coarse type (number / string / timestamp /
    bool) so that range scans stay well-ordered; Lorel's coercing
    comparisons can consult both the number and string partitions when a
    literal is ambiguous.
    """

    _NUMBER = "number"
    _STRING = "string"
    _TIMESTAMP = "timestamp"
    _BOOL = "bool"

    def __init__(self, db: OEMDatabase | None = None) -> None:
        self._exact: dict[tuple[str, object], list[str]] = {}
        self._sorted: dict[str, list[tuple[object, str]]] = {}
        if db is not None:
            self.rebuild(db)

    @classmethod
    def _partition(cls, value: object) -> str | None:
        if isinstance(value, bool):
            return cls._BOOL
        if isinstance(value, (int, float)):
            return cls._NUMBER
        if isinstance(value, Timestamp):
            return cls._TIMESTAMP
        if isinstance(value, str):
            return cls._STRING
        return None

    def rebuild(self, db: OEMDatabase) -> None:
        """Re-scan the database and rebuild the index from scratch."""
        self._exact = {}
        buckets: dict[str, list[tuple[object, str]]] = {}
        for node in db.nodes():
            value = db.value(node)
            if value is COMPLEX or not is_atomic_value(value):
                continue
            partition = self._partition(value)
            if partition is None:
                continue
            self._exact.setdefault((partition, value), []).append(node)
            sort_key = value.ticks if isinstance(value, Timestamp) else value
            buckets.setdefault(partition, []).append((sort_key, node))
        self._sorted = {partition: sorted(items)
                        for partition, items in buckets.items()}

    def lookup(self, value: object) -> list[str]:
        """Nodes whose value equals ``value`` exactly (same partition)."""
        partition = self._partition(value)
        if partition is None:
            return []
        return list(self._exact.get((partition, value), ()))

    def range_scan(self, low: object | None, high: object | None,
                   *, include_low: bool = True,
                   include_high: bool = True) -> list[str]:
        """Nodes with values in the given range (same-partition bounds)."""
        probe = low if low is not None else high
        if probe is None:
            raise ValueError("range_scan needs at least one bound")
        partition = self._partition(probe)
        items = self._sorted.get(partition, [])
        keys = [key for key, _ in items]

        def norm(value: object) -> object:
            return value.ticks if isinstance(value, Timestamp) else value

        start = 0
        if low is not None:
            edge = norm(low)
            start = bisect.bisect_left(keys, edge) if include_low \
                else bisect.bisect_right(keys, edge)
        end = len(items)
        if high is not None:
            edge = norm(high)
            end = bisect.bisect_right(keys, edge) if include_high \
                else bisect.bisect_left(keys, edge)
        return [node for _, node in items[start:end]]


class AnnotationIndex:
    """Timestamp-ordered index over DOEM annotations, by kind.

    Answers the workhorse question of QSS filter queries -- "which
    annotations of kind K fall in the time interval (lo, hi]?" -- in
    O(log n + answers) instead of a full graph scan.
    """

    _NODE_KINDS = {"cre": Cre, "upd": Upd}
    _ARC_KINDS = {"add": Add, "rem": Rem}

    def __init__(self, doem: DOEMDatabase | None = None) -> None:
        # kind -> sorted list of (ticks-ordering key, timestamp, subject),
        # with a parallel key array per kind so interval lookups bisect in
        # O(log n) instead of materializing the keys on every call.
        self._entries: dict[str, list[tuple[tuple, Timestamp, object]]] = {}
        self._keys: dict[str, list[tuple]] = {}
        if doem is not None:
            self.rebuild(doem)

    @staticmethod
    def _order_key(when: Timestamp) -> tuple:
        return when._order_key()  # stable total order incl. infinities

    def rebuild(self, doem: DOEMDatabase) -> None:
        """Re-scan the DOEM database and rebuild all four kind lists."""
        buckets: dict[str, list[tuple[tuple, Timestamp, object]]] = {
            kind: [] for kind in ("cre", "upd", "add", "rem")}
        for node, annotations in doem.annotated_nodes():
            for annotation in annotations:
                kind = "cre" if isinstance(annotation, Cre) else "upd"
                buckets[kind].append(
                    (self._order_key(annotation.at), annotation.at, node))
        for arc, annotations in doem.annotated_arcs():
            for annotation in annotations:
                kind = "add" if isinstance(annotation, Add) else "rem"
                buckets[kind].append(
                    (self._order_key(annotation.at), annotation.at, arc))
        self._entries = {kind: sorted(items, key=lambda e: (e[0], str(e[2])))
                         for kind, items in buckets.items()}
        self._keys = {kind: [entry[0] for entry in items]
                      for kind, items in self._entries.items()}

    def count(self, kind: str) -> int:
        """Number of annotations of ``kind`` in the index."""
        return len(self._entries.get(kind, ()))

    def between(self, kind: str, low: object = NEG_INF,
                high: object = POS_INF, *, include_low: bool = False,
                include_high: bool = True) -> list[tuple[Timestamp, object]]:
        """Annotations of ``kind`` with timestamps in the interval.

        The default bounds ``(low, high]`` match the QSS predicate shape
        ``T > t[-1] and T <= t[0]``.  Subjects are node ids for
        ``cre``/``upd`` and :class:`~repro.oem.model.Arc` for
        ``add``/``rem``.
        """
        if kind not in self._entries:
            raise KeyError(f"unknown annotation kind {kind!r}")
        return self._slice(self._keys[kind], self._entries[kind], low, high,
                           include_low, include_high)

    @classmethod
    def _slice(cls, keys: list[tuple],
               items: list[tuple[tuple, Timestamp, object]], low: object,
               high: object, include_low: bool,
               include_high: bool) -> list[tuple[Timestamp, object]]:
        low_ts, high_ts = parse_timestamp(low), parse_timestamp(high)
        start = bisect.bisect_left(keys, cls._order_key(low_ts)) \
            if include_low else bisect.bisect_right(keys, cls._order_key(low_ts))
        end = bisect.bisect_right(keys, cls._order_key(high_ts)) \
            if include_high else bisect.bisect_left(keys, cls._order_key(high_ts))
        return [(when, subject) for _, when, subject in items[start:end]]

    def created_since(self, low: object) -> list[str]:
        """Node ids created strictly after ``low`` (QSS's common ask)."""
        return [node for _, node in self.between("cre", low)]


class TimestampIndex(AnnotationIndex):
    """An incrementally maintained annotation-kind x timestamp index.

    The same (kind, interval) -> subjects contract as
    :class:`AnnotationIndex`, plus:

    * **incremental maintenance** -- :meth:`attach` registers the index as
      an annotation listener on a :class:`~repro.doem.model.DOEMDatabase`,
      so every annotation folded in by the appliers of
      :mod:`repro.doem.build` is inserted in O(log n) without rebuilds;
    * **label partitioning** -- arc annotations (``add``/``rem``) are
      additionally bucketed by arc label, so ``<add at T>item`` predicates
      scan only the ``item`` entries (pass ``label=`` to :meth:`between`);
    * **hit-rate counters** -- :attr:`stats` records lookups, hits, and
      entries visited, the numbers the ``index_hits_*`` benchmarks emit.

    ``TimestampIndex(doem)`` rebuilds *and* attaches; pass
    ``attach=False`` for a detached snapshot-in-time index.

    Thread safety: maintenance (``rebuild``/``insert``) and lookups
    (``between``) serialize on one reentrant lock per index, so the
    parallel query executor may scan while history folding inserts
    concurrently -- each lookup sees a consistent entry list.
    """

    def __init__(self, doem: DOEMDatabase | None = None, *,
                 attach: bool = True) -> None:
        self.stats = IndexStats()
        self._source: DOEMDatabase | None = None
        self._lock = threading.RLock()
        # (kind, arc label) -> parallel (keys, entries) lists
        self._by_label: dict[tuple[str, str],
                             tuple[list[tuple],
                                   list[tuple[tuple, Timestamp, object]]]] = {}
        super().__init__(None)
        self._entries = {kind: [] for kind in ("cre", "upd", "add", "rem")}
        self._keys = {kind: [] for kind in self._entries}
        if doem is not None:
            self.rebuild(doem)
            if attach:
                self.attach(doem)

    # -- maintenance -----------------------------------------------------

    def rebuild(self, doem: DOEMDatabase) -> None:
        with self._lock:
            super().rebuild(doem)
            for kind in ("cre", "upd", "add", "rem"):
                self._entries.setdefault(kind, [])
                self._keys.setdefault(kind, [])
            self._by_label = {}
            for kind in ("add", "rem"):
                for entry in self._entries[kind]:
                    keys, entries = self._label_bucket(kind, entry[2].label)
                    keys.append(entry[0])
                    entries.append(entry)
            self.stats.rebuilds += 1

    def _label_bucket(self, kind: str, label: str):
        bucket = self._by_label.get((kind, label))
        if bucket is None:
            bucket = ([], [])
            self._by_label[(kind, label)] = bucket
        return bucket

    def attach(self, doem: DOEMDatabase) -> None:
        """Follow ``doem``: future annotations are inserted automatically."""
        if self._source is not None:
            self.detach()
        self._source = doem
        doem.add_annotation_listener(self)

    def detach(self) -> None:
        """Stop following the attached database (the entries remain)."""
        if self._source is not None:
            self._source.remove_annotation_listener(self)
            self._source = None

    def insert(self, subject: object, annotation: Annotation) -> None:
        """Insert one annotation's entry, keeping the kind list sorted."""
        if isinstance(annotation, Cre):
            kind = "cre"
        elif isinstance(annotation, Upd):
            kind = "upd"
        elif isinstance(annotation, Add):
            kind = "add"
        else:
            kind = "rem"
        key = self._order_key(annotation.at)
        entry = (key, annotation.at, subject)
        with self._lock:
            keys = self._keys[kind]
            # Insert after equal keys so arrival order breaks ties,
            # matching one stable interval scan; `between` output order
            # within a single timestamp is not part of the contract.
            position = bisect.bisect_right(keys, key)
            keys.insert(position, key)
            self._entries[kind].insert(position, entry)
            if kind in ("add", "rem"):
                label_keys, label_entries = self._label_bucket(
                    kind, subject.label)
                label_position = bisect.bisect_right(label_keys, key)
                label_keys.insert(label_position, key)
                label_entries.insert(label_position, entry)
        self.stats.inc("inserts")

    def _on_annotation(self, subject_kind: str, subject: object,
                       annotation: Annotation) -> None:
        # DOEMDatabase listener hook (see add_annotation_listener).
        self.insert(subject, annotation)

    # -- counted lookups -------------------------------------------------

    def between(self, kind: str, low: object = NEG_INF,
                high: object = POS_INF, *, include_low: bool = False,
                include_high: bool = True,
                label: str | None = None) -> list[tuple[Timestamp, object]]:
        """Annotations of ``kind`` in the interval, optionally by label.

        ``label`` narrows ``add``/``rem`` lookups to one arc label using
        the label partition (it is ignored for node kinds, whose subjects
        carry no label).
        """
        with self._lock:
            if label is not None and kind in ("add", "rem"):
                keys, items = self._by_label.get((kind, label), ((), ()))
                result = self._slice(keys, items, low, high,
                                     include_low, include_high)
            else:
                result = super().between(kind, low, high,
                                         include_low=include_low,
                                         include_high=include_high)
        self.stats.inc("lookups")
        self.stats.inc("visited", len(result))
        if result:
            self.stats.inc("hits")
        return result


class PathIndex:
    """A label-path index over the current snapshot of a database.

    Maps a label sequence ``(l1, ..., ln)`` to the set of nodes reachable
    from the root via a live ``l1 ... ln`` arc path -- the reachability
    question Lorel path evaluation and the indexed Chorel engine's hit
    verification both ask.  Path sets are computed on first use (one
    breadth-first layer per label) and memoized; the memo is dropped
    whenever the underlying database's fingerprint changes, so results
    stay exact across incremental history folding.

    Lookups serialize on one reentrant lock per index (memoization
    mutates on reads), so concurrent hit verification from the parallel
    executor's workers is safe.
    """

    def __init__(self, source: OEMDatabase | DOEMDatabase) -> None:
        self.source = source
        self.stats = IndexStats(prefix="repro.path_index")
        self._memo: dict[tuple[str, ...], frozenset[str]] = {}
        self._fingerprint: object = None
        self._lock = threading.RLock()

    # -- source adaptation ----------------------------------------------

    def _root(self) -> str:
        if isinstance(self.source, DOEMDatabase):
            return self.source.graph.root
        return self.source.root

    def _children(self, node: str, label: str) -> Iterable[str]:
        if isinstance(self.source, DOEMDatabase):
            return (child for _, child
                    in self.source.live_children(node, POS_INF, label))
        return self.source.children(node, label)

    def _current_fingerprint(self) -> object:
        if isinstance(self.source, DOEMDatabase):
            return self.source.fingerprint()
        return (len(self.source), self.source.arc_count())

    def _ensure_fresh(self) -> None:
        fingerprint = self._current_fingerprint()
        if fingerprint != self._fingerprint:
            self._memo.clear()
            self._fingerprint = fingerprint
            self.stats.rebuilds += 1

    # -- lookups ---------------------------------------------------------

    def nodes(self, labels: Iterable[str]) -> frozenset[str]:
        """Nodes reachable from the root via the exact label path."""
        path = tuple(labels)
        with self._lock:
            self._ensure_fresh()
            self.stats.inc("lookups")
            cached = self._memo.get(path)
            if cached is not None:
                self.stats.inc("hits")
                return cached
            # Reuse the longest memoized prefix, then extend layer by layer.
            prefix_len = len(path)
            while prefix_len > 0 and path[:prefix_len] not in self._memo:
                prefix_len -= 1
            frontier = self._memo[path[:prefix_len]] if prefix_len \
                else frozenset((self._root(),))
            self._memo.setdefault((), frozenset((self._root(),)))
            for position in range(prefix_len, len(path)):
                layer: set[str] = set()
                for node in frontier:
                    layer.update(self._children(node, path[position]))
                self.stats.inc("visited", len(layer))
                frontier = frozenset(layer)
                self._memo[path[:position + 1]] = frontier
            return frontier

    def contains(self, node: str, labels: Iterable[str]) -> bool:
        """Is ``node`` reachable from the root via the label path?"""
        return node in self.nodes(labels)
