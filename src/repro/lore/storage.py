"""The Lore store: named OEM/DOEM databases with file persistence.

Figure 7 shows QSS keeping its DOEM databases in a "DOEM Store" backed by
Lore.  :class:`LoreStore` plays that role: it holds named databases in
memory, persists them to a directory as textual OEM files (DOEM databases
persist through their OEM encoding, exactly the paper's storage scheme of
Section 5.1), and reloads them on demand.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from ..doem.encoding import EncodedDOEM, decode_doem, encode_doem
from ..doem.model import DOEMDatabase
from ..errors import SerializationError
from ..oem.model import OEMDatabase
from ..oem.serialize import dumps, loads

__all__ = ["LoreStore"]

_OEM_SUFFIX = ".oem"
_DOEM_SUFFIX = ".doem.oem"
_META_SUFFIX = ".meta.json"


class LoreStore:
    """A named collection of OEM and DOEM databases.

    In-memory by default; pass ``directory`` for durable storage.  Names
    are restricted to filesystem-safe identifiers.  DOEM databases are
    stored via their OEM encoding plus a small JSON sidecar recording the
    encoding-object ids, so a store round-trip is exact.
    """

    def __init__(self, directory: str | os.PathLike | None = None) -> None:
        self._oem: dict[str, OEMDatabase] = {}
        self._doem: dict[str, DOEMDatabase] = {}
        self.directory = Path(directory) if directory is not None else None
        if self.directory is not None:
            self.directory.mkdir(parents=True, exist_ok=True)

    @staticmethod
    def _check_name(name: str) -> str:
        if not name or any(ch in name for ch in "/\\. \t\n"):
            raise SerializationError(f"illegal store name: {name!r}")
        return name

    # ------------------------------------------------------------------
    # OEM databases
    # ------------------------------------------------------------------

    def put_oem(self, name: str, db: OEMDatabase) -> None:
        """Store (and persist, when durable) an OEM database under ``name``."""
        self._check_name(name)
        self._oem[name] = db
        if self.directory is not None:
            path = self.directory / f"{name}{_OEM_SUFFIX}"
            path.write_text(dumps(db), encoding="utf-8")

    def get_oem(self, name: str) -> OEMDatabase:
        """Fetch an OEM database, loading from disk if necessary."""
        self._check_name(name)
        if name in self._oem:
            return self._oem[name]
        if self.directory is not None:
            path = self.directory / f"{name}{_OEM_SUFFIX}"
            if path.exists():
                db = loads(path.read_text(encoding="utf-8"))
                self._oem[name] = db
                return db
        raise KeyError(name)

    # ------------------------------------------------------------------
    # DOEM databases (persisted through the Section 5.1 encoding)
    # ------------------------------------------------------------------

    def put_doem(self, name: str, doem: DOEMDatabase) -> None:
        """Store (and persist, when durable) a DOEM database under ``name``."""
        self._check_name(name)
        self._doem[name] = doem
        if self.directory is not None:
            encoded = encode_doem(doem)
            path = self.directory / f"{name}{_DOEM_SUFFIX}"
            path.write_text(dumps(encoded.oem), encoding="utf-8")
            meta = self.directory / f"{name}{_META_SUFFIX}"
            meta.write_text(json.dumps(
                {"object_ids": sorted(encoded.object_ids)}), encoding="utf-8")

    def get_doem(self, name: str) -> DOEMDatabase:
        """Fetch a DOEM database, decoding from disk if necessary."""
        self._check_name(name)
        if name in self._doem:
            return self._doem[name]
        if self.directory is not None:
            path = self.directory / f"{name}{_DOEM_SUFFIX}"
            meta = self.directory / f"{name}{_META_SUFFIX}"
            if path.exists() and meta.exists():
                oem = loads(path.read_text(encoding="utf-8"))
                object_ids = set(json.loads(
                    meta.read_text(encoding="utf-8"))["object_ids"])
                doem = decode_doem(EncodedDOEM(oem, object_ids))
                self._doem[name] = doem
                return doem
        raise KeyError(name)

    # ------------------------------------------------------------------

    def delete(self, name: str) -> None:
        """Remove a database (both kinds) from memory and disk."""
        self._check_name(name)
        self._oem.pop(name, None)
        self._doem.pop(name, None)
        if self.directory is not None:
            for suffix in (_OEM_SUFFIX, _DOEM_SUFFIX, _META_SUFFIX):
                path = self.directory / f"{name}{suffix}"
                if path.exists():
                    path.unlink()

    def names(self) -> list[str]:
        """All database names present in memory or on disk."""
        found = set(self._oem) | set(self._doem)
        if self.directory is not None:
            for path in self.directory.iterdir():
                stem = path.name
                for suffix in (_DOEM_SUFFIX, _META_SUFFIX, _OEM_SUFFIX):
                    if stem.endswith(suffix):
                        found.add(stem[:-len(suffix)])
                        break
        return sorted(found)

    def __contains__(self, name: str) -> bool:
        return name in self.names()
