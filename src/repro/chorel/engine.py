"""The native Chorel engine: annotation expressions evaluated over DOEM.

This realizes the semantics of Section 4.2.1 directly: annotation
expressions in path steps are served by the DOEM database's
``creFun``/``updFun``/``addFun``/``remFun`` accessors, plain steps see the
current snapshot, and the virtual ``<at T>`` annotations of Section 4.2.2
re-root navigation and value access at an arbitrary time.
"""

from __future__ import annotations

from ..doem.model import DOEMDatabase
from ..lorel.ast import Query
from ..lorel.eval import TIMEVARS_KEY, Evaluator
from ..lorel.parser import parse_query
from ..lorel.result import QueryResult
from ..lorel.views import DOEMView
from ..obs.trace import span
from ..timestamps import Timestamp, parse_timestamp

__all__ = ["ChorelEngine"]


class ChorelEngine:
    """Evaluates Chorel queries over one DOEM database.

    ``name`` registers the database name for root path expressions; QSS
    registers each subscription's DOEM database under its polling query's
    name (Section 6: "the name of the DOEM database corresponding to the
    above polling query is LyttonRestaurants").

    ``polling_times`` (optional, mutable via :meth:`set_polling_times`)
    provides values for the special time variables ``t[0]``, ``t[-1]``,
    ... used by QSS filter queries.
    """

    def __init__(self, doem: DOEMDatabase, name: str | None = None,
                 polling_times: dict[int, Timestamp] | None = None) -> None:
        self.doem = doem
        names = {name or doem.graph.root: doem.graph.root}
        self.view = DOEMView(doem, names)
        self._evaluator = Evaluator(self.view)
        self._polling_times: dict[int, Timestamp] = dict(polling_times or {})
        self.last_profile = None

    def register_name(self, name: str, node_id: str) -> None:
        """Expose ``node_id`` as a database name for path expressions."""
        self.view._names[name] = node_id

    @property
    def annotation_visits(self) -> int:
        """Annotations touched while answering queries so far.

        For the naive engine this is the view's scan counter; the indexed
        subclass adds the entries its index lookups returned.  The
        ``index_hits_*`` benchmarks compare the two.
        """
        return self.view.annotation_visits

    def reset_counters(self) -> None:
        """Zero the annotation-visit accounting (benchmarks do this)."""
        self.view.annotation_visits = 0

    def reset_stats(self) -> None:
        """Alias for :meth:`reset_counters` -- clears *all* the engine's
        counters (subclasses extend ``reset_counters`` to cover their
        index and pushdown accounting too)."""
        self.reset_counters()

    def set_polling_times(self, times: dict[int, object]) -> None:
        """Set the ``t[i]`` mapping (index -> timestamp), coercing values."""
        self._polling_times = {index: parse_timestamp(when)
                               for index, when in times.items()}

    def parse(self, text: str) -> Query:
        """Parse Chorel text (annotation expressions allowed)."""
        return parse_query(text, allow_annotations=True)

    def run(self, query: str | Query,
            bindings: dict[str, str] | None = None, *,
            profile: bool = False) -> QueryResult:
        """Parse (if needed) and evaluate a query over the DOEM database.

        ``bindings`` pre-binds variables to node identifiers before
        evaluation -- the trigger subsystem uses this to hand a rule's
        condition the triggering object (``NEW``, ``PARENT``).

        ``profile=True`` runs the query under the observer
        (:func:`repro.obs.profile.profile_query`): identical rows come
        back, and the :class:`~repro.obs.profile.QueryProfile` lands on
        ``self.last_profile``.
        """
        if profile:
            from ..obs.profile import profile_query
            result, self.last_profile = profile_query(self, query,
                                                      bindings=bindings)
            return result
        with span("chorel.query"):
            return self._run(query, bindings)

    def _run(self, query: str | Query,
             bindings: dict[str, str] | None) -> QueryResult:
        if isinstance(query, str):
            with span("chorel.parse"):
                query = self.parse(query)
        return self._evaluator.run(query, self._base_env(bindings))

    def _base_env(self, bindings: dict[str, str] | None = None) -> dict:
        """Ambient bindings every evaluation starts from.

        Chorel seeds the ``t[i]`` time-variable table and (for triggers)
        any pre-bound node variables.
        """
        env: dict = {}
        if self._polling_times:
            env[TIMEVARS_KEY] = dict(self._polling_times)
        if bindings:
            from ..lorel.eval import NodeBinding
            for name, node_id in bindings.items():
                env[name] = NodeBinding(node_id)
        return env

    def run_many(self, queries, *, pool=None,
                 max_workers: int | None = None) -> list[QueryResult]:
        """Evaluate a batch of queries concurrently; results in input order.

        Row-for-row equivalent to ``[self.run(q) for q in queries]``, but
        parsing and index acquisition happen once and the evaluations fan
        out to a worker pool (see :mod:`repro.parallel`).
        """
        from ..parallel.executor import run_many as _run_many
        return _run_many(self, queries, pool=pool, max_workers=max_workers)
