"""The native Chorel engine: annotation expressions evaluated over DOEM.

This realizes the semantics of Section 4.2.1 directly: annotation
expressions in path steps are served by the DOEM database's
``creFun``/``updFun``/``addFun``/``remFun`` accessors, plain steps see the
current snapshot, and the virtual ``<at T>`` annotations of Section 4.2.2
re-root navigation and value access at an arbitrary time.

Since the planner refactor the engine is a facade over
:mod:`repro.plan`: ``run`` = :meth:`ChorelEngine.compile` +
:meth:`ChorelEngine.execute`, with the pre-planner evaluator reachable
via ``use_planner=False`` as the differential oracle.
"""

from __future__ import annotations

from ..doem.model import DOEMDatabase
from ..lorel.ast import Query
from ..lorel.eval import TIMEVARS_KEY, Evaluator
from ..lorel.parser import parse_query
from ..lorel.result import QueryResult
from ..lorel.views import DOEMView
from ..obs.trace import span
from ..plan import (
    CompileContext,
    CompiledPlan,
    ExecutionContext,
    compile_query,
    insert_exchange,
    run_compiled,
)
from ..timestamps import Timestamp, parse_timestamp

__all__ = ["ChorelEngine"]


class ChorelEngine:
    """Evaluates Chorel queries over one DOEM database.

    ``name`` registers the database name for root path expressions; QSS
    registers each subscription's DOEM database under its polling query's
    name (Section 6: "the name of the DOEM database corresponding to the
    above polling query is LyttonRestaurants").

    ``polling_times`` (optional, mutable via :meth:`set_polling_times`)
    provides values for the special time variables ``t[0]``, ``t[-1]``,
    ... used by QSS filter queries.

    ``use_planner=False`` routes ``run`` through the legacy single-pass
    evaluator (the differential oracle; identical rows, identical order).

    ``batch_size`` selects the physical execution model: positive widths
    run the batched operators (the default,
    :data:`repro.plan.batch.DEFAULT_BATCH_SIZE` rows per batch), ``0``
    the per-environment iterator model.  Rows and order are identical
    either way.
    """

    def __init__(self, doem: DOEMDatabase, name: str | None = None,
                 polling_times: dict[int, Timestamp] | None = None, *,
                 use_planner: bool = True,
                 batch_size: int | None = None) -> None:
        self.doem = doem
        names = {name or doem.graph.root: doem.graph.root}
        self.view = DOEMView(doem, names)
        self._evaluator = Evaluator(self.view)
        self._polling_times: dict[int, Timestamp] = dict(polling_times or {})
        self.use_planner = use_planner
        from ..plan.batch import DEFAULT_BATCH_SIZE
        self.batch_size = DEFAULT_BATCH_SIZE if batch_size is None \
            else batch_size
        self.last_profile = None
        self.last_compiled: CompiledPlan | None = None

    def register_name(self, name: str, node_id: str) -> None:
        """Expose ``node_id`` as a database name for path expressions."""
        self.view._names[name] = node_id

    @property
    def annotation_visits(self) -> int:
        """Annotations touched while answering queries so far.

        For the naive engine this is the view's scan counter; the indexed
        subclass adds the entries its index lookups returned.  The
        ``index_hits_*`` benchmarks compare the two.
        """
        return self.view.annotation_visits

    def reset_counters(self) -> None:
        """Zero the annotation-visit accounting (benchmarks do this)."""
        self.view.annotation_visits = 0

    def reset_stats(self) -> None:
        """Alias for :meth:`reset_counters` -- clears *all* the engine's
        counters (subclasses extend ``reset_counters`` to cover their
        index and pushdown accounting too)."""
        self.reset_counters()

    def set_polling_times(self, times: dict[int, object]) -> None:
        """Set the ``t[i]`` mapping (index -> timestamp), coercing values."""
        self._polling_times = {index: parse_timestamp(when)
                               for index, when in times.items()}

    def parse(self, text: str) -> Query:
        """Parse Chorel text (annotation expressions allowed)."""
        return parse_query(text, allow_annotations=True)

    # -- planner pipeline ------------------------------------------------

    def compile(self, query: str | Query,
                bindings: dict[str, str] | None = None) -> CompiledPlan:
        """Compile a query to an optimized logical plan (``plan.compile``).

        ``bindings`` (trigger pre-bindings) disable index selection --
        the index scan cannot honor pre-bound range variables -- and feed
        the predicate-reorder purity check.
        """
        if isinstance(query, str):
            query = self.parse(query)
        compiled = self._compile(query, bindings)
        self.last_compiled = compiled
        return compiled

    def _compile(self, query: Query,
                 bindings: dict[str, str] | None = None) -> CompiledPlan:
        """Compile without touching ``last_compiled`` (worker-thread safe)."""
        context = self._compile_context(bindings)
        return compile_query(query, self._evaluator, context=context)

    def _compile_context(self, bindings) -> CompileContext:
        return CompileContext(
            evaluator=self._evaluator,
            view=self.view,
            root_node=self.doem.graph.root,
            polling_times=dict(self._polling_times),
            has_index=False,
            allow_index=not bindings,
            bound_names=frozenset(bindings or ()),
        )

    def execute(self, compiled: CompiledPlan,
                bindings: dict[str, str] | None = None, *, pool=None,
                min_shard_size: int = 1,
                parallel_metrics=None,
                analyze: bool = False) -> QueryResult:
        """Run a compiled plan through the physical operators.

        ``pool`` (set by the parallel executor) shards the plan behind an
        ``Exchange`` operator when it has a from clause to shard along.
        ``analyze=True`` attaches per-operator runtime accounting
        (identical rows) and leaves the stats on ``compiled.runtime``.
        """
        root = compiled.root
        ctx = self._execution_context(bindings, pool=pool,
                                      min_shard_size=min_shard_size,
                                      parallel_metrics=parallel_metrics)
        if pool is not None:
            exchanged = insert_exchange(root)
            if exchanged is not None:
                return run_compiled(compiled, exchanged, ctx, self,
                                    analyze=analyze)
            if parallel_metrics is not None:
                parallel_metrics["serial_queries"].inc()
            return run_compiled(compiled, root, ctx, self, analyze=analyze)
        with span("lorel.eval"):
            return run_compiled(compiled, root, ctx, self, analyze=analyze)

    def _execution_context(self, bindings=None, *, pool=None,
                           min_shard_size: int = 1,
                           parallel_metrics=None) -> ExecutionContext:
        return ExecutionContext(evaluator=self._evaluator,
                                base_env=self._base_env(bindings),
                                doem=self.doem, pool=pool,
                                min_shard_size=min_shard_size,
                                parallel_metrics=parallel_metrics,
                                batch_size=self.batch_size)

    # -- entry points ----------------------------------------------------

    def run(self, query: str | Query,
            bindings: dict[str, str] | None = None, *,
            profile: bool = False, analyze: bool = False) -> QueryResult:
        """Parse (if needed), compile, optimize, and execute a query.

        ``bindings`` pre-binds variables to node identifiers before
        evaluation -- the trigger subsystem uses this to hand a rule's
        condition the triggering object (``NEW``, ``PARENT``).

        ``profile=True`` runs the query under the observer
        (:func:`repro.obs.profile.profile_query`): identical rows come
        back, and the :class:`~repro.obs.profile.QueryProfile` lands on
        ``self.last_profile``.

        ``analyze=True`` collects per-operator runtime stats (identical
        rows); render them with ``self.last_compiled.explain(analyze=True)``.
        """
        if profile:
            if analyze:
                raise ValueError("profile and analyze are mutually "
                                 "exclusive; run them separately")
            from ..obs.profile import profile_query
            result, self.last_profile = profile_query(self, query,
                                                      bindings=bindings)
            return result
        with span("chorel.query"):
            return self._run(query, bindings, analyze=analyze)

    def _run(self, query: str | Query,
             bindings: dict[str, str] | None, *,
             analyze: bool = False) -> QueryResult:
        if isinstance(query, str):
            with span("chorel.parse"):
                query = self.parse(query)
        if not self.use_planner:
            if analyze:
                raise ValueError("analyze=True requires the planner "
                                 "(use_planner=False has no plan tree)")
            return self._evaluator.run(query, self._base_env(bindings))
        compiled = self.compile(query, bindings)
        return self.execute(compiled, bindings, analyze=analyze)

    def _base_env(self, bindings: dict[str, str] | None = None) -> dict:
        """Ambient bindings every evaluation starts from.

        Chorel seeds the ``t[i]`` time-variable table and (for triggers)
        any pre-bound node variables.
        """
        env: dict = {}
        if self._polling_times:
            env[TIMEVARS_KEY] = dict(self._polling_times)
        if bindings:
            from ..lorel.eval import NodeBinding
            for name, node_id in bindings.items():
                env[name] = NodeBinding(node_id)
        return env

    def run_many(self, queries, *, pool=None,
                 max_workers: int | None = None) -> list[QueryResult]:
        """Evaluate a batch of queries concurrently; results in input order.

        Row-for-row equivalent to ``[self.run(q) for q in queries]``, but
        parsing and index acquisition happen once and the evaluations fan
        out to a worker pool (see :mod:`repro.parallel`).
        """
        from ..parallel.executor import run_many as _run_many
        return _run_many(self, queries, pool=pool, max_workers=max_workers)
