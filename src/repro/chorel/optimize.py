"""Index-accelerated Chorel evaluation (Section 7 future work).

"Designing indexes on annotations (based on their types and timestamps)
and studying the use of such indexes to achieve a more efficient
translation of Chorel queries" -- :class:`IndexedChorelEngine` is that
study's implementation half.  Since the planner refactor the engine is a
thin facade: recognition of the index-servable shape lives in the
``annotation-literal-pushdown`` / ``index-selection`` rewrite passes
(:mod:`repro.plan.rules`), and the index-scan kernel -- a timestamp-range
scan with backward path verification -- is the ``AnnotationFilter``
physical operator (:func:`repro.plan.physical.execute_index_plan`).

What remains here is the engine facade (index/path-index ownership, the
``chorel.optimize`` / ``chorel.index_scan`` spans, and the pushdown
accounting) plus deprecation shims: :class:`~repro.plan.stats.IndexPlan`
and :class:`~repro.plan.stats.EngineStats` moved to the plan layer but
remain importable from here, and ``_extract_plan`` / ``_execute_plan``
keep their pre-planner signatures.
"""

from __future__ import annotations

from ..doem.model import DOEMDatabase
from ..lorel.result import QueryResult
from ..lore.indexes import PathIndex, TimestampIndex
from ..obs.trace import span
from ..plan import (
    CompileContext,
    CompiledPlan,
    execute_index_plan,
    run_compiled,
)
# Deprecation shims: these classes now live in the plan layer.
from ..plan.stats import EngineStats, IndexPlan, RangePlan
from .engine import ChorelEngine

__all__ = ["IndexedChorelEngine", "IndexPlan", "EngineStats"]


class IndexedChorelEngine(ChorelEngine):
    """A Chorel engine with an annotation-index fast path.

    Behaviourally identical to :class:`~repro.chorel.engine.ChorelEngine`;
    eligible queries are served from a :class:`TimestampIndex` that is
    *attached* to the DOEM database, so annotations folded in after
    engine construction (QSS polling, ``apply_change_set``) enter the
    index incrementally -- no :meth:`refresh_index` calls needed.  Hit
    verification walks a memoized :class:`PathIndex` over the current
    snapshot instead of a per-hit backward BFS.

    Accounting: ``engine.stats`` says how many queries took the indexed
    vs. fallback path, ``engine.index.stats`` / ``engine.paths.stats``
    carry index hit rates, and ``engine.annotation_visits`` totals the
    annotations touched (index entries + fallback scans) for direct
    comparison against the naive engine.
    """

    def __init__(self, doem: DOEMDatabase, name: str | None = None,
                 **kwargs) -> None:
        super().__init__(doem, name, **kwargs)
        self.index = TimestampIndex(doem)
        self.paths = PathIndex(doem)
        self.stats = EngineStats()
        self.last_plan: IndexPlan | None = None
        self.last_range_plan: RangePlan | None = None
        # Optional: attach a store HistoryLog (engine.log = store.log(name))
        # to give the checkpoint-replay strategy a durable seek floor;
        # without one, replay re-encodes the history from the DOEM.
        self.log = None

    def refresh_index(self) -> None:
        """Force a full index rebuild.

        Kept for API compatibility and for databases mutated behind the
        listener protocol's back; attached indexes normally maintain
        themselves as change sets are applied.
        """
        self.index.rebuild(self.doem)

    @property
    def annotation_visits(self) -> int:
        return self.view.annotation_visits + self.index.stats.visited

    def reset_counters(self) -> None:
        """Zero *all* accounting: view scans, index and path-index hit
        counters, and the pushdown split -- so ``annotation_visits`` (the
        view + index aggregate) reads 0 afterwards, mirroring the base
        engine's contract."""
        super().reset_counters()
        self.index.stats.reset()
        self.paths.stats.reset()
        self.stats.reset()

    # -- planner pipeline ------------------------------------------------

    def _compile_context(self, bindings) -> CompileContext:
        context = super()._compile_context(bindings)
        context.has_index = True
        return context

    def _execution_context(self, bindings=None, **parallel):
        context = super()._execution_context(bindings, **parallel)
        context.index = self.index
        context.paths = self.paths
        context.log = self.log
        return context

    def execute(self, compiled: CompiledPlan,
                bindings: dict[str, str] | None = None, *,
                analyze: bool = False, **parallel) -> QueryResult:
        if compiled.is_indexed:
            # The index scan is never sharded: run the AnnotationFilter
            # root directly (the instrumented kernel when analyzing).
            ctx = self._execution_context(bindings)
            with span("chorel.index_scan",
                      plan=compiled.index_plan.describe()):
                return run_compiled(compiled, compiled.root, ctx, self,
                                    analyze=analyze)
        if compiled.is_range:
            # Likewise serial: the range kernel is one merged event scan
            # (index or replay) plus backward verification.
            ctx = self._execution_context(bindings)
            with span("chorel.range_scan",
                      plan=compiled.range_plan.describe()):
                return run_compiled(compiled, compiled.root, ctx, self,
                                    analyze=analyze)
        return super().execute(compiled, bindings, analyze=analyze,
                               **parallel)

    # ------------------------------------------------------------------

    def _run(self, query, bindings, *, analyze: bool = False) -> QueryResult:
        """Evaluate; use the index when the planner selects it."""
        if analyze and not self.use_planner:
            raise ValueError("analyze=True requires the planner "
                             "(use_planner=False has no plan tree)")
        if isinstance(query, str):
            with span("chorel.parse"):
                query = self.parse(query)
        self.last_plan = None
        self.last_range_plan = None
        if bindings:
            # The index scan cannot honor pre-bound range variables.
            self.stats.fallback_queries += 1
            if not self.use_planner:
                return self._evaluator.run(query, self._base_env(bindings))
            return self.execute(self.compile(query, bindings), bindings,
                                analyze=analyze)
        with span("chorel.optimize"):
            compiled = self._compile(query)
        self.last_compiled = compiled
        plan = compiled.index_plan
        if plan is not None:
            self.last_plan = plan
            self.stats.indexed_queries += 1
            return self.execute(compiled, analyze=analyze)
        range_plan = compiled.range_plan
        if range_plan is not None:
            # Both range strategies are planner-served scans (the replay
            # seeks the log, not the evaluator), so they count as indexed.
            self.last_range_plan = range_plan
            self.stats.indexed_queries += 1
            return self.execute(compiled, analyze=analyze)
        self.stats.fallback_queries += 1
        if not self.use_planner:
            return self._evaluator.run(query, self._base_env(None))
        return self.execute(compiled, analyze=analyze)

    # -- pre-planner compatibility shims --------------------------------

    def _extract_plan(self, query) -> IndexPlan | None:
        """The index plan the optimizer would choose, or ``None``.

        Deprecated: compile instead (``engine.compile(q).index_plan``).
        """
        if isinstance(query, str):
            query = self.parse(query)
        return self._compile(query).index_plan

    def _execute_plan(self, plan: IndexPlan) -> QueryResult:
        """Execute an index plan directly (no accounting).

        Deprecated: the ``AnnotationFilter`` operator
        (:func:`repro.plan.physical.execute_index_plan`) is the kernel.
        """
        return execute_index_plan(plan, self._execution_context())
