"""Index-accelerated Chorel evaluation (Section 7 future work).

"Designing indexes on annotations (based on their types and timestamps)
and studying the use of such indexes to achieve a more efficient
translation of Chorel queries" -- this module is that study's
implementation half.  :class:`IndexedChorelEngine` recognizes the
standing-query shape QSS filter queries take::

    select <path ending in one annotation> [ , T ... ]
    where T > t1 [and T <= t2 ...]

and serves it from a timestamp-ordered
:class:`~repro.lore.indexes.AnnotationIndex` instead of a full
evaluation:

1. the where clause's comparisons on the annotation's time variable fold
   into one interval; the index returns exactly the annotations inside it
   (O(log n + answers));
2. each hit is *verified* against the query's path by walking **backward**
   from the subject to the root through live arcs -- the step the naive
   forward evaluation spends all its time discovering;
3. rows are assembled with the same labels and set semantics as the
   normal engine, so results are interchangeable (a tested invariant).

Anything outside the recognized shape falls back to the normal engine
(``engine.last_plan`` says which path served a query).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..doem.model import DOEMDatabase
from ..lore.indexes import PathIndex, TimestampIndex
from ..obs.metrics import CounterField, registry as metrics_registry
from ..obs.trace import span
from ..lorel.ast import (
    And,
    AnnotationExpr,
    Comparison,
    Condition,
    Literal,
    PathExpr,
    Query,
    SelectItem,
    TimeVar,
    VarRef,
)
from ..lorel.result import ObjectRef, QueryResult, Row
from ..oem.model import Arc
from ..timestamps import NEG_INF, POS_INF, Timestamp, parse_timestamp
from .engine import ChorelEngine

__all__ = ["IndexedChorelEngine", "IndexPlan", "EngineStats"]

_TIME_LABELS = {"cre": "create-time", "add": "add-time",
                "rem": "remove-time", "upd": "update-time"}


@dataclass
class IndexPlan:
    """A recognized index-servable query."""

    kind: str                     # cre | upd | add | rem
    labels: tuple[str, ...]       # plain labels of the path, in order
    root_name: str                # the database name the path starts at
    at_var: str
    from_var: Optional[str]      # upd only
    to_var: Optional[str]        # upd only
    object_var: Optional[str] = None  # explicit range variable, if any
    low: Timestamp = NEG_INF
    high: Timestamp = POS_INF
    include_low: bool = False
    include_high: bool = True
    select: tuple[SelectItem, ...] = ()
    object_label: str = "answer"

    def describe(self) -> str:
        """Human-readable plan summary (for logs and tests)."""
        lo = "[" if self.include_low else "("
        hi = "]" if self.include_high else ")"
        return (f"index-scan {self.kind} over "
                f"{'.'.join((self.root_name,) + self.labels)} "
                f"in {lo}{self.low}, {self.high}{hi}")


class EngineStats:
    """Per-engine pushdown accounting: which path served each query.

    Registered in the global metrics registry under
    ``repro.chorel_engine``; the attributes remain the API.
    """

    _FIELDS = ("indexed_queries", "fallback_queries")

    indexed_queries = CounterField()
    fallback_queries = CounterField()

    def __init__(self) -> None:
        self._metrics = metrics_registry().group("repro.chorel_engine",
                                                 self._FIELDS)

    @property
    def total(self) -> int:
        return self.indexed_queries + self.fallback_queries

    @property
    def pushdown_rate(self) -> float:
        """Fraction of queries served by an index plan."""
        return self.indexed_queries / self.total if self.total else 0.0

    def reset(self) -> None:
        self._metrics.reset()

    def as_dict(self) -> dict:
        """Raw counters plus derived rates, for profiles and artifacts."""
        return {"indexed_queries": self.indexed_queries,
                "fallback_queries": self.fallback_queries,
                "total": self.total,
                "pushdown_rate": self.pushdown_rate}

    def describe(self) -> str:
        return (f"queries={self.total} indexed={self.indexed_queries} "
                f"fallback={self.fallback_queries} "
                f"pushdown_rate={self.pushdown_rate:.2f}")


class IndexedChorelEngine(ChorelEngine):
    """A Chorel engine with an annotation-index fast path.

    Behaviourally identical to :class:`~repro.chorel.engine.ChorelEngine`;
    eligible queries are served from a :class:`TimestampIndex` that is
    *attached* to the DOEM database, so annotations folded in after
    engine construction (QSS polling, ``apply_change_set``) enter the
    index incrementally -- no :meth:`refresh_index` calls needed.  Hit
    verification walks a memoized :class:`PathIndex` over the current
    snapshot instead of a per-hit backward BFS.

    Accounting: ``engine.stats`` says how many queries took the indexed
    vs. fallback path, ``engine.index.stats`` / ``engine.paths.stats``
    carry index hit rates, and ``engine.annotation_visits`` totals the
    annotations touched (index entries + fallback scans) for direct
    comparison against the naive engine.
    """

    def __init__(self, doem: DOEMDatabase, name: str | None = None,
                 **kwargs) -> None:
        super().__init__(doem, name, **kwargs)
        self.index = TimestampIndex(doem)
        self.paths = PathIndex(doem)
        self.stats = EngineStats()
        self.last_plan: IndexPlan | None = None

    def refresh_index(self) -> None:
        """Force a full index rebuild.

        Kept for API compatibility and for databases mutated behind the
        listener protocol's back; attached indexes normally maintain
        themselves as change sets are applied.
        """
        self.index.rebuild(self.doem)

    @property
    def annotation_visits(self) -> int:
        return self.view.annotation_visits + self.index.stats.visited

    def reset_counters(self) -> None:
        """Zero *all* accounting: view scans, index and path-index hit
        counters, and the pushdown split -- so ``annotation_visits`` (the
        view + index aggregate) reads 0 afterwards, mirroring the base
        engine's contract."""
        super().reset_counters()
        self.index.stats.reset()
        self.paths.stats.reset()
        self.stats.reset()

    # ------------------------------------------------------------------

    def _run(self, query, bindings) -> QueryResult:
        """Evaluate; use the index when the query shape allows it."""
        if isinstance(query, str):
            with span("chorel.parse"):
                query = self.parse(query)
        self.last_plan = None
        if not bindings:
            with span("chorel.optimize"):
                plan = self._extract_plan(query)
            if plan is not None:
                self.last_plan = plan
                self.stats.indexed_queries += 1
                with span("chorel.index_scan", plan=plan.describe()):
                    return self._execute_plan(plan)
        self.stats.fallback_queries += 1
        return super()._run(query, bindings)

    # ------------------------------------------------------------------
    # Plan extraction
    # ------------------------------------------------------------------

    def _extract_plan(self, query: Query) -> IndexPlan | None:
        path, final_var = self._single_path(query)
        if path is None:
            return None
        if self.view.resolve_name(path.start) != self.doem.graph.root:
            return None  # non-root entry points keep the general engine

        labels: list[str] = []
        annotation: AnnotationExpr | None = None
        for position, step in enumerate(path.steps):
            is_last = position == len(path.steps) - 1
            if step.is_wildcard or step.is_pattern or step.label == "" \
                    or step.is_alternation or step.repetition is not None:
                return None
            if step.arc_annotation is not None:
                if not is_last or step.node_annotation is not None:
                    return None
                annotation = step.arc_annotation
            if step.node_annotation is not None:
                if not is_last:
                    return None
                annotation = step.node_annotation
            labels.append(step.label)
        if annotation is None or annotation.kind == "at":
            return None
        # Anonymous annotations (<add>) index-scan the full time axis.
        at_var = annotation.at_var or "__anon_T"

        plan = IndexPlan(
            kind=annotation.kind,
            labels=tuple(labels),
            root_name=path.start,
            at_var=at_var,
            from_var=annotation.from_var,
            to_var=annotation.to_var,
            select=query.select,
            object_label=labels[-1],
        )
        if final_var is not None:
            plan.object_var = final_var

        if annotation.at_literal is not None:
            # A pinned time (<add at 5Jan97>) is the degenerate interval
            # [t, t] -- the naive engine's equality filter, pushed down.
            pinned = self._literal_time(annotation.at_literal
                                        if isinstance(annotation.at_literal,
                                                      TimeVar)
                                        else Literal(annotation.at_literal))
            if pinned is None:
                return None
            plan.low = plan.high = pinned
            plan.include_low = plan.include_high = True

        if query.where is not None:
            if not self._fold_interval(query.where, plan):
                return None
        if not self._select_supported(plan, final_var):
            return None
        return plan

    def _single_path(self, query: Query):
        """The query's one path expression, or (None, None)."""
        if len(query.from_items) == 1 and not any(
                isinstance(item.expr, PathExpr) and item.expr.steps
                for item in query.select):
            item = query.from_items[0]
            if item.path.steps:
                return item.path, item.var
            return None, None
        if not query.from_items and len(query.select) == 1 and \
                isinstance(query.select[0].expr, PathExpr) and \
                query.select[0].expr.steps:
            return query.select[0].expr, None
        return None, None

    def _fold_interval(self, condition: Condition, plan: IndexPlan) -> bool:
        """Fold a conjunction of T-vs-literal comparisons into the plan."""
        if isinstance(condition, And):
            return self._fold_interval(condition.left, plan) and \
                self._fold_interval(condition.right, plan)
        if not isinstance(condition, Comparison):
            return False
        left, op, right = condition.left, condition.op, condition.right
        if isinstance(right, VarRef) and right.name == plan.at_var:
            left, right = right, left
            op = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}.get(op, op)
        if not (isinstance(left, VarRef) and left.name == plan.at_var):
            return False
        when = self._literal_time(right)
        if when is None:
            return False
        if op in ("=", "=="):
            # An equality is the intersection of >= and <=.
            if when > plan.low or (when == plan.low and not plan.include_low):
                plan.low, plan.include_low = when, True
            if when < plan.high or (when == plan.high
                                    and not plan.include_high):
                plan.high, plan.include_high = when, True
        elif op == ">":
            if when >= plan.low:
                plan.low, plan.include_low = when, False
        elif op == ">=":
            if when > plan.low:
                plan.low, plan.include_low = when, True
        elif op == "<":
            if when <= plan.high:
                plan.high, plan.include_high = when, False
        elif op == "<=":
            if when < plan.high:
                plan.high, plan.include_high = when, True
        else:
            return False
        return True

    def _literal_time(self, expr) -> Timestamp | None:
        if isinstance(expr, Literal):
            try:
                return parse_timestamp(expr.value)
            except Exception:
                return None
        if isinstance(expr, TimeVar):
            times = self._polling_times
            if expr.index in times:
                return times[expr.index]
        return None

    def _select_supported(self, plan: IndexPlan, final_var) -> bool:
        """Only the subject object and annotation variables may be selected."""
        allowed = {plan.at_var, plan.from_var, plan.to_var} - {None}
        object_var = getattr(plan, "object_var", None)
        for item in plan.select:
            expr = item.expr
            if isinstance(expr, PathExpr) and expr.steps:
                continue  # the hoisted subject path itself
            if isinstance(expr, PathExpr):
                expr = VarRef(expr.start)
            if isinstance(expr, VarRef) and (
                    expr.name in allowed or expr.name == object_var):
                continue
            return False
        return True

    # ------------------------------------------------------------------
    # Plan execution
    # ------------------------------------------------------------------

    def _execute_plan(self, plan: IndexPlan) -> QueryResult:
        # Arc-annotation plans narrow the scan to the final step's label
        # via the index's label partition; node kinds scan the kind list.
        label = plan.labels[-1] if plan.kind in ("add", "rem") else None
        hits = self.index.between(plan.kind, plan.low, plan.high,
                                  include_low=plan.include_low,
                                  include_high=plan.include_high,
                                  label=label)
        result = QueryResult()
        for when, subject in hits:
            row = self._verify_and_build(plan, when, subject)
            if row is not None:
                result.add(row)
        return result

    def _verify_and_build(self, plan: IndexPlan, when: Timestamp,
                          subject) -> Row | None:
        graph = self.doem.graph
        if plan.kind in ("add", "rem"):
            arc: Arc = subject
            if arc.label != plan.labels[-1]:
                return None
            if not self._connects_backward(arc.source, plan.labels[:-1]):
                return None
            return self._build_row(plan, when, arc.target, None)
        # cre / upd: subject is a node; the final arc must be live now.
        node = subject
        final_label = plan.labels[-1]
        for in_arc in graph.in_arcs(node):
            if in_arc.label != final_label:
                continue
            if not self.doem.arc_live_at(*in_arc, POS_INF):
                continue
            if self._connects_backward(in_arc.source, plan.labels[:-1]):
                if plan.kind == "upd":
                    triple = self._upd_triple_at(node, when)
                    if triple is None:
                        return None
                    return self._build_row(plan, when, node, triple)
                return self._build_row(plan, when, node, None)
        return None

    def _connects_backward(self, node: str, labels: tuple[str, ...]) -> bool:
        """Is there a live path root -labels-> node?

        Served by the memoized :class:`PathIndex`: one forward expansion
        per distinct label prefix instead of a backward BFS per hit.
        """
        return self.paths.contains(node, labels)

    def _upd_triple_at(self, node: str, when: Timestamp):
        for at, old, new in self.doem.upd_triples(node):
            if at == when:
                return (old, new)
        return None

    def _build_row(self, plan: IndexPlan, when: Timestamp, node: str,
                   upd_values) -> Row:
        object_var = getattr(plan, "object_var", None)
        items: list[tuple[str, object]] = []
        for item in plan.select:
            expr = item.expr
            if isinstance(expr, PathExpr) and expr.steps:
                label = item.label or plan.object_label
                items.append((label, ObjectRef(node)))
                continue
            name = expr.start if isinstance(expr, PathExpr) else expr.name
            if name == object_var:
                items.append((item.label or plan.object_label,
                              ObjectRef(node)))
            elif name == plan.at_var:
                items.append((item.label or _TIME_LABELS[plan.kind], when))
            elif name == plan.from_var:
                items.append((item.label or "old-value", upd_values[0]))
            elif name == plan.to_var:
                items.append((item.label or "new-value", upd_values[1]))
        return Row(tuple(items))
