"""Translating Chorel queries to Lorel over the OEM encoding (Section 5.2).

The translation mirrors the paper's scheme:

* ``(T, OV, NV) in updFun(P)`` becomes
  ``P.&upd U, U.&time T, U.&ov OV, U.&nv NV``;
* ``(T, C) in addFun(P, l)`` becomes
  ``P.&l-history H, H.&add T, H.&target C`` (``remFun`` analogously with
  ``&rem``);
* ``T in creFun(P)`` becomes ``P.&cre T``;
* every *value access* of an object variable ``X`` becomes ``X.&val``
  (safe for complex objects thanks to the ``&val`` self-loop);
* annotation machinery introduced by *where-clause* paths is hoisted as
  ``exists ... in ... :`` chains wrapping the enclosing conjunction, the
  shape shown in Example 5.1 -- so time variables bound in one conjunct
  remain visible to its siblings (Example 4.5).

Limitations (documented in DESIGN.md): virtual ``<at T>`` annotations are
native-engine-only -- the paper likewise defers their implementation
(Section 4.2.2) -- and annotations on ``#``/pattern labels are rejected by
both backends.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..doem.encoding import EncodedDOEM, encode_doem, history_label
from ..doem.model import DOEMDatabase
from ..errors import TranslationError
from ..lorel.ast import (
    And,
    AnnotationExpr,
    Comparison,
    Condition,
    ExistsCond,
    Expr,
    FreshNames,
    FromItem,
    LikeCond,
    Literal,
    Not,
    Or,
    PathExpr,
    PathStep,
    Query,
    SelectItem,
    TimeVar,
    VarRef,
)
from ..lorel.engine import LorelEngine
from ..lorel.eval import TIMEVARS_KEY, Evaluator, default_labels
from ..lorel.pretty import format_query
from ..lorel.result import ObjectRef, QueryResult, Row
from ..lorel.views import OEMView
from ..obs.trace import span
from ..timestamps import Timestamp, parse_timestamp

__all__ = ["translate_query", "TranslationResult", "TranslatingChorelEngine"]

_VAL_STEP = PathStep("&val")


@dataclass
class TranslationResult:
    """A translated query plus the bookkeeping needed to interpret results.

    ``query`` is plain Lorel (no annotation expressions); ``object_vars``
    is the set of range variables bound to *encoding objects* (as opposed
    to auxiliary atoms such as ``&time`` values); ``scalar_selects`` maps
    select positions whose values must be unwrapped from auxiliary nodes.
    """

    query: Query
    object_vars: set[str]
    scalar_select_labels: set[str]

    def text(self) -> str:
        """The translated query as re-parseable Lorel text."""
        return format_query(self.query)


class _Translator:
    """Stateful single-query translator."""

    def __init__(self) -> None:
        self.fresh = FreshNames()
        self.object_vars: set[str] = set()
        self.scalar_vars: set[str] = set()

    # -- path machinery -------------------------------------------------

    def _check_step(self, step: PathStep) -> None:
        for annotation in (step.arc_annotation, step.node_annotation):
            if annotation is None:
                continue
            if annotation.kind == "at":
                raise TranslationError(
                    "virtual <at ...> annotations have no Lorel translation "
                    "in the paper's scheme; use the native Chorel engine")
            if annotation.kind in ("changed", "last-change"):
                raise TranslationError(
                    f"<{annotation.kind} ...> annotations have no Lorel "
                    "translation in the paper's scheme; use the native "
                    "Chorel engine")
            if annotation.in_range is not None:
                raise TranslationError(
                    "time-range annotations have no Lorel translation in "
                    "the paper's scheme; use the native Chorel engine")
        if (step.arc_annotation or step.node_annotation) and \
                (step.is_wildcard or step.is_pattern):
            raise TranslationError(
                "annotation expressions on wildcard or pattern labels are "
                "not supported")
        if step.arc_annotation and step.is_alternation:
            raise TranslationError(
                "arc annotations on label alternations have no single "
                "&l-history object; use the native engine")

    def _pin_condition(self, var: str, literal: object) -> Condition:
        """An equality pinning an annotation time to a literal."""
        if isinstance(literal, TimeVar):
            return Comparison(VarRef(var), "=", literal)
        return Comparison(VarRef(var), "=", Literal(parse_timestamp(literal)))

    def translate_chain(self, path: PathExpr
                        ) -> tuple[list[tuple[str, PathExpr]], list[Condition], str]:
        """Translate a (canonical-form) path into binder chains.

        Returns ``(binders, extra_conditions, final_var)`` where each
        binder is ``(variable, single-step path)``.  The same machinery
        backs both from items (binders become from items) and where paths
        (binders become ``exists`` wrappers).
        """
        binders: list[tuple[str, PathExpr]] = []
        conditions: list[Condition] = []
        anchor = path.start
        pending: list[PathStep] = []

        def flush(var: str | None = None, is_object: bool = True) -> str:
            nonlocal anchor, pending
            if not pending and var is None:
                return anchor
            target = var or self.fresh.next("V")
            if pending:
                for step in pending[:-1]:
                    mid = self.fresh.next("V")
                    binders.append((mid, PathExpr(anchor, (step,))))
                    self.object_vars.add(mid)
                    anchor = mid
                binders.append((target, PathExpr(anchor, (pending[-1],))))
            else:
                # Alias: bind var to the anchor itself via a zero-step path.
                binders.append((target, PathExpr(anchor, ())))
            (self.object_vars if is_object else self.scalar_vars).add(target)
            anchor = target
            pending = []
            return target

        for step in path.steps:
            self._check_step(step)
            arc = step.arc_annotation
            node = step.node_annotation

            if step.label == "" and node is not None:
                # Start-anchored node annotation: the annotation machinery
                # hangs directly off the current anchor.
                child = flush()
                self._expand_node_annotation(node, child, binders, conditions)
                anchor = child
                continue

            if arc is not None:
                # addFun/remFun: P.&l-history H, H.&add T, H.&target C
                parent = flush()
                hist_var = self.fresh.next("H")
                binders.append((hist_var,
                                PathExpr(parent,
                                         (PathStep(history_label(step.label)),))))
                self.object_vars.add(hist_var)
                kind_label = "&add" if arc.kind == "add" else "&rem"
                time_var = arc.at_var or self.fresh.next("T")
                binders.append((time_var,
                                PathExpr(hist_var, (PathStep(kind_label),))))
                self.scalar_vars.add(time_var)
                if arc.at_literal is not None:
                    conditions.append(self._pin_condition(time_var, arc.at_literal))
                child_var = self.fresh.next("C")
                binders.append((child_var,
                                PathExpr(hist_var, (PathStep("&target"),))))
                self.object_vars.add(child_var)
                anchor = child_var
            else:
                pending.append(PathStep(step.label,
                                        repetition=step.repetition))

            if node is not None:
                child = flush()
                self._expand_node_annotation(node, child, binders, conditions)
                anchor = child

        final = flush() if pending else anchor
        return binders, conditions, final

    def _expand_node_annotation(self, node: AnnotationExpr, child: str,
                                binders: list[tuple[str, PathExpr]],
                                conditions: list[Condition]) -> None:
        """Expand a ``<cre>``/``<upd>`` annotation into &-path binders."""
        if node.kind == "cre":
            time_var = node.at_var or self.fresh.next("T")
            binders.append((time_var, PathExpr(child, (PathStep("&cre"),))))
            self.scalar_vars.add(time_var)
            if node.at_literal is not None:
                conditions.append(
                    self._pin_condition(time_var, node.at_literal))
        elif node.kind == "upd":
            upd_var = self.fresh.next("U")
            binders.append((upd_var, PathExpr(child, (PathStep("&upd"),))))
            self.object_vars.add(upd_var)
            time_var = node.at_var or self.fresh.next("T")
            binders.append((time_var,
                            PathExpr(upd_var, (PathStep("&time"),))))
            self.scalar_vars.add(time_var)
            if node.at_literal is not None:
                conditions.append(
                    self._pin_condition(time_var, node.at_literal))
            if node.from_var:
                binders.append((node.from_var,
                                PathExpr(upd_var, (PathStep("&ov"),))))
                self.scalar_vars.add(node.from_var)
            if node.to_var:
                binders.append((node.to_var,
                                PathExpr(upd_var, (PathStep("&nv"),))))
                self.scalar_vars.add(node.to_var)


def translate_query(query: Query, evaluator: Evaluator) -> TranslationResult:
    """Translate a Chorel AST to plain Lorel over the OEM encoding.

    ``evaluator`` supplies the normalization pass (shared with the native
    engine) so both backends agree on prefix unification before
    translation.
    """
    normalized = evaluator.normalize(query)
    labels = default_labels(normalized)
    translator = _Translator()

    # ------------------------------------------------------------------
    # From clause: binder chains become from items.
    # ------------------------------------------------------------------
    from_items: list[FromItem] = []
    pinned: list[Condition] = []
    for item in normalized.from_items:
        binders, conditions, final = translator.translate_chain(item.path)
        pinned.extend(conditions)
        if item.var and item.var != final:
            # The normalized from item names its variable; alias the chain's
            # final variable onto it (both as binder name and path start).
            binders = _rename_var(binders, final, item.var)
            for bucket in (translator.object_vars, translator.scalar_vars):
                if final in bucket:
                    bucket.discard(final)
                    bucket.add(item.var)
            if not binders:
                from_items.append(FromItem(PathExpr(item.path.start, ()), item.var))
                translator.object_vars.add(item.var)
        for var, path in binders:
            from_items.append(FromItem(path, var))

    object_vars = translator.object_vars

    # ------------------------------------------------------------------
    # Where clause: value accesses get &val; annotation machinery from
    # where paths hoists as `exists` wrappers around each conjunction.
    # ------------------------------------------------------------------

    def value_expr(expr: Expr) -> tuple[list[tuple[str, PathExpr]],
                                        list[Condition], Expr]:
        if isinstance(expr, (Literal, TimeVar)):
            return [], [], expr
        if isinstance(expr, VarRef):
            if expr.name in object_vars:
                return [], [], PathExpr(expr.name, (_VAL_STEP,))
            return [], [], expr
        if isinstance(expr, PathExpr):
            if not expr.steps:
                return [], [], value_expr(VarRef(expr.start))[2]
            binders, conditions, final = translator.translate_chain(expr)
            if final in object_vars:
                leaf: Expr = PathExpr(final, (_VAL_STEP,))
            else:
                leaf = VarRef(final)
            return binders, conditions, leaf
        raise TranslationError(f"cannot translate expression {expr!r}")

    def wrap(binders: list[tuple[str, PathExpr]],
             core: Condition) -> Condition:
        for var, path in reversed(binders):
            core = ExistsCond(var, path, core)
        return core

    def translate_cond(condition: Condition
                       ) -> tuple[list[tuple[str, PathExpr]], Condition]:
        """Returns (binders to hoist, translated core condition)."""
        if isinstance(condition, And):
            left_binders, left_core = translate_cond(condition.left)
            right_binders, right_core = translate_cond(condition.right)
            return left_binders + right_binders, And(left_core, right_core)
        if isinstance(condition, Or):
            left_binders, left_core = translate_cond(condition.left)
            right_binders, right_core = translate_cond(condition.right)
            return [], Or(wrap(left_binders, left_core),
                          wrap(right_binders, right_core))
        if isinstance(condition, Not):
            binders, core = translate_cond(condition.operand)
            return [], Not(wrap(binders, core))
        if isinstance(condition, ExistsCond):
            binders, conditions, final = translator.translate_chain(condition.path)
            translator.object_vars.add(condition.var)
            inner_binders, inner_core = translate_cond(condition.condition)
            core = wrap(inner_binders, _conjoin(inner_core, conditions))
            # Alias the user's variable onto the chain's final variable.
            alias = _rename_var(binders, final, condition.var)
            return [], wrap(alias, core)
        if isinstance(condition, Comparison):
            if isinstance(condition.right, Literal) and condition.right.value is None:
                # Existence test from a bare path: keep the raw (non-&val)
                # object path so emptiness is judged on objects.
                binders, extra, leaf = _existence_operand(condition.left)
                core = _conjoin(Comparison(leaf, condition.op, condition.right),
                                extra)
                return binders, core
            left_binders, left_extra, left = value_expr(condition.left)
            right_binders, right_extra, right = value_expr(condition.right)
            core = _conjoin(Comparison(left, condition.op, right),
                            left_extra + right_extra)
            return left_binders + right_binders, core
        if isinstance(condition, LikeCond):
            binders, extra, leaf = value_expr(condition.expr)
            return binders, _conjoin(LikeCond(leaf, condition.pattern), extra)
        raise TranslationError(f"cannot translate condition {condition!r}")

    def _existence_operand(expr: Expr) -> tuple[list[tuple[str, PathExpr]],
                                                list[Condition], Expr]:
        if isinstance(expr, PathExpr) and expr.steps:
            binders, conditions, final = translator.translate_chain(expr)
            return binders, conditions, VarRef(final)
        return [], [], expr

    where: Condition | None = None
    if normalized.where is not None:
        binders, core = translate_cond(normalized.where)
        where = wrap(binders, core)
    for condition in pinned:
        where = condition if where is None else And(where, condition)

    # ------------------------------------------------------------------
    # Select clause: objects pass through; scalars are unwrapped later.
    # ------------------------------------------------------------------
    scalar_select_labels: set[str] = set()
    select: list[SelectItem] = []
    for item in normalized.select:
        expr = item.expr
        if isinstance(expr, VarRef):
            label = item.label or labels.get(expr.name, expr.name)
            select.append(SelectItem(expr, label))
            if expr.name not in object_vars:
                scalar_select_labels.add(label)
        else:
            select.append(item)

    translated = Query(tuple(select), tuple(from_items), where)
    return TranslationResult(translated, set(object_vars), scalar_select_labels)


def _conjoin(core: Condition, extras: list[Condition]) -> Condition:
    for extra in extras:
        core = And(core, extra)
    return core


def _rename_var(binders: list[tuple[str, PathExpr]], old: str,
                new: str) -> list[tuple[str, PathExpr]]:
    """Rename a binder variable, both where bound and where referenced."""
    renamed: list[tuple[str, PathExpr]] = []
    for var, path in binders:
        start = new if path.start == old else path.start
        renamed.append((new if var == old else var,
                        PathExpr(start, path.steps)))
    return renamed


class TranslatingChorelEngine:
    """The translation-based Chorel backend (Section 5).

    Encodes the DOEM database in OEM once, then serves each Chorel query
    by translating it to Lorel and evaluating over the encoding.  Results
    are post-processed so rows are directly comparable with the native
    engine's: auxiliary atoms (timestamps, old/new values) unwrap to their
    scalar values, and encoding objects keep the DOEM node identifiers
    (the encoding is identifier-preserving).
    """

    def __init__(self, doem: DOEMDatabase, name: str | None = None,
                 polling_times: dict[int, Timestamp] | None = None, *,
                 use_planner: bool = True,
                 batch_size: int | None = None) -> None:
        self.doem = doem
        self.encoded: EncodedDOEM = encode_doem(doem)
        entry = name or doem.graph.root
        self.lorel = LorelEngine(self.encoded.oem, name=entry,
                                 batch_size=batch_size)
        self.batch_size = self.lorel.batch_size
        # The native normalizer is reused so both backends agree.
        self._normalizer = Evaluator(OEMView(self.encoded.oem,
                                             {entry: self.encoded.oem.root}))
        self._polling_times: dict[int, Timestamp] = dict(polling_times or {})
        self.use_planner = use_planner
        self.last_translation: TranslationResult | None = None
        self.last_profile = None
        self.last_compiled = None

    def register_name(self, name: str, node_id: str) -> None:
        """Expose an entry point under ``name`` (mirrors the native engine)."""
        self.lorel.register_name(name, node_id)
        self._normalizer.view._names[name] = node_id

    def set_polling_times(self, times: dict[int, object]) -> None:
        """Set the ``t[i]`` mapping for QSS filter queries."""
        self._polling_times = {index: parse_timestamp(when)
                               for index, when in times.items()}

    def translate(self, query: str | Query) -> TranslationResult:
        """Translate Chorel text/AST to Lorel over the encoding."""
        from ..lorel.parser import parse_query
        if isinstance(query, str):
            with span("chorel.parse"):
                query = parse_query(query, allow_annotations=True)
        with span("chorel.translate"):
            translation = translate_query(query, self._normalizer)
        self.last_translation = translation
        return translation

    def run(self, query: str | Query, *,
            profile: bool = False, analyze: bool = False) -> QueryResult:
        """Translate and evaluate, returning native-comparable rows.

        ``profile=True`` observes the run (identical rows) and leaves the
        :class:`~repro.obs.profile.QueryProfile` on ``self.last_profile``.
        ``analyze=True`` collects per-operator runtime stats over the
        *translated* Lorel plan (identical rows); render them with
        ``self.last_compiled.explain(analyze=True)``.
        """
        if profile:
            if analyze:
                raise ValueError("profile and analyze are mutually "
                                 "exclusive; run them separately")
            from ..obs.profile import profile_query
            result, self.last_profile = profile_query(self, query)
            return result
        with span("chorel.query"):
            return self._run(query, analyze=analyze)

    def _run(self, query: str | Query, *,
             analyze: bool = False) -> QueryResult:
        if not self.use_planner:
            if analyze:
                raise ValueError("analyze=True requires the planner "
                                 "(use_planner=False has no plan tree)")
            translation = self.translate(query)
            raw = self.lorel._evaluator.run(translation.query,
                                            self._base_env())
            return self._postprocess(raw, translation)
        compiled = self.compile(query)
        return self.execute(compiled, analyze=analyze)

    # -- planner pipeline ------------------------------------------------

    def parse(self, text: str):
        """Parse Chorel text (annotation expressions allowed)."""
        from ..lorel.parser import parse_query
        return parse_query(text, allow_annotations=True)

    def compile(self, query: str | Query):
        """Translate to Lorel, then compile the translation.

        The compiled plan is the *Lorel* plan over the OEM encoding; the
        translation result rides along for row post-processing and for
        EXPLAIN (``plan: translate-to-lorel ...``).
        """
        compiled = self._compile(query)
        self.last_compiled = compiled
        return compiled

    def _compile(self, query: str | Query):
        """Compile without touching ``last_compiled`` (worker-thread safe)."""
        from ..plan import CompileContext, compile_query
        translation = self.translate(query)
        evaluator = self.lorel._evaluator
        context = CompileContext(evaluator=evaluator, view=self.lorel.view,
                                 polling_times=dict(self._polling_times))
        compiled = compile_query(translation.query, evaluator,
                                 context=context)
        compiled.translation = translation
        return compiled

    def execute(self, compiled, *, pool=None, min_shard_size: int = 1,
                parallel_metrics=None,
                analyze: bool = False) -> QueryResult:
        """Run a compiled translation through the physical operators.

        ``analyze=True`` instruments the translated Lorel plan (identical
        rows) and leaves the stats on ``compiled.runtime``.
        """
        from ..plan import ExecutionContext, insert_exchange, run_compiled
        ctx = ExecutionContext(evaluator=self.lorel._evaluator,
                               base_env=self._base_env(), pool=pool,
                               min_shard_size=min_shard_size,
                               parallel_metrics=parallel_metrics,
                               batch_size=self.batch_size)
        root = compiled.root
        if pool is not None:
            exchanged = insert_exchange(root)
            if exchanged is not None:
                raw = run_compiled(compiled, exchanged, ctx, self,
                                   analyze=analyze)
            else:
                if parallel_metrics is not None:
                    parallel_metrics["serial_queries"].inc()
                raw = run_compiled(compiled, root, ctx, self,
                                   analyze=analyze)
        else:
            with span("lorel.eval"):
                raw = run_compiled(compiled, root, ctx, self,
                                   analyze=analyze)
        return self._postprocess(raw, compiled.translation)

    def _base_env(self) -> dict:
        env: dict = {}
        if self._polling_times:
            env[TIMEVARS_KEY] = dict(self._polling_times)
        return env

    def _postprocess(self, raw: QueryResult,
                     translation: TranslationResult) -> QueryResult:
        """Unwrap auxiliary atoms so rows match the native engine's."""
        result = QueryResult()
        for row in raw:
            items = []
            for label, value in row.items:
                if label in translation.scalar_select_labels and \
                        isinstance(value, ObjectRef):
                    items.append((label, self.encoded.oem.value(value.node)))
                else:
                    items.append((label, value))
            result.add(Row(tuple(items)))
        return result

    def run_many(self, queries, *, pool=None,
                 max_workers: int | None = None) -> list[QueryResult]:
        """Evaluate a batch of queries concurrently; results in input order."""
        from ..parallel.executor import run_many as _run_many
        return _run_many(self, queries, pool=pool, max_workers=max_workers)
