"""Chorel: Lorel extended with annotation expressions (Section 4.2).

Two interchangeable backends, exactly the paper's two implementation
strategies (Section 5):

* :class:`~repro.chorel.engine.ChorelEngine` -- the *native* engine,
  evaluating directly over a :class:`~repro.doem.model.DOEMDatabase`;
* :class:`~repro.chorel.translate.TranslatingChorelEngine` -- translates
  every Chorel query to plain Lorel over the OEM encoding of the DOEM
  database and runs it on the Lorel substrate.

The equivalence of the two backends on the supported grammar is a tested
invariant of this library.
"""

from .engine import ChorelEngine
from .translate import TranslatingChorelEngine, translate_query

__all__ = ["ChorelEngine", "TranslatingChorelEngine", "translate_query"]
