"""The trigger manager: fold change sets, detect events, fire rules.

Semantics (deliberately simple and deterministic):

* changes arrive as timestamped change sets, exactly like a QSS poll or a
  direct :class:`~repro.oem.history.OEMHistory` entry;
* the whole set is folded into the DOEM database *first* (deferred,
  set-at-a-time evaluation -- conditions see the post-set state **and**
  the full history, which is what DOEM buys us over delta relations);
* then, for each operation in canonical order and each enabled rule in
  registration order, a matching event evaluates the rule's condition
  with the subject bound; non-empty results fire the action;
* actions must not mutate the database synchronously (no cascading in
  v1); they may *request* follow-up change sets, which the caller can
  fold next -- this keeps termination trivial, a deliberate restriction
  the active-database literature [WC96] would call "detached" coupling.
"""

from __future__ import annotations

from typing import Iterable

from ..chorel.engine import ChorelEngine
from ..doem.build import DOEMApplier
from ..doem.model import DOEMDatabase
from ..errors import QueryError
from ..oem.changes import AddArc, ChangeOp, CreNode, RemArc, UpdNode
from ..oem.history import ChangeSet
from ..oem.model import OEMDatabase
from ..timestamps import Timestamp, parse_timestamp
from .rules import Activation, Event, Rule

__all__ = ["TriggerManager"]


class TriggerManager:
    """Watches a DOEM database and fires ECA rules on folded changes.

    ``doem`` may be an existing DOEM database (e.g. a QSS subscription's)
    or None to start from an empty/root-only one.  ``name`` registers the
    database name conditions use for root paths.
    """

    def __init__(self, doem: DOEMDatabase | None = None,
                 name: str | None = None, root: str = "root") -> None:
        if doem is None:
            doem = DOEMDatabase(OEMDatabase(root=root))
        self.doem = doem
        self.name = name or doem.graph.root
        self._applier = DOEMApplier(doem)
        self._applier._mark_dead_nodes()
        self._rules: list[Rule] = []
        self.activations: list[Activation] = []

    # ------------------------------------------------------------------
    # Rule registry
    # ------------------------------------------------------------------

    def add_rule(self, rule: Rule) -> Rule:
        """Register a rule; names must be unique."""
        if any(existing.name == rule.name for existing in self._rules):
            raise QueryError(f"duplicate rule name {rule.name!r}")
        self._rules.append(rule)
        return rule

    def on(self, name: str, event: Event, action,
           condition: str | None = None) -> Rule:
        """Shorthand: build and register a rule in one call."""
        return self.add_rule(Rule(name=name, event=event, action=action,
                                  condition=condition))

    def remove_rule(self, name: str) -> None:
        """Unregister a rule by name."""
        remaining = [rule for rule in self._rules if rule.name != name]
        if len(remaining) == len(self._rules):
            raise QueryError(f"no rule named {name!r}")
        self._rules = remaining

    def rules(self) -> list[Rule]:
        """Registered rules, in registration (firing) order."""
        return list(self._rules)

    # ------------------------------------------------------------------
    # Folding + firing
    # ------------------------------------------------------------------

    def fold(self, when: object,
             changes: ChangeSet | Iterable[ChangeOp]) -> list[Activation]:
        """Fold one timestamped change set and fire matching rules.

        Returns the activations produced by this set (also appended to
        :attr:`activations`).  The change set must be valid for the DOEM
        database's conceptual current snapshot.
        """
        timestamp = parse_timestamp(when)
        if not isinstance(changes, ChangeSet):
            changes = ChangeSet(changes)

        # Old values must be captured *before* the fold for event filters.
        old_values = {op.node: self.doem.graph.value(op.node)
                      for op in changes.filter(UpdNode)
                      if self.doem.graph.has_node(op.node)}

        self._applier.apply(timestamp, changes)

        produced: list[Activation] = []
        engine = ChorelEngine(self.doem, name=self.name)
        # Conditions may pin annotations to the triggering instant via the
        # QSS-style time variable t[0] (e.g. "<upd at T ...> ... T = t[0]").
        engine.set_polling_times({0: timestamp})
        for op in changes.canonical_order():
            for rule in self._rules:
                if not rule.enabled:
                    continue
                if not rule.event.matches(op, old_values.get(
                        getattr(op, "node", None))):
                    continue
                activation = self._evaluate(rule, op, timestamp, engine)
                if activation is not None:
                    produced.append(activation)
        self.activations.extend(produced)
        return produced

    def _evaluate(self, rule: Rule, op: ChangeOp, when: Timestamp,
                  engine: ChorelEngine) -> Activation | None:
        bindings = self._bindings_for(op)
        rows = None
        if rule.condition is not None:
            rows = engine.run(rule.condition, bindings=bindings)
            if not rows:
                return None
        activation = Activation(rule=rule, at=when, operation=op,
                                bindings=bindings, condition_rows=rows)
        rule.fired_count += 1
        rule.action(activation)
        return activation

    @staticmethod
    def _bindings_for(op: ChangeOp) -> dict:
        if isinstance(op, (CreNode, UpdNode)):
            return {"NEW": op.node}
        return {"NEW": op.target, "PARENT": op.source}

    # ------------------------------------------------------------------

    def replay_history(self, history) -> list[Activation]:
        """Fold an entire :class:`~repro.oem.history.OEMHistory`."""
        produced: list[Activation] = []
        for when, changes in history:
            produced.extend(self.fold(when, changes))
        return produced
