"""An event-condition-action trigger language for OEM (Section 7).

The paper's future-work list closes with "designing an
event-condition-action trigger language for OEM based on ideas from DOEM
and Chorel".  This package is that design, built directly on the two:

* **Events** are the basic change operations -- a rule watches node
  creations, value updates, arc additions, or arc removals, optionally
  filtered by arc label and new/old value patterns
  (:class:`~repro.triggers.rules.Event`);
* **Conditions** are Chorel queries over the DOEM database *with the
  triggering object bound in*: the event's subject is available to the
  condition as the variable ``NEW`` (and ``OLD``/``PARENT`` where they
  make sense), so a condition can navigate from it and consult the whole
  change history (:class:`~repro.triggers.rules.Rule`);
* **Actions** are Python callables receiving an
  :class:`~repro.triggers.rules.Activation` (rule, timestamp, operation,
  bindings, condition rows).

The :class:`~repro.triggers.manager.TriggerManager` folds timestamped
change sets into a DOEM database (so history keeps accumulating, exactly
like QSS's DOEM Manager) and fires matching rules after each fold --
deferred, set-at-a-time semantics like SQL3 statement-level triggers,
which suits QSS's batch-per-poll change sets.
"""

from .rules import Activation, Event, Rule
from .manager import TriggerManager

__all__ = ["Event", "Rule", "Activation", "TriggerManager"]
