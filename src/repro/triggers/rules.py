"""Rules: events, conditions, actions.

An :class:`Event` selects basic change operations; a :class:`Rule` pairs
an event with an optional Chorel condition and an action.  Conditions run
over the DOEM database with the event's subjects pre-bound, so "the price
of a restaurant on Lytton rose above 30" is one Chorel query away from a
raw ``update`` event.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from ..errors import QueryError
from ..oem.changes import AddArc, ChangeOp, CreNode, RemArc, UpdNode
from ..oem.values import like
from ..lorel.ast import Query
from ..lorel.parser import parse_query
from ..lorel.result import QueryResult
from ..timestamps import Timestamp

__all__ = ["Event", "Rule", "Activation"]

_EVENT_KINDS = ("create", "update", "add", "remove")
_OP_KIND = {CreNode: "create", UpdNode: "update",
            AddArc: "add", RemArc: "remove"}


@dataclass(frozen=True)
class Event:
    """A pattern over basic change operations.

    ``kind`` is one of ``create | update | add | remove``.  Optional
    filters narrow the match:

    * ``label`` -- for arc events, a ``like``-style pattern the arc label
      must match (``"price"``, ``"comment%"``);
    * ``value`` -- for ``create``/``update``, a pattern the (new) value
      must match; numbers are compared through their textual form, in
      Lorel's forgiving spirit;
    * ``old_value`` -- for ``update``, a pattern on the value *before*
      the operation (the trigger manager reads it off the DOEM ``upd``
      annotation).
    """

    kind: str
    label: Optional[str] = None
    value: Optional[str] = None
    old_value: Optional[str] = None

    def __post_init__(self) -> None:
        if self.kind not in _EVENT_KINDS:
            raise QueryError(
                f"unknown event kind {self.kind!r}; expected one of "
                f"{_EVENT_KINDS}")
        if self.kind in ("create", "update") and self.label is not None:
            raise QueryError(f"{self.kind} events have no arc label")
        if self.kind in ("add", "remove") and \
                (self.value is not None or self.old_value is not None):
            raise QueryError(f"{self.kind} events have no value filters")
        if self.kind == "create" and self.old_value is not None:
            raise QueryError("create events have no old value")

    def matches(self, op: ChangeOp, old_value: object = None) -> bool:
        """Does this event select the given operation?"""
        if _OP_KIND[type(op)] != self.kind:
            return False
        if isinstance(op, (AddArc, RemArc)) and self.label is not None:
            if not like(op.label, self.label):
                return False
        if isinstance(op, (CreNode, UpdNode)) and self.value is not None:
            if not like(op.value, self.value):
                return False
        if isinstance(op, UpdNode) and self.old_value is not None:
            if not like(old_value, self.old_value):
                return False
        return True

    def __str__(self) -> str:
        parts = [self.kind]
        if self.label is not None:
            parts.append(f"label~{self.label!r}")
        if self.value is not None:
            parts.append(f"value~{self.value!r}")
        if self.old_value is not None:
            parts.append(f"old~{self.old_value!r}")
        return f"on {' '.join(parts)}"


@dataclass(frozen=True)
class Activation:
    """One rule firing: everything the action gets to see."""

    rule: "Rule"
    at: Timestamp
    operation: ChangeOp
    bindings: dict
    condition_rows: Optional[QueryResult]

    @property
    def subject(self) -> str:
        """The primary node: the created/updated node, or the arc target."""
        return self.bindings["NEW"]

    def __str__(self) -> str:
        return (f"[{self.at}] rule {self.rule.name!r} fired on "
                f"{self.operation}")


@dataclass
class Rule:
    """An ECA rule: ``on EVENT [if CONDITION] do ACTION``.

    ``condition`` is Chorel text (or a parsed query) evaluated over the
    trigger manager's DOEM database with these extra names bound:

    * ``NEW``  -- the created/updated node, or the added/removed arc's
      target;
    * ``PARENT`` -- the arc's source (arc events only);
    * ``OLD`` is *not* a node: the old value of an update is retrieved
      with Chorel's own ``<upd ... from OV>`` machinery, which the
      condition can use directly.

    The rule fires when the condition's result is non-empty (or when
    there is no condition); the rows are handed to the action for use.
    ``enabled`` supports SQL-style enable/disable without removal.
    """

    name: str
    event: Event
    action: Callable[[Activation], None]
    condition: Optional[Query] = None
    enabled: bool = True
    fired_count: int = field(default=0, compare=False)

    def __post_init__(self) -> None:
        if isinstance(self.condition, str):
            self.condition = parse_query(self.condition,
                                         allow_annotations=True)

    def __str__(self) -> str:
        text = f"rule {self.name}: {self.event}"
        if self.condition is not None:
            text += f" if ({self.condition})"
        return text
