"""QSS state persistence: the Subscription Store of Figure 7.

Figure 7 draws two persistent boxes: the *Subscription Store* (what each
subscription is) and the *DOEM Store* (each subscription's accumulated
history, kept in Lore via the Section 5.1 encoding).  This module
persists both through a :class:`~repro.lore.storage.LoreStore`, so a QSS
server survives restarts: subscriptions resume with their full DOEM
history and their polling schedule.

Wrappers are *not* persisted -- they hold live source connections; the
restoring caller re-registers them by name, exactly as the original
deployment re-established Tsimmis connections.
"""

from __future__ import annotations

import json
from pathlib import Path

from ..errors import QSSError
from ..lore.storage import LoreStore
from ..timestamps import Timestamp, parse_timestamp
from .server import QSSServer
from .subscription import Subscription

__all__ = ["save_server", "load_server"]

_STATE_FILE = "qss_state.json"


def save_server(server: QSSServer, store: LoreStore) -> None:
    """Persist the server's subscriptions, schedules, and DOEM databases.

    The store must be durable (constructed with a directory); an
    in-memory store cannot outlive the process, which defeats the point.
    """
    if store.directory is None:
        raise QSSError("saving a QSS server requires a durable LoreStore "
                       "(constructed with a directory)")

    state: dict = {
        "clock": server.clock.ticks,
        "deliver_empty": server.deliver_empty,
        "share_by_polling_query": server.share_by_polling_query,
        "cache_previous_result": server.doems.cache_previous_result,
        "subscriptions": [],
    }
    saved_keys: set[str] = set()
    for sub_state in server.subscriptions.states():
        subscription = sub_state.subscription
        doem_key = server.doems._key(subscription.name)
        record = {
            "name": subscription.name,
            "frequency": str(subscription.frequency),
            "polling_query": str(subscription.polling_query),
            "filter_query": str(subscription.filter_query),
            "polling_name": subscription.polling_name,
            "user": subscription.user,
            "wrapper": sub_state.wrapper_name,
            "polling_times": [when.ticks
                              for when in sub_state.polling_times],
            "next_poll": (sub_state.next_poll.ticks
                          if sub_state.next_poll is not None else None),
            "doem_key": doem_key,
        }
        state["subscriptions"].append(record)
        if doem_key not in saved_keys:
            saved_keys.add(doem_key)
            store.put_doem(_doem_store_name(doem_key),
                           server.doems.doem(subscription.name))

    path = store.directory / _STATE_FILE
    path.write_text(json.dumps(state, indent=2), encoding="utf-8")


def load_server(store: LoreStore) -> QSSServer:
    """Restore a server saved with :func:`save_server`.

    Wrappers must be re-registered (by the same names) before the next
    ``run_until``; everything else -- subscriptions, schedules, polling
    histories, DOEM databases, sharing structure -- comes back exactly.
    """
    if store.directory is None:
        raise QSSError("loading a QSS server requires a durable LoreStore")
    path = store.directory / _STATE_FILE
    if not path.exists():
        raise QSSError(f"no saved QSS state in {store.directory}")
    state = json.loads(path.read_text(encoding="utf-8"))

    server = QSSServer(
        start=Timestamp(state["clock"]),
        cache_previous_result=state["cache_previous_result"],
        deliver_empty=state["deliver_empty"],
        share_by_polling_query=state["share_by_polling_query"])

    for record in state["subscriptions"]:
        subscription = Subscription(
            name=record["name"],
            frequency=record["frequency"],
            polling_query=record["polling_query"],
            filter_query=record["filter_query"],
            polling_name=record["polling_name"],
            user=record["user"])
        sub_state = server.subscriptions.add(subscription,
                                             record["wrapper"], server.clock)
        sub_state.polling_times = [Timestamp(ticks)
                                   for ticks in record["polling_times"]]
        sub_state.next_poll = (Timestamp(record["next_poll"])
                               if record["next_poll"] is not None else None)

        doem_key = record["doem_key"]
        server.doems.set_alias(subscription.name, doem_key)
        if doem_key not in server.doems._doems:
            doem = store.get_doem(_doem_store_name(doem_key))
            server.doems._doems[doem_key] = doem
            server.doems._all_ids[doem_key] = set(doem.graph.nodes())
    return server


def _doem_store_name(key: str) -> str:
    """A filesystem-safe store name for a DOEM key."""
    import hashlib
    digest = hashlib.sha1(key.encode("utf-8")).hexdigest()[:12]
    return f"doem_{digest}"
