"""The QSS server's internal modules (Figure 7).

* :class:`SubscriptionManager` -- "handles all the information relevant
  to subscriptions": the subscription itself, its polling schedule, and
  the per-subscription bookkeeping;
* :class:`QueryManager` -- "responsible for sending polling queries to
  the Tsimmis wrapper or mediator and for collecting the resulting OEM
  results";
* :class:`DOEMManager` -- "maintains the DOEM database corresponding to
  the sequence of polling query results, using the OEMdiff module to
  compute changes between successive polling query results".  It supports
  both space/time strategies the paper discusses: recomputing the
  previous result from the DOEM database (small state) or caching it
  (faster polls).

The Chorel engine wiring (filter-query evaluation with ``t[i]``
substitution) lives in :meth:`DOEMManager.filter_engine`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..chorel.engine import ChorelEngine
from ..diff.oemdiff import DiffStats, oem_diff
from ..doem.model import DOEMDatabase
from ..doem.snapshot import current_snapshot
from ..errors import QSSError, SubscriptionError
from ..oem.history import ChangeSet
from ..oem.model import OEMDatabase
from ..timestamps import Timestamp, parse_timestamp
from .subscription import Subscription, polling_time_mapping
from .wrapper import Wrapper

__all__ = ["SubscriptionManager", "QueryManager", "DOEMManager",
           "SubscriptionState"]


@dataclass
class SubscriptionState:
    """Per-subscription runtime bookkeeping."""

    subscription: Subscription
    wrapper_name: str
    polling_times: list[Timestamp] = field(default_factory=list)
    next_poll: Timestamp | None = None

    @property
    def poll_count(self) -> int:
        """How many polls have completed."""
        return len(self.polling_times)


class SubscriptionManager:
    """Registry of active subscriptions and their schedules."""

    def __init__(self) -> None:
        self._states: dict[str, SubscriptionState] = {}

    def add(self, subscription: Subscription, wrapper_name: str,
            now: object) -> SubscriptionState:
        """Register a subscription; its first poll is scheduled after ``now``."""
        if subscription.name in self._states:
            raise SubscriptionError(
                f"subscription {subscription.name!r} already exists")
        state = SubscriptionState(subscription=subscription,
                                  wrapper_name=wrapper_name)
        state.next_poll = subscription.frequency.next_after(parse_timestamp(now))
        self._states[subscription.name] = state
        return state

    def remove(self, name: str) -> None:
        """Drop a subscription."""
        if name not in self._states:
            raise SubscriptionError(f"no subscription named {name!r}")
        del self._states[name]

    def get(self, name: str) -> SubscriptionState:
        """The state of one subscription."""
        try:
            return self._states[name]
        except KeyError:
            raise SubscriptionError(f"no subscription named {name!r}") from None

    def states(self) -> list[SubscriptionState]:
        """All subscription states, name order."""
        return [self._states[name] for name in sorted(self._states)]

    def due(self, now: object) -> list[SubscriptionState]:
        """Subscriptions whose next poll is at or before ``now``."""
        cutoff = parse_timestamp(now)
        return [state for state in self.states()
                if state.next_poll is not None and state.next_poll <= cutoff]

    def record_poll(self, state: SubscriptionState, when: Timestamp) -> None:
        """Mark a completed poll and schedule the next one."""
        state.polling_times.append(when)
        state.next_poll = state.subscription.frequency.next_after(when)


class QueryManager:
    """Sends polling queries to wrappers; collects packaged OEM results."""

    def __init__(self, wrappers: dict[str, Wrapper] | None = None) -> None:
        self._wrappers: dict[str, Wrapper] = dict(wrappers or {})

    def register_wrapper(self, name: str, wrapper: Wrapper) -> None:
        """Make a wrapper available under ``name``."""
        self._wrappers[name] = wrapper

    def wrapper(self, name: str) -> Wrapper:
        """Look up a registered wrapper."""
        try:
            return self._wrappers[name]
        except KeyError:
            raise QSSError(f"no wrapper named {name!r}") from None

    def wrapper_names(self) -> list[str]:
        """All registered wrapper names."""
        return sorted(self._wrappers)

    def poll(self, state: SubscriptionState, when: object) -> OEMDatabase:
        """Advance the source to ``when`` and run the polling query."""
        wrapper = self.wrapper(state.wrapper_name)
        wrapper.advance(when)
        return wrapper.poll(state.subscription.polling_query)


def _rename_root(db: OEMDatabase, new_root: str) -> OEMDatabase:
    """A copy of ``db`` whose root carries ``new_root`` as its identifier."""
    renamed = OEMDatabase(root=new_root, root_value=db.value(db.root))
    for node in db.nodes():
        if node != db.root:
            renamed.create_node(node, db.value(node))
    for arc in db.arcs():
        source = new_root if arc.source == db.root else arc.source
        target = new_root if arc.target == db.root else arc.target
        renamed.add_arc(source, arc.label, target)
    return renamed


class DOEMManager:
    """Maintains one DOEM database per subscription.

    ``R0`` is the empty OEM database, so the first poll's objects all
    carry ``cre`` annotations (Example 6.1's t1 behaviour).

    ``cache_previous_result`` selects the footnote's strategy: keep the
    previous polling result (aligned to DOEM identifiers) in memory
    instead of re-deriving it from the DOEM database at every poll.

    ``store`` makes the histories durable: every applied change set is
    also appended to the named history in a
    :class:`~repro.store.ChangeLogStore` (keys sanitized with
    :func:`~repro.store.sanitize_name`, since shared-DOEM alias keys like
    ``wrapper::query`` are not path-safe), and a manager constructed over
    a non-empty store rebuilds each DOEM from the log on first touch --
    the restart-without-re-polling path.
    """

    def __init__(self, cache_previous_result: bool = True,
                 differ: str = "match", store=None) -> None:
        if differ not in ("match", "ids"):
            raise QSSError("differ must be 'match' (content matching, the "
                           "default) or 'ids' (trust stable identifiers)")
        self.differ = differ
        self.cache_previous_result = cache_previous_result
        self.store = store
        self._doems: dict[str, DOEMDatabase] = {}
        self._previous: dict[str, OEMDatabase] = {}
        self._all_ids: dict[str, set[str]] = {}
        self._aliases: dict[str, str] = {}
        self.last_diff_stats: dict[str, DiffStats] = {}

    def set_alias(self, name: str, key: str) -> None:
        """Let subscription ``name`` share the DOEM database stored at ``key``.

        This is the paper's first space-conservation idea (Section 6.1):
        "merging the DOEM databases for subscriptions that have similar
        polling queries".  Subscriptions sharing a key poll into one
        history; a redundant poll (same data, possibly a different
        instant) folds an empty change set, which is harmless.
        """
        self._aliases[name] = key

    def _key(self, name: str) -> str:
        return self._aliases.get(name, name)

    def shared_with(self, name: str) -> list[str]:
        """Other subscription names sharing ``name``'s DOEM database."""
        key = self._key(name)
        return sorted(other for other, other_key in self._aliases.items()
                      if other_key == key and other != name)

    def _store_log(self, key: str):
        """The durable log behind ``key`` (``None`` without a store)."""
        if self.store is None:
            return None
        from ..store import sanitize_name
        return self.store.log(sanitize_name(key),
                              origin=OEMDatabase(root="answer"))

    def doem(self, name: str) -> DOEMDatabase:
        """The DOEM database for subscription ``name`` (created lazily).

        The empty base database has an ``answer`` root matching the
        wrapper's packaging, so diffs align naturally.  With a store
        attached, a history already on disk is rebuilt from its log
        here -- restarting a server recovers every subscription's DOEM
        without touching the sources.
        """
        key = self._key(name)
        if key not in self._doems:
            log = self._store_log(key)
            if log is not None and len(log) > 0:
                doem = log.get_doem()
                self._doems[key] = doem
                # Every identifier the history ever used stays reserved
                # (Section 2.2: identifiers are never reused), including
                # those of nodes that are now dead.
                self._all_ids[key] = set(doem.graph.nodes()) | {"answer"}
            else:
                self._doems[key] = DOEMDatabase(OEMDatabase(root="answer"))
                self._all_ids[key] = {"answer"}
        return self._doems[key]

    def previous_result(self, name: str) -> OEMDatabase:
        """``R_{i-1}`` in DOEM identifier space.

        Cached when ``cache_previous_result`` is on; otherwise recomputed
        as the current snapshot of the DOEM database (the space-saving
        strategy).
        """
        key = self._key(name)
        if self.cache_previous_result and key in self._previous:
            return self._previous[key]
        return current_snapshot(self.doem(name))

    def incorporate(self, name: str, when: object,
                    result: OEMDatabase) -> ChangeSet:
        """Fold a new polling result into the subscription's DOEM database.

        Runs OEMdiff between the previous result and ``result``, applies
        the inferred change set with timestamp ``when``, and returns it.
        Fresh identifiers avoid everything the DOEM database has ever
        used -- deleted identifiers are never reused (Section 2.2).
        """
        from ..doem.build import apply_change_set

        key = self._key(name)
        doem = self.doem(name)
        previous = self.previous_result(name)
        reserved = self._all_ids[key]
        if self.differ == "ids":
            # Cooperative source: identifiers are stable between polls.
            from ..diff.iddiff import id_diff
            aligned = result if result.root == previous.root \
                else _rename_root(result, previous.root)
            change_set = id_diff(previous, aligned)
        else:
            change_set = oem_diff(previous, result, reserved_ids=reserved)
        timestamp = parse_timestamp(when)
        existing = doem.timestamps()
        if change_set or not existing or existing[-1] < timestamp:
            apply_change_set(doem, timestamp, change_set)
            if change_set:
                # Durability follows the in-memory fold: non-empty sets
                # land in the change log (empty sets leave no annotations
                # and would only bloat the segments).
                log = self._store_log(key)
                if log is not None:
                    log.append(timestamp, change_set)
        reserved.update(change_set.created_nodes())
        self.last_diff_stats[name] = DiffStats(change_set)
        if self.cache_previous_result:
            updated = previous.copy()
            change_set.apply_to(updated)
            self._previous[key] = updated
        return change_set

    def compact_before(self, name: str, when: object) -> None:
        """Truncate the subscription's DOEM history at ``when``.

        Section 6.1's third space idea: the state at ``when`` becomes the
        new original snapshot and older annotations are forgotten.  Filter
        queries that only look back as far as ``when`` (the usual
        ``T > t[-1]`` shape) are unaffected.  Refuses to compact a DOEM
        shared by several subscriptions -- the caller must pick a cutoff
        safe for *all* sharers and call this once.
        """
        from ..doem.compact import compact
        from ..timestamps import parse_timestamp

        if self.shared_with(name):
            raise QSSError(
                f"DOEM of {name!r} is shared "
                f"(with {self.shared_with(name)}); compact it explicitly "
                f"with a cutoff valid for every sharer")
        key = self._key(name)
        doem = self.doem(name)
        compacted = compact(doem, parse_timestamp(when))
        self._doems[key] = compacted
        log = self._store_log(key)
        if log is not None:
            # Keep the durable log in step: the same horizon promotes the
            # state at the cutoff to the log's new origin.
            log.compact(before=parse_timestamp(when))
        # Identifier discipline is preserved: compaction only drops nodes,
        # and dropped identifiers stay in the reserved set forever.
        if self.cache_previous_result and key in self._previous:
            # The cached previous result is a plain snapshot; unaffected.
            pass

    def filter_engine(self, state: SubscriptionState) -> ChorelEngine:
        """A Chorel engine over the subscription's DOEM database.

        The database is registered under the polling query's name and the
        ``t[i]`` variables reflect the polls completed so far.
        """
        subscription = state.subscription
        doem = self.doem(subscription.name)
        engine = ChorelEngine(doem, name=subscription.polling_name)
        engine.set_polling_times(polling_time_mapping(state.polling_times))
        return engine

    def drop(self, name: str) -> None:
        """Forget a subscription's state (shared DOEMs survive until the
        last sharer is dropped)."""
        key = self._aliases.pop(name, name)
        self.last_diff_stats.pop(name, None)
        if key in self._aliases.values():
            return  # other subscriptions still share this DOEM
        self._doems.pop(key, None)
        self._previous.pop(key, None)
        self._all_ids.pop(key, None)

    def state_size(self, name: str) -> dict[str, int]:
        """Rough state-size accounting for the space-strategy benchmark."""
        doem = self.doem(name)
        sizes = {
            "doem_nodes": len(doem.graph),
            "doem_arcs": doem.graph.arc_count(),
            "annotations": doem.annotation_count(),
            "cached_nodes": 0,
            "cached_arcs": 0,
        }
        if self.cache_previous_result and name in self._previous:
            cached = self._previous[name]
            sizes["cached_nodes"] = len(cached)
            sizes["cached_arcs"] = cached.arc_count()
        return sizes
