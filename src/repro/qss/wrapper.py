"""Tsimmis-style wrappers: the uniform OEM query interface over sources.

"We access the information sources using Tsimmis wrappers or mediators
[PGGMU95, PGMU96], which present a uniform OEM view of one or more data
sources" (Section 6).  A :class:`Wrapper` binds a
:class:`~repro.sources.base.Source` and answers polling queries: it asks
the source for its current OEM export, runs the Lorel polling query over
it, and packages the answer -- with the recursive subobject closure --
as a standalone OEM database.

A :class:`Mediator` fuses several wrappers under one root, the
object-fusion arrangement of [PAGM96] that the paper's library example
alludes to.
"""

from __future__ import annotations

from ..errors import QSSError
from ..lorel.ast import Query
from ..lorel.engine import LorelEngine
from ..oem.model import OEMDatabase
from ..oem.values import COMPLEX
from ..sources.base import Source
from ..timestamps import Timestamp

__all__ = ["Wrapper", "Mediator"]


class Wrapper:
    """Presents one source as a queryable OEM view.

    ``name`` is the database name the polling queries use as their path
    root (defaults to the source export's root id, e.g. ``guide``).
    """

    def __init__(self, source: Source, name: str | None = None) -> None:
        self.source = source
        self.name = name
        self.poll_count = 0

    def advance(self, when: object) -> None:
        """Let the simulated world move on to time ``when``."""
        self.source.advance(when)

    def poll(self, polling_query: str | Query) -> OEMDatabase:
        """Execute a polling query; return the packaged OEM result.

        Per Section 6, "the result of a polling query includes
        (recursively) all subobjects of the objects in the query answer,
        and ... the result is 'packaged' as an OEM database."  The
        packaged answer's root is named ``answer``; the selected objects
        hang off it under their select labels.
        """
        snapshot = self.source.export()
        engine = LorelEngine(snapshot, name=self.name or snapshot.root)
        result = engine.run(polling_query)
        self.poll_count += 1
        return result.as_oem(snapshot, root="answer")


class Mediator:
    """Fuses several sources into a single queryable OEM view.

    "Tsimmis wrappers or mediators ... present a uniform OEM view of one
    or more data sources" (Section 6).  A mediator is itself
    wrapper-compatible (``advance`` + ``poll``), so a QSS subscription can
    poll several autonomous sources through one polling query: each
    source's export is grafted under the fused root as a
    ``<source-name>``-labeled complex object, and the Lorel polling query
    runs over the fused view.

    ``Mediator({"guide": guide_source, "library": library_source})``
    lets a polling query say ``select med.guide.restaurant`` or join
    across sources.
    """

    def __init__(self, sources: dict[str, Source],
                 name: str = "med") -> None:
        if not sources:
            raise QSSError("a mediator needs at least one source")
        self.sources = dict(sources)
        self.name = name
        self.poll_count = 0

    def advance(self, when: object) -> None:
        """Advance every underlying source."""
        for source in self.sources.values():
            source.advance(when)

    def export(self) -> OEMDatabase:
        """The fused OEM view: one subobject per source, by name."""
        fused = OEMDatabase(root=self.name)
        for source_name, source in sorted(self.sources.items()):
            part = source.export()
            mapping: dict[str, str] = {}
            hub = fused.create_node(fused.new_node_id(source_name), COMPLEX)
            fused.add_arc(fused.root, source_name, hub)
            mapping[part.root] = hub
            for node in part.nodes():
                if node == part.root:
                    continue
                new_id = node if node not in fused \
                    else fused.new_node_id(source_name)
                mapping[node] = fused.create_node(new_id, part.value(node))
            for arc in part.arcs():
                fused.add_arc(mapping[arc.source], arc.label,
                              mapping[arc.target])
        return fused

    def poll(self, polling_query: str | Query) -> OEMDatabase:
        """Run a Lorel polling query over the fused view; package it."""
        snapshot = self.export()
        engine = LorelEngine(snapshot, name=self.name)
        result = engine.run(polling_query)
        self.poll_count += 1
        return result.as_oem(snapshot, root="answer")
