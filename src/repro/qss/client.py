"""QSC: the Query Subscription Client.

"QSC implements a user interface that supports subscription creation and
deletion, and also delivers notifications to the user" (Section 6.1).
This client is programmatic rather than graphical: it creates
subscriptions against a server, accumulates the notifications it
receives, and renders them as text.
"""

from __future__ import annotations

from typing import Callable

from ..errors import SubscriptionError
from .server import QSSServer
from .subscription import Notification, Subscription

__all__ = ["QSC"]


class QSC:
    """One client of a QSS server.

    Multiple clients may attach to the same server; each receives only
    the notifications of its own subscriptions.
    """

    def __init__(self, server: QSSServer, user: str = "local") -> None:
        self.server = server
        self.user = user
        self.inbox: list[Notification] = []
        self._callbacks: list[Callable[[Notification], None]] = []
        self._subscriptions: set[str] = set()

    # ------------------------------------------------------------------

    def on_notification(self, callback: Callable[[Notification], None]) -> None:
        """Register an extra callback invoked on every delivery."""
        self._callbacks.append(callback)

    def _receive(self, notification: Notification) -> None:
        self.inbox.append(notification)
        for callback in self._callbacks:
            callback(notification)

    # ------------------------------------------------------------------

    def subscribe(self, name: str, frequency: str, polling_query: str,
                  filter_query: str, wrapper: str,
                  polling_name: str | None = None) -> Subscription:
        """Create a subscription from its three components (Section 6).

        ``polling_query`` and ``filter_query`` may be plain queries or
        full ``define polling/filter query N as ...`` statements; in the
        latter case the DOEM database takes the polling definition's name.
        """
        polling_text = polling_query.strip()
        filter_text = filter_query.strip()
        if polling_text.lower().startswith("define"):
            subscription = Subscription.from_definitions(
                name, frequency, polling_text, filter_text, user=self.user)
        else:
            subscription = Subscription(
                name=name, frequency=frequency, polling_query=polling_text,
                filter_query=filter_text, polling_name=polling_name,
                user=self.user)
        self.server.subscribe(subscription, wrapper, deliver=self._receive)
        self._subscriptions.add(name)
        return subscription

    def unsubscribe(self, name: str) -> None:
        """Cancel one of this client's subscriptions."""
        if name not in self._subscriptions:
            raise SubscriptionError(
                f"{self.user!r} has no subscription named {name!r}")
        self.server.unsubscribe(name)
        self._subscriptions.discard(name)

    def subscriptions(self) -> list[str]:
        """Names of this client's active subscriptions."""
        return sorted(self._subscriptions)

    # ------------------------------------------------------------------

    def notifications(self, name: str | None = None) -> list[Notification]:
        """Received notifications, optionally for one subscription."""
        if name is None:
            return list(self.inbox)
        return [notification for notification in self.inbox
                if notification.subscription == name]

    def render_inbox(self) -> str:
        """A text rendering of the inbox (newest last)."""
        if not self.inbox:
            return "(no notifications)"
        return "\n".join(str(notification) for notification in self.inbox)
