"""Frequency specifications: when a subscription polls its source.

Section 6: "The first component is a frequency specification f that
specifies how often QSS should check the information source ... Examples
are 'every Friday at 5:00pm' and 'every 10 minutes'.  The frequency
specification implies a sequence of time instants (t1, t2, t3, ...),
which we call polling times."

:class:`FrequencySpec` parses the textual forms the paper uses and
enumerates polling times from a start instant.  Supported forms::

    every 10 minutes | every 2 hours | every 30 seconds | every 3 days
    every day at 11:30pm            (a.k.a. "every night at 11:30pm")
    every friday at 5:00pm          (any weekday name)
    every week | every hour | every minute | every day
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterator

from ..errors import FrequencyError
from ..timestamps import Timestamp, parse_timestamp

__all__ = ["FrequencySpec"]

_WEEKDAYS = {
    "monday": 0, "tuesday": 1, "wednesday": 2, "thursday": 3,
    "friday": 4, "saturday": 5, "sunday": 6,
}
_UNIT_SECONDS = {
    "second": 1, "minute": 60, "hour": 3600, "day": 86400, "week": 604800,
}

_INTERVAL_RE = re.compile(
    r"^\s*every\s+(?:(\d+)\s+)?(second|minute|hour|day|week)s?\s*$",
    re.IGNORECASE)
_DAILY_RE = re.compile(
    r"^\s*every\s+(day|night|morning|evening)\s+at\s+"
    r"(\d{1,2}):(\d{2})\s*(am|pm)?\s*$", re.IGNORECASE)
_WEEKLY_RE = re.compile(
    r"^\s*every\s+([a-z]+)\s+at\s+(\d{1,2}):(\d{2})\s*(am|pm)?\s*$",
    re.IGNORECASE)


@dataclass(frozen=True)
class FrequencySpec:
    """A parsed frequency specification.

    ``kind`` is ``interval`` (fixed period in seconds) or ``daily`` /
    ``weekly`` (calendar-aligned).  Use :meth:`parse` to build one from
    the textual form, :meth:`next_after` / :meth:`polling_times` to
    enumerate polling instants.
    """

    kind: str
    period_seconds: int = 0
    hour: int = 0
    minute: int = 0
    weekday: int = 0
    text: str = ""

    @classmethod
    def parse(cls, text: str) -> "FrequencySpec":
        """Parse a textual frequency specification (see module docstring)."""
        match = _INTERVAL_RE.match(text)
        if match:
            count = int(match.group(1) or 1)
            if count <= 0:
                raise FrequencyError(f"non-positive interval in {text!r}")
            unit = match.group(2).lower()
            return cls(kind="interval",
                       period_seconds=count * _UNIT_SECONDS[unit], text=text)

        match = _DAILY_RE.match(text)
        if match:
            hour, minute = cls._clock(match.group(2), match.group(3),
                                      match.group(4), text)
            return cls(kind="daily", hour=hour, minute=minute, text=text)

        match = _WEEKLY_RE.match(text)
        if match:
            day_name = match.group(1).lower()
            if day_name not in _WEEKDAYS:
                raise FrequencyError(
                    f"unknown weekday {day_name!r} in {text!r}")
            hour, minute = cls._clock(match.group(2), match.group(3),
                                      match.group(4), text)
            return cls(kind="weekly", weekday=_WEEKDAYS[day_name],
                       hour=hour, minute=minute, text=text)

        raise FrequencyError(f"unrecognizable frequency specification: {text!r}")

    @staticmethod
    def _clock(hour_text: str, minute_text: str, meridiem: str | None,
               source: str) -> tuple[int, int]:
        hour, minute = int(hour_text), int(minute_text)
        if meridiem:
            meridiem = meridiem.lower()
            if hour > 12:
                raise FrequencyError(f"bad 12-hour clock time in {source!r}")
            if meridiem == "pm" and hour < 12:
                hour += 12
            if meridiem == "am" and hour == 12:
                hour = 0
        if not (0 <= hour < 24 and 0 <= minute < 60):
            raise FrequencyError(f"bad clock time in {source!r}")
        return hour, minute

    # ------------------------------------------------------------------

    def next_after(self, when: object) -> Timestamp:
        """The first polling time strictly after ``when``."""
        current = parse_timestamp(when)
        if self.kind == "interval":
            return current.plus(seconds=self.period_seconds)
        moment = current.to_datetime()
        candidate = moment.replace(hour=self.hour, minute=self.minute,
                                   second=0, microsecond=0)
        if self.kind == "daily":
            if candidate <= moment:
                candidate = candidate.replace(day=candidate.day)
                candidate = Timestamp.from_datetime(candidate).plus(days=1).to_datetime()
            return Timestamp.from_datetime(candidate)
        if self.kind == "weekly":
            days_ahead = (self.weekday - candidate.weekday()) % 7
            candidate = Timestamp.from_datetime(candidate).plus(days=days_ahead).to_datetime()
            if Timestamp.from_datetime(candidate) <= current:
                candidate = Timestamp.from_datetime(candidate).plus(days=7).to_datetime()
            return Timestamp.from_datetime(candidate)
        raise FrequencyError(f"unknown frequency kind {self.kind!r}")  # pragma: no cover

    def polling_times(self, start: object, count: int) -> list[Timestamp]:
        """The first ``count`` polling times after ``start``."""
        times: list[Timestamp] = []
        current = parse_timestamp(start)
        for _ in range(count):
            current = self.next_after(current)
            times.append(current)
        return times

    def iter_polling_times(self, start: object) -> Iterator[Timestamp]:
        """An endless iterator of polling times after ``start``."""
        current = parse_timestamp(start)
        while True:
            current = self.next_after(current)
            yield current

    def __str__(self) -> str:
        return self.text or self.kind
