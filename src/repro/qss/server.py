"""The QSS server: the polling/diff/filter loop over a simulated clock.

One server process serves multiple clients (Figure 7).  The simulated
clock makes every run deterministic and fast: :meth:`QSSServer.run_until`
executes, in timestamp order, every poll that falls due across all
subscriptions, and delivers the filter-query results to the subscribing
clients.
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter
from typing import Callable

from ..errors import QSSError
from ..obs.metrics import registry as metrics_registry
from ..obs.trace import span
from ..timestamps import Timestamp, parse_timestamp
from .managers import DOEMManager, QueryManager, SubscriptionManager, SubscriptionState
from .subscription import Notification, Subscription
from .wrapper import Wrapper

__all__ = ["QSSServer", "SlowPollRecord"]


@dataclass(frozen=True)
class SlowPollRecord:
    """One slow-query-log entry: a poll that exceeded the threshold."""

    polling_time: Timestamp
    subscription: str
    seconds: float

    def __str__(self) -> str:
        return (f"[{self.polling_time}] SLOW {self.subscription}: "
                f"{self.seconds * 1000:.3f} ms")


class QSSServer:
    """The Query Subscription Service server.

    ``start`` sets the simulated clock's origin.  Wrappers are registered
    by name; clients attach via :class:`~repro.qss.client.QSC` (or any
    callable taking a :class:`~repro.qss.subscription.Notification`).

    ``deliver_empty`` controls whether polls whose filter query returns
    nothing still produce a (empty) notification -- the paper's QSS stays
    silent, the default here too; tests flip it to observe every poll.

    Observability: every poll is wall-timed (``qss.poll_seconds``
    histogram; ``qss.polls`` / ``qss.notifications`` / ``qss.errors``
    counters in the global metrics registry) and, when tracing is
    enabled, produces a ``qss.poll`` span with per-phase children.
    ``slow_poll_threshold`` (seconds; ``None`` disables) turns on the
    slow-query log: polls at or above the threshold are appended to
    ``slow_poll_log`` and counted in ``qss.slow_polls``.
    :meth:`metrics_text` serves the registry as a ``/metrics``-style
    text dump.
    """

    def __init__(self, start: object = "1Dec96",
                 cache_previous_result: bool = True,
                 deliver_empty: bool = False,
                 share_by_polling_query: bool = False,
                 on_error: str = "raise",
                 compact_keep_polls: int | None = None,
                 slow_poll_threshold: float | None = None) -> None:
        if on_error not in ("raise", "skip"):
            raise QSSError("on_error must be 'raise' or 'skip'")
        if slow_poll_threshold is not None and slow_poll_threshold < 0:
            raise QSSError("slow_poll_threshold must be >= 0 (seconds)")
        if compact_keep_polls is not None and compact_keep_polls < 1:
            raise QSSError("compact_keep_polls must be >= 1")
        if compact_keep_polls is not None and share_by_polling_query:
            raise QSSError("automatic compaction and DOEM sharing cannot "
                           "combine; compact shared DOEMs explicitly")
        self.clock: Timestamp = parse_timestamp(start)
        self.subscriptions = SubscriptionManager()
        self.queries = QueryManager()
        self.doems = DOEMManager(cache_previous_result=cache_previous_result)
        self.deliver_empty = deliver_empty
        self.share_by_polling_query = share_by_polling_query
        self.on_error = on_error
        self.compact_keep_polls = compact_keep_polls
        self.slow_poll_threshold = slow_poll_threshold
        self._subscribers: dict[str, list[Callable[[Notification], None]]] = {}
        self.notification_log: list[Notification] = []
        self.error_log: list[tuple[Timestamp, str, Exception]] = []
        self.slow_poll_log: list[SlowPollRecord] = []
        self._metrics = metrics_registry().group(
            "qss", ("polls", "notifications", "slow_polls", "errors"),
            histograms=("poll_seconds",))

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------

    def register_wrapper(self, name: str, wrapper: Wrapper) -> None:
        """Expose a wrapper (a source) to subscriptions under ``name``."""
        self.queries.register_wrapper(name, wrapper)

    def subscribe(self, subscription: Subscription, wrapper_name: str,
                  deliver: Callable[[Notification], None] | None = None
                  ) -> SubscriptionState:
        """Create a subscription against a registered wrapper.

        The first poll is scheduled by the frequency specification,
        starting from the current simulated clock.
        """
        self.queries.wrapper(wrapper_name)  # validate early
        state = self.subscriptions.add(subscription, wrapper_name, self.clock)
        if self.share_by_polling_query:
            # Section 6.1's first space idea: subscriptions with the same
            # polling query (against the same wrapper) share one DOEM.
            key = f"{wrapper_name}::{subscription.polling_query}"
            self.doems.set_alias(subscription.name, key)
        if deliver is not None:
            self._subscribers.setdefault(subscription.name, []).append(deliver)
        return state

    def unsubscribe(self, name: str) -> None:
        """Cancel a subscription and drop its DOEM state."""
        self.subscriptions.remove(name)
        self.doems.drop(name)
        self._subscribers.pop(name, None)

    # ------------------------------------------------------------------
    # The polling loop
    # ------------------------------------------------------------------

    def run_until(self, when: object) -> list[Notification]:
        """Advance the simulated clock, executing every due poll in order.

        Returns the notifications produced (also appended to
        ``notification_log`` and pushed to per-subscription callbacks).
        """
        deadline = parse_timestamp(when)
        if deadline < self.clock:
            raise QSSError(
                f"cannot run the clock backwards ({deadline} < {self.clock})")
        produced: list[Notification] = []

        while True:
            due: list[tuple[Timestamp, SubscriptionState]] = [
                (state.next_poll, state)
                for state in self.subscriptions.states()
                if state.next_poll is not None and state.next_poll <= deadline]
            if not due:
                break
            due.sort(key=lambda entry: (entry[0], entry[1].subscription.name))
            poll_time, state = due[0]
            try:
                notification = self._execute_poll(state, poll_time)
            except Exception as error:
                self._metrics["errors"].inc()
                if self.on_error == "raise":
                    raise
                # A failed poll must not wedge the server: log it, keep
                # the schedule moving (the poll still "happened"), and
                # leave the DOEM database untouched for the next attempt.
                self.error_log.append(
                    (poll_time, state.subscription.name, error))
                if not state.polling_times or \
                        state.polling_times[-1] != poll_time:
                    self.subscriptions.record_poll(state, poll_time)
                continue
            if notification is not None:
                produced.append(notification)

        self.clock = deadline
        return produced

    # ------------------------------------------------------------------
    # The paper's two other snapshot modes (Section 6): explicit user
    # requests, and source-side trigger signals.
    # ------------------------------------------------------------------

    def poll_now(self, name: str) -> Notification | None:
        """Poll one subscription immediately, at the current clock.

        The paper's second mode: "snapshots are obtained following
        explicit user requests."  The on-demand poll joins the polling
        timeline (it becomes ``t[0]``; the scheduled cadence continues
        from it), so filter-query lookbacks stay consistent.  The clock
        must have advanced past the last poll.
        """
        state = self.subscriptions.get(name)
        if state.polling_times and self.clock <= state.polling_times[-1]:
            raise QSSError(
                f"cannot poll {name!r} at {self.clock}: a poll at "
                f"{state.polling_times[-1]} already happened")
        return self._execute_poll(state, self.clock)

    def on_source_signal(self, wrapper_name: str) -> list[Notification]:
        """React to a source-side trigger firing (the paper's third mode).

        "Snapshots are obtained as a result of a trigger on the source
        database firing, if the source provides such a triggering
        mechanism."  Every subscription polling through ``wrapper_name``
        is refreshed immediately at the current clock; subscriptions
        whose latest poll is not in the past are skipped (they are
        already up to date).
        """
        self.queries.wrapper(wrapper_name)  # validate
        produced: list[Notification] = []
        for state in self.subscriptions.states():
            if state.wrapper_name != wrapper_name:
                continue
            if state.polling_times and self.clock <= state.polling_times[-1]:
                continue
            notification = self._execute_poll(state, self.clock)
            if notification is not None:
                produced.append(notification)
        return produced

    def _execute_poll(self, state: SubscriptionState,
                      poll_time: Timestamp) -> Notification | None:
        subscription = state.subscription
        started = perf_counter()
        with span("qss.poll", subscription=subscription.name,
                  at=str(poll_time)):
            with span("qss.poll.source"):
                result = self.queries.poll(state, poll_time)
            with span("qss.poll.incorporate"):
                self.doems.incorporate(subscription.name, poll_time, result)
            self.subscriptions.record_poll(state, poll_time)

            engine = self.doems.filter_engine(state)
            with span("qss.filter"):
                filtered = engine.run(subscription.filter_query)
            with span("qss.package"):
                answer = self._package(subscription.name, filtered)

            if self.compact_keep_polls is not None and \
                    state.poll_count > self.compact_keep_polls:
                # Section 6.1 retention policy: keep the last N polling
                # intervals of history; everything older collapses into
                # the new original snapshot.  Cutoff = the (N+1)-th most
                # recent poll, so t[-N] filter lookbacks still work.
                cutoff = state.polling_times[-(self.compact_keep_polls + 1)]
                with span("qss.compact"):
                    self.doems.compact_before(subscription.name, cutoff)
        elapsed = perf_counter() - started
        self._metrics["polls"].inc()
        self._metrics.histogram("poll_seconds").observe(elapsed)
        if self.slow_poll_threshold is not None and \
                elapsed >= self.slow_poll_threshold:
            self._metrics["slow_polls"].inc()
            self.slow_poll_log.append(SlowPollRecord(
                polling_time=poll_time, subscription=subscription.name,
                seconds=elapsed))
        notification = Notification(
            subscription=subscription.name,
            polling_time=poll_time,
            poll_index=state.poll_count,
            result=filtered,
            answer=answer,
            elapsed=elapsed,
        )
        if filtered or self.deliver_empty:
            self._metrics["notifications"].inc()
            self.notification_log.append(notification)
            for deliver in self._subscribers.get(subscription.name, ()):
                deliver(notification)
            return notification
        return None

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------

    def metrics_text(self, prefix: str | None = None) -> str:
        """A ``/metrics``-style text dump of the global registry.

        Includes this server's ``qss.*`` series plus every ``repro.*``
        family (index hit rates, snapshot-cache activity, diff volume).
        ``prefix`` narrows the dump (e.g. ``"qss"``).
        """
        return metrics_registry().render_text(prefix)

    def _package(self, name: str, filtered) -> "OEMDatabase":
        """Package a filter result as a notification OEM database.

        Results are copied out of the subscription DOEM's *current
        snapshot*; selected objects that are no longer live (e.g. targets
        of removed arcs) are included as value-only nodes so the
        notification is still self-contained.
        """
        from ..doem.snapshot import current_snapshot
        from ..lorel.result import ObjectRef

        doem = self.doems.doem(name)
        snapshot = current_snapshot(doem)
        for row in filtered:
            for _, value in row.items:
                if isinstance(value, ObjectRef) and \
                        not snapshot.has_node(value.node):
                    node_value = doem.graph.value(value.node)
                    snapshot.create_node(value.node, node_value)
        return filtered.as_oem(snapshot, root="notification")
