"""The QSS server: the polling/diff/filter loop over a simulated clock.

One server process serves multiple clients (Figure 7).  The simulated
clock makes every run deterministic and fast: :meth:`QSSServer.run_until`
executes, in timestamp order, every poll that falls due across all
subscriptions, and delivers the filter-query results to the subscribing
clients.
"""

from __future__ import annotations

import threading
from concurrent.futures import wait as futures_wait
from dataclasses import dataclass
from time import perf_counter
from typing import Callable

from ..errors import QSSError
from ..obs.events import emit_event
from ..obs.metrics import registry as metrics_registry
from ..obs.trace import span
from ..timestamps import Timestamp, parse_timestamp
from .managers import DOEMManager, QueryManager, SubscriptionManager, SubscriptionState
from .subscription import Notification, Subscription
from .wrapper import Wrapper

__all__ = ["QSSServer", "SlowPollRecord", "PollTimeout"]


class PollTimeout(QSSError):
    """A source poll exceeded the server's ``poll_timeout`` budget.

    Recorded in ``error_log`` (never raised through ``run_until``): a
    timeout is a deadline policy protecting the polling cycle, not a
    defect in the subscription, so the schedule advances and the other
    subscriptions in the batch are notified normally.
    """


@dataclass(frozen=True)
class SlowPollRecord:
    """One slow-query-log entry: a poll that exceeded the threshold."""

    polling_time: Timestamp
    subscription: str
    seconds: float

    def __str__(self) -> str:
        return (f"[{self.polling_time}] SLOW {self.subscription}: "
                f"{self.seconds * 1000:.3f} ms")


class QSSServer:
    """The Query Subscription Service server.

    ``start`` sets the simulated clock's origin.  Wrappers are registered
    by name; clients attach via :class:`~repro.qss.client.QSC` (or any
    callable taking a :class:`~repro.qss.subscription.Notification`).

    ``deliver_empty`` controls whether polls whose filter query returns
    nothing still produce a (empty) notification -- the paper's QSS stays
    silent, the default here too; tests flip it to observe every poll.

    ``store`` (a :class:`~repro.store.ChangeLogStore` or a path) makes
    the subscription histories durable: every incorporated change set is
    appended to the store's change log, and a server restarted over the
    same store rebuilds each subscription's DOEM from disk instead of
    re-polling its sources (see :class:`~repro.qss.managers.DOEMManager`).

    Observability: every poll is wall-timed (``qss.poll_seconds``
    histogram; ``qss.polls`` / ``qss.notifications`` / ``qss.errors``
    counters in the global metrics registry) and, when tracing is
    enabled, produces a ``qss.poll`` span with per-phase children.
    ``slow_poll_threshold`` (seconds) turns on the slow-query log: polls
    at or above the threshold are appended to ``slow_poll_log`` and
    counted in ``qss.slow_polls``; when ``None`` (the default) the
    ``REPRO_SLOW_QUERY_MS`` env var supplies the threshold -- the same
    variable that drives the obs query log's slow-query capture -- and
    when that too is unset the log stays off.
    :meth:`metrics_text` serves the registry as a ``/metrics``-style
    text dump.

    Concurrency: with ``max_poll_workers > 1``, polls that fall due at
    the same simulated timestamp are fanned out to a bounded worker pool
    (metrics family ``qss.pool``).  Only the *source* phase (wrapper
    advance + polling query) runs on workers, serialized per wrapper by a
    lock; incorporation, filter evaluation, packaging, and notification
    delivery stay on the calling thread in ``(time, name)`` order, so
    notification order and DOEM contents are identical to the serial
    loop.  ``poll_timeout`` (seconds; ``None`` disables) bounds each
    batch's source phase: a subscription whose source poll has not
    finished by the deadline is recorded in ``error_log`` as a
    :class:`PollTimeout` (counter ``qss.timeouts``), its schedule
    advances, and the rest of the batch is notified normally -- one
    hung or crashing subscription cannot stall the cycle.  A timed-out
    poll's worker may linger until the source returns; it only touches
    the wrapper (under the wrapper lock) and its result is discarded,
    and while it lingers the subscription's subsequent polls are skipped
    (also as timeouts) rather than stacking more zombies onto the pool.
    """

    def __init__(self, start: object = "1Dec96",
                 cache_previous_result: bool = True,
                 deliver_empty: bool = False,
                 share_by_polling_query: bool = False,
                 on_error: str = "raise",
                 compact_keep_polls: int | None = None,
                 slow_poll_threshold: float | None = None,
                 max_poll_workers: int = 1,
                 poll_timeout: float | None = None,
                 store=None) -> None:
        if on_error not in ("raise", "skip"):
            raise QSSError("on_error must be 'raise' or 'skip'")
        if slow_poll_threshold is not None and slow_poll_threshold < 0:
            raise QSSError("slow_poll_threshold must be >= 0 (seconds)")
        if compact_keep_polls is not None and compact_keep_polls < 1:
            raise QSSError("compact_keep_polls must be >= 1")
        if compact_keep_polls is not None and share_by_polling_query:
            raise QSSError("automatic compaction and DOEM sharing cannot "
                           "combine; compact shared DOEMs explicitly")
        if max_poll_workers < 1:
            raise QSSError("max_poll_workers must be >= 1")
        if poll_timeout is not None and poll_timeout <= 0:
            raise QSSError("poll_timeout must be > 0 (seconds)")
        if poll_timeout is not None and max_poll_workers == 1:
            raise QSSError("poll_timeout needs max_poll_workers > 1 "
                           "(the serial loop cannot abandon a poll)")
        self.clock: Timestamp = parse_timestamp(start)
        if store is not None and not hasattr(store, "log"):
            # A path: open (or join) the process-shared store handle.
            from ..store import open_store
            store = open_store(store, "rw")
        self.store = store
        self.subscriptions = SubscriptionManager()
        self.queries = QueryManager()
        self.doems = DOEMManager(cache_previous_result=cache_previous_result,
                                 store=store)
        self.deliver_empty = deliver_empty
        self.share_by_polling_query = share_by_polling_query
        self.on_error = on_error
        self.compact_keep_polls = compact_keep_polls
        if slow_poll_threshold is None:
            # One threshold drives every slow-query surface: without an
            # explicit override, fall back to REPRO_SLOW_QUERY_MS (the
            # same env var the obs query log's slow capture honors).
            from ..obs.querylog import slow_query_threshold_seconds
            slow_poll_threshold = slow_query_threshold_seconds()
        self.slow_poll_threshold = slow_poll_threshold
        self.max_poll_workers = max_poll_workers
        self.poll_timeout = poll_timeout
        self._subscribers: dict[str, list[Callable[[Notification], None]]] = {}
        self.notification_log: list[Notification] = []
        self.error_log: list[tuple[Timestamp, str, Exception]] = []
        self.slow_poll_log: list[SlowPollRecord] = []
        self._metrics = metrics_registry().group(
            "qss", ("polls", "notifications", "slow_polls", "errors",
                    "timeouts"),
            histograms=("poll_seconds",))
        self._poll_pool = None
        self._wrapper_locks: dict[str, threading.Lock] = {}
        self._locks_guard = threading.Lock()
        # name -> the Future of a timed-out poll that may still be running.
        self._inflight: dict[str, object] = {}
        # name -> health record (consecutive failure streaks + last
        # delivery), the state behind health() and the qss.sub.* gauges.
        self._health: dict[str, dict] = {}

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------

    def register_wrapper(self, name: str, wrapper: Wrapper) -> None:
        """Expose a wrapper (a source) to subscriptions under ``name``."""
        self.queries.register_wrapper(name, wrapper)

    def subscribe(self, subscription: Subscription, wrapper_name: str,
                  deliver: Callable[[Notification], None] | None = None
                  ) -> SubscriptionState:
        """Create a subscription against a registered wrapper.

        The first poll is scheduled by the frequency specification,
        starting from the current simulated clock.
        """
        self.queries.wrapper(wrapper_name)  # validate early
        state = self.subscriptions.add(subscription, wrapper_name, self.clock)
        if self.share_by_polling_query:
            # Section 6.1's first space idea: subscriptions with the same
            # polling query (against the same wrapper) share one DOEM.
            key = f"{wrapper_name}::{subscription.polling_query}"
            self.doems.set_alias(subscription.name, key)
        if deliver is not None:
            self._subscribers.setdefault(subscription.name, []).append(deliver)
        return state

    def unsubscribe(self, name: str) -> None:
        """Cancel a subscription and drop its DOEM state."""
        self.subscriptions.remove(name)
        self.doems.drop(name)
        self._subscribers.pop(name, None)

    # ------------------------------------------------------------------
    # The polling loop
    # ------------------------------------------------------------------

    def run_until(self, when: object) -> list[Notification]:
        """Advance the simulated clock, executing every due poll in order.

        Returns the notifications produced (also appended to
        ``notification_log`` and pushed to per-subscription callbacks).
        """
        deadline = parse_timestamp(when)
        if deadline < self.clock:
            raise QSSError(
                f"cannot run the clock backwards ({deadline} < {self.clock})")
        produced: list[Notification] = []

        while True:
            due: list[tuple[Timestamp, SubscriptionState]] = [
                (state.next_poll, state)
                for state in self.subscriptions.states()
                if state.next_poll is not None and state.next_poll <= deadline]
            if not due:
                break
            due.sort(key=lambda entry: (entry[0], entry[1].subscription.name))
            if self.max_poll_workers > 1:
                # All polls due at the earliest timestamp form one batch.
                poll_time = due[0][0]
                batch = [state for when_due, state in due
                         if when_due == poll_time]
                produced.extend(self._execute_poll_batch(batch, poll_time))
                continue
            poll_time, state = due[0]
            try:
                notification = self._execute_poll(state, poll_time)
            except Exception as error:
                self._record_poll_failure(state, poll_time, error)
                continue
            if notification is not None:
                produced.append(notification)

        self.clock = deadline
        return produced

    def _record_poll_failure(self, state: SubscriptionState,
                             poll_time: Timestamp,
                             error: Exception) -> None:
        """Count, log (or re-raise), and reschedule a failed poll.

        A failed poll must not wedge the server: log it, keep the
        schedule moving (the poll still "happened"), and leave the DOEM
        database untouched for the next attempt.  Timeouts never
        re-raise -- they are deadline policy, not subscription defects.
        """
        self._metrics["errors"].inc()
        name = state.subscription.name
        record = self._sub_health(name)
        if isinstance(error, PollTimeout):
            self._metrics["timeouts"].inc()
            record["consecutive_timeouts"] += 1
            metrics_registry().gauge(
                f"qss.sub.{name}.consecutive_timeouts").set(
                    record["consecutive_timeouts"])
            emit_event("poll_timeout", level="warning", subscription=name,
                       at=str(poll_time),
                       consecutive=record["consecutive_timeouts"],
                       detail=str(error))
        else:
            record["consecutive_errors"] += 1
            if self.on_error == "raise":
                raise error
        self.error_log.append((poll_time, name, error))
        if not state.polling_times or state.polling_times[-1] != poll_time:
            self.subscriptions.record_poll(state, poll_time)

    def _execute_poll_batch(self, batch: list[SubscriptionState],
                            poll_time: Timestamp) -> list[Notification]:
        """Poll one batch concurrently; finish serially in name order.

        Workers run only the source phase (:meth:`_poll_source`); each
        result is then incorporated/filtered/packaged on this thread in
        the batch's (name-sorted) order, so everything downstream of the
        source is byte-identical to the serial loop.
        """
        pool = self._pool()
        futures = {}
        for state in batch:
            name = state.subscription.name
            lingering = self._inflight.get(name)
            if lingering is not None:
                if not lingering.done():
                    # A previous timed-out poll is still occupying a
                    # worker; submitting another would just stack zombies
                    # until they exhaust the pool and starve healthy
                    # subscriptions.  Skip this round instead.
                    self._record_poll_failure(state, poll_time, PollTimeout(
                        f"poll of {name!r} at {poll_time} skipped: a "
                        f"previous timed-out poll is still in flight"))
                    continue
                del self._inflight[name]
            futures[name] = pool.submit(self._poll_source_timed,
                                        state, poll_time)
        done, not_done = futures_wait(list(futures.values()),
                                      timeout=self.poll_timeout) \
            if futures else (set(), set())
        produced: list[Notification] = []
        for state in batch:
            future = futures.get(state.subscription.name)
            if future is None:
                continue  # skipped above: still in flight
            if future in not_done:
                future.cancel()
                self._inflight[state.subscription.name] = future
                self._record_poll_failure(state, poll_time, PollTimeout(
                    f"poll of {state.subscription.name!r} at {poll_time} "
                    f"exceeded {self.poll_timeout:g}s"))
                continue
            try:
                result, source_seconds = future.result()
                with span("qss.poll", subscription=state.subscription.name,
                          at=str(poll_time)):
                    notification = self._finish_poll(state, poll_time,
                                                     result, source_seconds)
            except Exception as error:
                self._record_poll_failure(state, poll_time, error)
                continue
            if notification is not None:
                produced.append(notification)
        return produced

    # ------------------------------------------------------------------
    # The paper's two other snapshot modes (Section 6): explicit user
    # requests, and source-side trigger signals.
    # ------------------------------------------------------------------

    def poll_now(self, name: str) -> Notification | None:
        """Poll one subscription immediately, at the current clock.

        The paper's second mode: "snapshots are obtained following
        explicit user requests."  The on-demand poll joins the polling
        timeline (it becomes ``t[0]``; the scheduled cadence continues
        from it), so filter-query lookbacks stay consistent.  The clock
        must have advanced past the last poll.
        """
        state = self.subscriptions.get(name)
        if state.polling_times and self.clock <= state.polling_times[-1]:
            raise QSSError(
                f"cannot poll {name!r} at {self.clock}: a poll at "
                f"{state.polling_times[-1]} already happened")
        return self._execute_poll(state, self.clock)

    def on_source_signal(self, wrapper_name: str) -> list[Notification]:
        """React to a source-side trigger firing (the paper's third mode).

        "Snapshots are obtained as a result of a trigger on the source
        database firing, if the source provides such a triggering
        mechanism."  Every subscription polling through ``wrapper_name``
        is refreshed immediately at the current clock; subscriptions
        whose latest poll is not in the past are skipped (they are
        already up to date).
        """
        self.queries.wrapper(wrapper_name)  # validate
        produced: list[Notification] = []
        for state in self.subscriptions.states():
            if state.wrapper_name != wrapper_name:
                continue
            if state.polling_times and self.clock <= state.polling_times[-1]:
                continue
            notification = self._execute_poll(state, self.clock)
            if notification is not None:
                produced.append(notification)
        return produced

    def _execute_poll(self, state: SubscriptionState,
                      poll_time: Timestamp) -> Notification | None:
        subscription = state.subscription
        with span("qss.poll", subscription=subscription.name,
                  at=str(poll_time)):
            started = perf_counter()
            with span("qss.poll.source"):
                result = self._poll_source(state, poll_time)
            source_seconds = perf_counter() - started
            return self._finish_poll(state, poll_time, result, source_seconds)

    def _poll_source(self, state: SubscriptionState,
                     poll_time: Timestamp) -> "OEMDatabase":
        """The source phase: advance the wrapper and run the polling query.

        Serialized per wrapper, so concurrent batch polls (and serial
        polls racing a lingering timed-out worker) never interleave on
        one source.  Polls of the same wrapper at the same simulated
        timestamp commute: the second ``advance`` to an already-reached
        time is a no-op and polling queries are read-only.
        """
        with self._wrapper_lock(state.wrapper_name):
            return self.queries.poll(state, poll_time)

    def _poll_source_timed(self, state: SubscriptionState,
                           poll_time: Timestamp):
        """Worker-side wrapper of :meth:`_poll_source` (batch path)."""
        started = perf_counter()
        with span("qss.poll.source", subscription=state.subscription.name,
                  at=str(poll_time)):
            result = self._poll_source(state, poll_time)
        return result, perf_counter() - started

    def _finish_poll(self, state: SubscriptionState, poll_time: Timestamp,
                     result: "OEMDatabase",
                     source_seconds: float) -> Notification | None:
        """Everything after the source returns: incorporate, filter,
        package, compact, account, deliver.  Always runs on the thread
        driving the polling loop, in deterministic poll order."""
        subscription = state.subscription
        started = perf_counter()
        with span("qss.poll.incorporate"):
            self.doems.incorporate(subscription.name, poll_time, result)
        self.subscriptions.record_poll(state, poll_time)

        engine = self.doems.filter_engine(state)
        # Tag the filter run so the obs query log can attribute its
        # fingerprint to this subscription (runs on the coordinator
        # thread, so the thread-local attribution holds).
        from ..obs.querylog import query_attribution
        with span("qss.filter"), \
                query_attribution(subscription=subscription.name,
                                  poll_time=str(poll_time)):
            filtered = engine.run(subscription.filter_query)
        with span("qss.package"):
            answer = self._package(subscription.name, filtered)

        if self.compact_keep_polls is not None and \
                state.poll_count > self.compact_keep_polls:
            # Section 6.1 retention policy: keep the last N polling
            # intervals of history; everything older collapses into
            # the new original snapshot.  Cutoff = the (N+1)-th most
            # recent poll, so t[-N] filter lookbacks still work.
            cutoff = state.polling_times[-(self.compact_keep_polls + 1)]
            with span("qss.compact"):
                self.doems.compact_before(subscription.name, cutoff)
        elapsed = source_seconds + (perf_counter() - started)
        self._metrics["polls"].inc()
        self._metrics.histogram("poll_seconds").observe(elapsed)
        record = self._sub_health(subscription.name)
        record["consecutive_timeouts"] = 0
        record["consecutive_errors"] = 0
        metrics_registry().gauge(
            f"qss.sub.{subscription.name}.consecutive_timeouts").set(0)
        if self.slow_poll_threshold is not None and \
                elapsed >= self.slow_poll_threshold:
            self._metrics["slow_polls"].inc()
            self.slow_poll_log.append(SlowPollRecord(
                polling_time=poll_time, subscription=subscription.name,
                seconds=elapsed))
            emit_event("slow_poll", level="warning",
                       subscription=subscription.name, at=str(poll_time),
                       seconds=round(elapsed, 6),
                       threshold=self.slow_poll_threshold)
        notification = Notification(
            subscription=subscription.name,
            polling_time=poll_time,
            poll_index=state.poll_count,
            result=filtered,
            answer=answer,
            elapsed=elapsed,
        )
        if filtered or self.deliver_empty:
            self._metrics["notifications"].inc()
            record["last_notification"] = poll_time
            self.notification_log.append(notification)
            for deliver in self._subscribers.get(subscription.name, ()):
                deliver(notification)
            return notification
        return None

    # ------------------------------------------------------------------
    # Concurrency plumbing
    # ------------------------------------------------------------------

    def _pool(self):
        """The lazy poll pool (``qss.pool`` metrics family)."""
        if self._poll_pool is None:
            from ..parallel.pool import WorkerPool
            self._poll_pool = WorkerPool(self.max_poll_workers,
                                         metrics_prefix="qss.pool",
                                         thread_name_prefix="qss-poll")
        return self._poll_pool

    def _wrapper_lock(self, wrapper_name: str) -> threading.Lock:
        with self._locks_guard:
            lock = self._wrapper_locks.get(wrapper_name)
            if lock is None:
                lock = self._wrapper_locks[wrapper_name] = threading.Lock()
            return lock

    @property
    def poll_pool(self):
        """The poll :class:`~repro.parallel.pool.WorkerPool`, if created."""
        return self._poll_pool

    def close(self) -> None:
        """Release the poll pool (no-op for a serial server).

        Does not wait for lingering timed-out polls -- a source that
        never returns must not be able to hang shutdown either.  An
        attached store is flushed but left open: the handle is process
        shared (``repro explain --store`` against the same path reads
        through it), so the last owner closes it via
        :func:`repro.store.close_store`.
        """
        if self._poll_pool is not None:
            self._poll_pool.shutdown(wait=False, cancel_pending=True)
            self._poll_pool = None
        if self.store is not None and not self.store.closed:
            self.store.flush()

    def __enter__(self) -> "QSSServer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------

    def metrics_text(self, prefix: str | None = None) -> str:
        """A ``/metrics``-style text dump of the global registry.

        Includes this server's ``qss.*`` series plus every ``repro.*``
        family (index hit rates, snapshot-cache activity, diff volume).
        ``prefix`` narrows the dump (e.g. ``"qss"``).
        """
        return metrics_registry().render_text(prefix)

    def _sub_health(self, name: str) -> dict:
        record = self._health.get(name)
        if record is None:
            record = self._health[name] = {
                "consecutive_timeouts": 0,
                "consecutive_errors": 0,
                "last_notification": None,
            }
        return record

    def health(self, *, degraded_after: int = 1,
               unhealthy_after: int = 3) -> dict:
        """A structured liveness snapshot of every subscription.

        Per subscription: ``poll_lag_seconds`` (how far behind schedule
        the next poll is, in simulated seconds -- 0 when on time),
        ``notification_age_seconds`` (simulated seconds since the last
        delivered notification, ``None`` if never), and the consecutive
        timeout/error streaks.  A subscription is ``unhealthy`` once its
        timeout streak reaches ``unhealthy_after``, ``degraded`` when
        either streak reaches ``degraded_after``; the server's ``status``
        is the worst subscription's.  Refreshing the snapshot also
        refreshes the ``qss.sub.<name>.*`` gauges, so a ``/metrics``
        scrape taken after ``/health`` reflects the same picture.
        """
        reg = metrics_registry()
        order = {"healthy": 0, "degraded": 1, "unhealthy": 2}
        worst = "healthy"
        subscriptions: dict[str, dict] = {}
        for state in self.subscriptions.states():
            name = state.subscription.name
            record = self._sub_health(name)
            lag = 0.0
            if state.next_poll is not None and state.next_poll < self.clock:
                lag = self.clock - state.next_poll
            age = None
            if record["last_notification"] is not None:
                age = self.clock - record["last_notification"]
            timeouts = record["consecutive_timeouts"]
            errors = record["consecutive_errors"]
            if timeouts >= unhealthy_after:
                status = "unhealthy"
            elif timeouts >= degraded_after or errors >= degraded_after:
                status = "degraded"
            else:
                status = "healthy"
            if order[status] > order[worst]:
                worst = status
            reg.gauge(f"qss.sub.{name}.poll_lag_seconds").set(lag)
            reg.gauge(f"qss.sub.{name}.consecutive_timeouts").set(timeouts)
            if age is not None:
                reg.gauge(f"qss.sub.{name}.notification_age_seconds").set(age)
            subscriptions[name] = {
                "status": status,
                "poll_lag_seconds": lag,
                "notification_age_seconds": age,
                "consecutive_timeouts": timeouts,
                "consecutive_errors": errors,
                "last_poll": str(state.polling_times[-1])
                if state.polling_times else None,
                "next_poll": str(state.next_poll)
                if state.next_poll is not None else None,
            }
        return {
            "status": worst,
            "clock": str(self.clock),
            "subscriptions": subscriptions,
            "polls": self._metrics["polls"].value,
            "notifications": self._metrics["notifications"].value,
            "errors": self._metrics["errors"].value,
            "timeouts": self._metrics["timeouts"].value,
        }

    def _package(self, name: str, filtered) -> "OEMDatabase":
        """Package a filter result as a notification OEM database.

        Results are copied out of the subscription DOEM's *current
        snapshot*; selected objects that are no longer live (e.g. targets
        of removed arcs) are included as value-only nodes so the
        notification is still self-contained.
        """
        from ..doem.snapshot import current_snapshot
        from ..lorel.result import ObjectRef

        doem = self.doems.doem(name)
        snapshot = current_snapshot(doem)
        for row in filtered:
            for _, value in row.items:
                if isinstance(value, ObjectRef) and \
                        not snapshot.has_node(value.node):
                    node_value = doem.graph.value(value.node)
                    snapshot.create_node(value.node, node_value)
        return filtered.as_oem(snapshot, root="notification")
