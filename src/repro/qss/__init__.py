"""QSS: the Query Subscription Service (Section 6).

A subscription ``S = (f, Ql, Qc)`` consists of a frequency specification
``f`` (when to poll), a Lorel *polling query* ``Ql`` (what to fetch from
the source), and a Chorel *filter query* ``Qc`` (which data and changes to
report).  At every polling time the server queries the source through a
Tsimmis-style wrapper, diffs the new result against the previous one,
folds the changes into the subscription's DOEM database, evaluates the
filter query (with the special time variables ``t[0]``, ``t[-1]``, ...),
and notifies the client.

The module layout follows Figure 7:

* :mod:`~repro.qss.frequency` -- frequency specifications;
* :mod:`~repro.qss.wrapper` -- the wrapper/mediator interface to sources;
* :mod:`~repro.qss.subscription` -- subscriptions and notifications;
* :mod:`~repro.qss.managers` -- Subscription/Query/DOEM managers and the
  Chorel engine wiring;
* :mod:`~repro.qss.server` / :mod:`~repro.qss.client` -- the QSS server
  loop (simulated clock) and the QSC client.
"""

from .frequency import FrequencySpec
from .subscription import Notification, Subscription
from .wrapper import Wrapper
from .managers import DOEMManager, QueryManager, SubscriptionManager
from .server import PollTimeout, QSSServer, SlowPollRecord
from .client import QSC

__all__ = ["FrequencySpec", "Subscription", "Notification", "Wrapper",
           "SubscriptionManager", "QueryManager", "DOEMManager",
           "QSSServer", "SlowPollRecord", "PollTimeout", "QSC"]
