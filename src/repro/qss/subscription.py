"""Subscriptions and notifications.

A subscription ``S = (f, Ql, Qc)`` (Section 6): a frequency
specification, a Lorel polling query, and a Chorel filter query over the
DOEM database QSS maintains for the subscription.  The filter query may
use the special time variables ``t[0]`` (the current polling time),
``t[-1]`` (the previous one), and so on; ``t[-i]`` is negative infinity
when fewer than ``i+1`` polls have happened.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from ..errors import SubscriptionError
from ..lorel.ast import Definition, Query
from ..lorel.parser import parse_definition, parse_query
from ..lorel.result import QueryResult
from ..oem.model import OEMDatabase
from ..timestamps import NEG_INF, Timestamp
from .frequency import FrequencySpec

__all__ = ["Subscription", "Notification", "polling_time_mapping"]

_MAX_LOOKBACK = 64


@dataclass(frozen=True)
class Notification:
    """One delivery to a subscriber: the filter-query result at a poll.

    ``elapsed`` is the server-side wall time (seconds) spent executing
    the poll that produced this notification -- source query, diff
    incorporation, and filter evaluation included -- so clients can see
    per-subscription evaluation cost without scraping server metrics.
    """

    subscription: str
    polling_time: Timestamp
    poll_index: int
    result: QueryResult
    answer: OEMDatabase
    elapsed: float | None = None

    def __bool__(self) -> bool:
        return bool(self.result)

    def __str__(self) -> str:
        body = str(self.result) if self.result else "(no changes of interest)"
        return f"[{self.polling_time}] {self.subscription}: {body}"


@dataclass
class Subscription:
    """One subscription: name, frequency, polling query, filter query.

    ``polling_query`` is plain Lorel; ``filter_query`` is Chorel and is
    evaluated against the DOEM database named after the polling query
    (``Restaurants.restaurant<cre at T>`` in Example 6.1).  Both may be
    given as text or pre-parsed ASTs.  ``polling_name`` names the DOEM
    database; it defaults to the subscription name.
    """

    name: str
    frequency: FrequencySpec | str
    polling_query: Query | str
    filter_query: Query | str
    polling_name: str | None = None
    user: str = "local"

    def __post_init__(self) -> None:
        if isinstance(self.frequency, str):
            self.frequency = FrequencySpec.parse(self.frequency)
        if isinstance(self.polling_query, str):
            self.polling_query = parse_query(self.polling_query,
                                             allow_annotations=False)
        if isinstance(self.filter_query, str):
            self.filter_query = parse_query(self.filter_query,
                                            allow_annotations=True)
        if self.polling_name is None:
            self.polling_name = self.name

    @classmethod
    def from_definitions(cls, name: str, frequency: str,
                         polling: str, filter_: str,
                         user: str = "local") -> "Subscription":
        """Build a subscription from ``define ... query`` statements.

        ``polling`` must be a ``define polling query N as ...`` statement
        and ``filter_`` a ``define filter query M as ...`` statement; the
        filter query refers to the DOEM database by the *polling* query's
        name ``N`` (Section 6's convention).
        """
        polling_def = parse_definition(polling, allow_annotations=False)
        filter_def = parse_definition(filter_, allow_annotations=True)
        if polling_def.kind != "polling":
            raise SubscriptionError(
                f"{polling_def.name!r} is not a polling query definition")
        if filter_def.kind != "filter":
            raise SubscriptionError(
                f"{filter_def.name!r} is not a filter query definition")
        return cls(name=name, frequency=frequency,
                   polling_query=polling_def.query,
                   filter_query=filter_def.query,
                   polling_name=polling_def.name, user=user)


def polling_time_mapping(times: list[Timestamp]) -> dict[int, Timestamp]:
    """The ``t[i]`` mapping after the polls in ``times`` have happened.

    ``t[0]`` is the latest poll, ``t[-i]`` the i-th previous one;
    indices reaching before the first poll map to negative infinity
    ("we define t[-i] to be t_{k-i} if i < k, and negative infinity
    otherwise", Section 6).
    """
    mapping: dict[int, Timestamp] = {}
    k = len(times)
    for back in range(0, _MAX_LOOKBACK):
        index = k - 1 - back
        mapping[-back] = times[index] if index >= 0 else NEG_INF
    return mapping
