"""Token definitions shared by the Lorel and Chorel front ends."""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = ["TokenKind", "Token", "KEYWORDS"]


class TokenKind(enum.Enum):
    """Lexical token categories."""

    IDENT = "ident"            # labels, variables, database names
    AMP_IDENT = "amp_ident"    # &val, &price-history -- encoding labels
    KEYWORD = "keyword"        # select, from, where, ...
    INT = "int"
    REAL = "real"
    STRING = "string"
    TIMESTAMP = "timestamp"    # 1Jan97, 1997-01-05, ...
    TIMEVAR = "timevar"        # t[0], t[-1], ... (QSS filter queries)
    OP = "op"                  # = != <> <= >= < >
    DOT = "dot"
    COMMA = "comma"
    COLON = "colon"
    LPAREN = "lparen"
    RPAREN = "rparen"
    LBRACKET = "lbracket"      # [ opening a time range [t1..t2]
    RBRACKET = "rbracket"      # ] closing a time range
    LANGLE = "langle"          # < opening an annotation expression
    RANGLE = "rangle"          # > closing an annotation expression
    HASH = "hash"              # the path wildcard #
    EOF = "eof"


KEYWORDS = frozenset({
    "select", "from", "where", "and", "or", "not", "like", "exists", "in",
    "as", "define", "polling", "filter", "query", "true", "false",
    # annotation keywords (contextual -- also legal as labels):
    "cre", "upd", "add", "rem", "at", "to",
})
"""Reserved words.  The annotation keywords are contextual: they act as
keywords only inside ``<...>`` annotation expressions and remain usable as
arc labels elsewhere."""


@dataclass(frozen=True)
class Token:
    """One lexical token with its source offset (for error messages)."""

    kind: TokenKind
    text: str
    value: object
    position: int

    def is_keyword(self, word: str) -> bool:
        """True when this token is the given (case-insensitive) keyword."""
        return self.kind is TokenKind.KEYWORD and self.text.lower() == word

    def __repr__(self) -> str:
        return f"Token({self.kind.name}, {self.text!r})"
