"""Data views: the evaluator's window onto OEM and DOEM databases.

One Lorel/Chorel evaluator (:mod:`repro.lorel.eval`) serves three
configurations, exactly mirroring the paper's implementation choices:

* :class:`OEMView` -- plain Lorel over an OEM database (annotation
  functions are empty);
* :class:`DOEMView` -- the *native* Chorel engine over a DOEM database:
  plain label steps see the **current snapshot** ("a standard Lorel query
  over a DOEM database has exactly the semantics of the same query asked
  over the current snapshot", Section 4.2.1) and annotation expressions
  are served by ``creFun``/``updFun``/``addFun``/``remFun``;
* an :class:`OEMView` over the **OEM encoding** of a DOEM database -- the
  translation-based backend of Section 5.

Views also resolve *database names*: the start of a root path expression
(``guide``, or a QSS polling-query name such as ``LyttonRestaurants``)
maps to an entry-point node.
"""

from __future__ import annotations

from typing import Iterator

from ..doem.model import DOEMDatabase
from ..obs.metrics import CounterField, registry as metrics_registry
from ..oem.model import OEMDatabase
from ..oem.values import like
from ..timestamps import POS_INF, Timestamp

__all__ = ["DataView", "OEMView", "DOEMView"]


class DataView:
    """The evaluator-facing interface; concrete views override the hooks."""

    def __init__(self, names: dict[str, str]) -> None:
        self._names = dict(names)

    # -- names -----------------------------------------------------------

    def resolve_name(self, name: str) -> str | None:
        """Map a database name to its entry-point node id (or None)."""
        return self._names.get(name)

    def names(self) -> dict[str, str]:
        """All registered database names."""
        return dict(self._names)

    # -- structure (current snapshot) --------------------------------------

    def children(self, node: str, label: str) -> Iterator[str]:
        """Children via live ``label`` arcs in the current snapshot."""
        raise NotImplementedError

    def labels(self, node: str) -> Iterator[str]:
        """Distinct labels of live arcs leaving ``node``."""
        raise NotImplementedError

    def all_labels(self, node: str) -> Iterator[str]:
        """Labels including arcs no longer live (DOEM overrides this).

        Annotated steps (``<add>``, ``<rem>``) must see labels of removed
        arcs too; plain steps only see :meth:`labels`.
        """
        return self.labels(node)

    def matching_labels(self, node: str, pattern: str,
                        include_dead: bool = False) -> Iterator[str]:
        """Labels matching a ``%``-pattern (helper shared by all views)."""
        source = self.all_labels(node) if include_dead else self.labels(node)
        for label in source:
            # '&'-prefixed labels are reserved by the DOEM encoding
            # (Section 5.1); user patterns never match them implicitly.
            if label.startswith("&") and not pattern.startswith("&"):
                continue
            if like(label, pattern):
                yield label

    def value(self, node: str) -> object:
        """The node's current value (atomic value or COMPLEX)."""
        raise NotImplementedError

    def has_node(self, node: str) -> bool:
        """Does the node exist in the underlying database?"""
        raise NotImplementedError

    # -- annotations (Section 4.2.1's four functions) ----------------------

    def cre_fun(self, node: str) -> list[Timestamp]:
        """``creFun(node) -> {time}``; empty for plain OEM."""
        return []

    def upd_fun(self, node: str) -> list[tuple[Timestamp, object, object]]:
        """``updFun(node) -> {(time, old, new)}``; empty for plain OEM."""
        return []

    def add_fun(self, node: str, label: str) -> list[tuple[Timestamp, str]]:
        """``addFun(source, label) -> {(time, target)}``; empty for OEM."""
        return []

    def rem_fun(self, node: str, label: str) -> list[tuple[Timestamp, str]]:
        """``remFun(source, label) -> {(time, target)}``; empty for OEM."""
        return []

    # -- virtual annotations (Section 4.2.2) ------------------------------

    def children_at(self, node: str, label: str,
                    when: Timestamp) -> Iterator[str]:
        """Children via arcs live at time ``when`` (virtual ``<at T>``)."""
        raise NotImplementedError

    def value_at(self, node: str, when: Timestamp) -> object:
        """The node's value at time ``when`` (virtual ``<at T>``)."""
        raise NotImplementedError


class OEMView(DataView):
    """A view over a plain OEM database (no change information)."""

    def __init__(self, db: OEMDatabase, names: dict[str, str] | None = None) -> None:
        if names is None:
            names = {db.root: db.root}
        super().__init__(names)
        self.db = db

    def children(self, node: str, label: str) -> Iterator[str]:
        return self.db.children(node, label)

    def labels(self, node: str) -> Iterator[str]:
        return self.db.out_labels(node)

    def value(self, node: str) -> object:
        return self.db.value(node)

    def has_node(self, node: str) -> bool:
        return self.db.has_node(node)

    def children_at(self, node: str, label: str,
                    when: Timestamp) -> Iterator[str]:
        # A plain OEM database has no history: every time is "now".
        return self.db.children(node, label)

    def value_at(self, node: str, when: Timestamp) -> object:
        return self.db.value(node)


class DOEMView(DataView):
    """The native Chorel view over a DOEM database.

    ``annotation_visits`` counts annotations handed to the evaluator by
    the four annotation functions -- the work an annotation index avoids.
    The index-ablation benchmark compares this counter between the naive
    and indexed engines.  The counter is registered in the global metrics
    registry (family ``repro.view``); the attribute stays a plain int
    view, writable as before.
    """

    annotation_visits = CounterField()

    def __init__(self, doem: DOEMDatabase,
                 names: dict[str, str] | None = None) -> None:
        if names is None:
            names = {doem.graph.root: doem.graph.root}
        super().__init__(names)
        self.doem = doem
        self._metrics = metrics_registry().group("repro.view",
                                                 ("annotation_visits",))

    def __getstate__(self) -> dict:
        # The metrics group holds locked counters and must stay
        # per-process anyway; a process-pool worker re-registers its own
        # replica on unpickle (its visits then count in that process's
        # registry, not the coordinator's).
        state = dict(self.__dict__)
        del state["_metrics"]
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._metrics = metrics_registry().group("repro.view",
                                                 ("annotation_visits",))

    def children(self, node: str, label: str) -> Iterator[str]:
        for _, child in self.doem.live_children(node, POS_INF, label):
            yield child

    def labels(self, node: str) -> Iterator[str]:
        seen: set[str] = set()
        for label, _ in self.doem.live_children(node, POS_INF):
            if label not in seen:
                seen.add(label)
                yield label

    def all_labels(self, node: str) -> Iterator[str]:
        return self.doem.graph.out_labels(node)

    def value(self, node: str) -> object:
        return self.doem.graph.value(node)

    def has_node(self, node: str) -> bool:
        return self.doem.graph.has_node(node)

    def cre_fun(self, node: str) -> list[Timestamp]:
        times = self.doem.cre_times(node)
        # Atomic inc: evaluator workers of the parallel executor share
        # this view, and `+= n` through the descriptor is a racy RMW.
        self._metrics["annotation_visits"].inc(len(times))
        return times

    def upd_fun(self, node: str) -> list[tuple[Timestamp, object, object]]:
        triples = self.doem.upd_triples(node)
        self._metrics["annotation_visits"].inc(len(triples))
        return triples

    def add_fun(self, node: str, label: str) -> list[tuple[Timestamp, str]]:
        pairs = self.doem.add_pairs(node, label)
        self._metrics["annotation_visits"].inc(len(pairs))
        return pairs

    def rem_fun(self, node: str, label: str) -> list[tuple[Timestamp, str]]:
        pairs = self.doem.rem_pairs(node, label)
        self._metrics["annotation_visits"].inc(len(pairs))
        return pairs

    def children_at(self, node: str, label: str,
                    when: Timestamp) -> Iterator[str]:
        for _, child in self.doem.live_children(node, when, label):
            yield child

    def value_at(self, node: str, when: Timestamp) -> object:
        return self.doem.value_at(node, when)
