"""Pretty-printing queries back to concrete syntax.

The AST classes render themselves via ``__str__``; this module adds a
multi-line formatter used when showing translated queries (Example 5.1
prints the Lorel translation of a Chorel query) and guarantees the
round-trip property ``parse(format(q)) == parse(str(q))`` that the
translation tests rely on.
"""

from __future__ import annotations

from .ast import Query

__all__ = ["format_query"]


def format_query(query: Query) -> str:
    """Render ``query`` with one clause per line (re-parseable)."""
    lines = ["select " + ", ".join(str(item) for item in query.select)]
    if query.from_items:
        lines.append("from " + ",\n     ".join(str(item)
                                               for item in query.from_items))
    if query.where is not None:
        lines.append(f"where {query.where}")
    return "\n".join(lines)
