"""The Lorel engine: parse + evaluate plain Lorel over an OEM database.

This is the library's stand-in for the Lore system's query processor
[MAG+97]: the substrate Chorel is implemented on.  It deliberately rejects
Chorel annotation syntax -- use :class:`repro.chorel.ChorelEngine` for
change queries.
"""

from __future__ import annotations

from ..obs.trace import span
from ..oem.model import OEMDatabase
from .ast import Query
from .eval import Evaluator
from .parser import parse_query
from .result import QueryResult
from .views import OEMView

__all__ = ["LorelEngine"]


class LorelEngine:
    """Evaluates Lorel queries over one OEM database.

    ``name`` registers the database name used as the entry point of root
    path expressions; by default the root's node id doubles as the name
    (the Guide examples use a root named ``guide``).  Additional entry
    points may be registered with :meth:`register_name`.
    """

    def __init__(self, db: OEMDatabase, name: str | None = None) -> None:
        self.db = db
        names = {name or db.root: db.root}
        self.view = OEMView(db, names)
        self._evaluator = Evaluator(self.view)
        self.last_profile = None

    def register_name(self, name: str, node_id: str) -> None:
        """Expose ``node_id`` as a database name for path expressions."""
        self.view._names[name] = node_id

    def parse(self, text: str) -> Query:
        """Parse Lorel text (annotation expressions rejected)."""
        return parse_query(text, allow_annotations=False)

    def run(self, query: str | Query, *,
            profile: bool = False) -> QueryResult:
        """Parse (if needed) and evaluate a query.

        ``profile=True`` observes the run (identical rows) and leaves the
        :class:`~repro.obs.profile.QueryProfile` on ``self.last_profile``.
        """
        if profile:
            from ..obs.profile import profile_query
            result, self.last_profile = profile_query(self, query)
            return result
        with span("lorel.query"):
            if isinstance(query, str):
                with span("lorel.parse"):
                    query = self.parse(query)
            return self._evaluator.run(query)

    def run_ast(self, query: Query) -> QueryResult:
        """Evaluate an already-parsed query AST (may contain annotations;
        used by the Chorel->Lorel translation backend, whose generated
        ASTs are plain Lorel by construction)."""
        return self._evaluator.run(query)

    def _base_env(self) -> dict:
        """Ambient bindings every evaluation starts from (none for Lorel)."""
        return {}

    def run_many(self, queries, *, pool=None,
                 max_workers: int | None = None) -> list[QueryResult]:
        """Evaluate a batch of queries concurrently; results in input order.

        Row-for-row equivalent to ``[self.run(q) for q in queries]``, but
        parsing and index acquisition happen once and the evaluations fan
        out to a worker pool (see :mod:`repro.parallel`).
        """
        from ..parallel.executor import run_many as _run_many
        return _run_many(self, queries, pool=pool, max_workers=max_workers)
