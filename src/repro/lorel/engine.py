"""The Lorel engine: parse + evaluate plain Lorel over an OEM database.

This is the library's stand-in for the Lore system's query processor
[MAG+97]: the substrate Chorel is implemented on.  It deliberately rejects
Chorel annotation syntax -- use :class:`repro.chorel.ChorelEngine` for
change queries.

Like every engine in the library, it is a thin facade over the staged
planner: ``run`` = :meth:`LorelEngine.compile` (normalize, lower,
optimize) + :meth:`LorelEngine.execute` (physical operators).  The
pre-planner evaluator remains reachable with ``use_planner=False`` as the
differential oracle.
"""

from __future__ import annotations

from ..obs.trace import span
from ..oem.model import OEMDatabase
from ..plan import (
    CompileContext,
    CompiledPlan,
    ExecutionContext,
    compile_query,
    insert_exchange,
    run_compiled,
)
from .ast import Query
from .eval import Evaluator
from .parser import parse_query
from .result import QueryResult
from .views import OEMView

__all__ = ["LorelEngine"]


class LorelEngine:
    """Evaluates Lorel queries over one OEM database.

    ``name`` registers the database name used as the entry point of root
    path expressions; by default the root's node id doubles as the name
    (the Guide examples use a root named ``guide``).  Additional entry
    points may be registered with :meth:`register_name`.

    ``use_planner=False`` routes ``run`` through the legacy single-pass
    evaluator instead of the compile/execute pipeline (the differential
    oracle; identical rows, in identical order).

    ``batch_size`` selects the physical execution model: positive widths
    run the batched operators (the default,
    :data:`repro.plan.batch.DEFAULT_BATCH_SIZE` rows per batch), ``0``
    the per-environment iterator model.  Rows and order are identical
    either way.
    """

    def __init__(self, db: OEMDatabase, name: str | None = None, *,
                 use_planner: bool = True,
                 batch_size: int | None = None) -> None:
        self.db = db
        names = {name or db.root: db.root}
        self.view = OEMView(db, names)
        self._evaluator = Evaluator(self.view)
        self.use_planner = use_planner
        from ..plan.batch import DEFAULT_BATCH_SIZE
        self.batch_size = DEFAULT_BATCH_SIZE if batch_size is None \
            else batch_size
        self.last_profile = None
        self.last_compiled: CompiledPlan | None = None

    def register_name(self, name: str, node_id: str) -> None:
        """Expose ``node_id`` as a database name for path expressions."""
        self.view._names[name] = node_id

    def parse(self, text: str) -> Query:
        """Parse Lorel text (annotation expressions rejected)."""
        return parse_query(text, allow_annotations=False)

    # -- planner pipeline ------------------------------------------------

    def compile(self, query: str | Query) -> CompiledPlan:
        """Compile a query to an optimized logical plan (``plan.compile``)."""
        if isinstance(query, str):
            query = self.parse(query)
        compiled = self._compile(query)
        self.last_compiled = compiled
        return compiled

    def _compile(self, query: Query) -> CompiledPlan:
        """Compile without touching ``last_compiled`` (worker-thread safe)."""
        context = CompileContext(evaluator=self._evaluator, view=self.view)
        return compile_query(query, self._evaluator, context=context)

    def execute(self, compiled: CompiledPlan, *, pool=None,
                min_shard_size: int = 1,
                parallel_metrics=None,
                analyze: bool = False) -> QueryResult:
        """Run a compiled plan through the physical operators.

        ``pool`` (set by the parallel executor) shards the plan behind an
        ``Exchange`` operator when it has a from clause to shard along.
        ``analyze=True`` attaches per-operator runtime accounting
        (identical rows) and leaves the stats on ``compiled.runtime``.
        """
        root = compiled.root
        ctx = ExecutionContext(evaluator=self._evaluator,
                               base_env=self._base_env(), pool=pool,
                               min_shard_size=min_shard_size,
                               parallel_metrics=parallel_metrics,
                               batch_size=self.batch_size)
        if pool is not None:
            exchanged = insert_exchange(root)
            if exchanged is not None:
                return run_compiled(compiled, exchanged, ctx, self,
                                    analyze=analyze)
            if parallel_metrics is not None:
                parallel_metrics["serial_queries"].inc()
            return run_compiled(compiled, root, ctx, self, analyze=analyze)
        with span("lorel.eval"):
            return run_compiled(compiled, root, ctx, self, analyze=analyze)

    # -- entry points ----------------------------------------------------

    def run(self, query: str | Query, *,
            profile: bool = False, analyze: bool = False) -> QueryResult:
        """Parse (if needed), compile, optimize, and execute a query.

        ``profile=True`` observes the run (identical rows) and leaves the
        :class:`~repro.obs.profile.QueryProfile` on ``self.last_profile``.
        ``analyze=True`` collects per-operator runtime stats (identical
        rows); render them with ``self.last_compiled.explain(analyze=True)``.
        """
        if profile:
            if analyze:
                raise ValueError("profile and analyze are mutually "
                                 "exclusive; run them separately")
            from ..obs.profile import profile_query
            result, self.last_profile = profile_query(self, query)
            return result
        with span("lorel.query"):
            if isinstance(query, str):
                with span("lorel.parse"):
                    query = self.parse(query)
            if not self.use_planner:
                if analyze:
                    raise ValueError("analyze=True requires the planner "
                                     "(use_planner=False has no plan tree)")
                return self._evaluator.run(query)
            compiled = self.compile(query)
            return self.execute(compiled, analyze=analyze)

    def run_ast(self, query: Query) -> QueryResult:
        """Evaluate an already-parsed query AST (may contain annotations;
        used by the Chorel->Lorel translation backend, whose generated
        ASTs are plain Lorel by construction)."""
        return self._evaluator.run(query)

    def _base_env(self) -> dict:
        """Ambient bindings every evaluation starts from (none for Lorel)."""
        return {}

    def run_many(self, queries, *, pool=None,
                 max_workers: int | None = None) -> list[QueryResult]:
        """Evaluate a batch of queries concurrently; results in input order.

        Row-for-row equivalent to ``[self.run(q) for q in queries]``, but
        parsing and index acquisition happen once and the evaluations fan
        out to a worker pool (see :mod:`repro.parallel`).
        """
        from ..parallel.executor import run_many as _run_many
        return _run_many(self, queries, pool=pool, max_workers=max_workers)
