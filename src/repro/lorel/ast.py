"""Abstract syntax trees for Lorel and Chorel queries.

One AST serves both languages: Chorel is Lorel plus *annotation
expressions* attached to path steps (Section 4.2).  A parser flag decides
whether annotation expressions are accepted.

The shapes follow the paper's grammar fragments::

    select N, T, NV
    from  guide.restaurant.price<upd at T to NV>,
          guide.restaurant.name N
    where T >= 1Jan97 and NV > 15

* a :class:`PathExpr` is a start name plus :class:`PathStep` s;
* a step holds an optional *arc* annotation (before the label: ``add``,
  ``rem``, or virtual ``at``) and an optional *node* annotation (after
  the label: ``cre``, ``upd``, or virtual ``at``);
* conditions form an and/or/not tree over comparisons, ``like``, and
  ``exists v in path : cond``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

__all__ = [
    "TimeRange", "AnnotationExpr", "PathStep", "PathExpr", "Literal",
    "VarRef", "TimeVar", "Expr", "Comparison", "LikeCond", "ExistsCond",
    "And", "Or", "Not", "Condition", "SelectItem", "FromItem", "Query",
    "Definition",
]


@dataclass(frozen=True)
class TimeRange:
    """A closed time interval ``[low..high]`` with optional open sides.

    Bounds are timestamp literals or QSS :class:`TimeVar` s; ``None``
    leaves a side open (``[1Jan97..]`` is "since 1Jan97", ``[..5Jan97]``
    is "up to 5Jan97").  Both present bounds are *inclusive*, so adjacent
    intervals ``[a..m]`` and ``[m..b]`` compose to ``[a..b]`` under set
    union -- the property the cross-time equivalence suite checks.
    """

    low: Optional[object] = None
    high: Optional[object] = None

    def __str__(self) -> str:
        low = "" if self.low is None else str(self.low)
        high = "" if self.high is None else str(self.high)
        return f"[{low}..{high}]"


@dataclass(frozen=True)
class AnnotationExpr:
    """A Chorel annotation expression ``<kind at T in [a..b] from OV to NV>``.

    ``kind`` is one of ``"cre" | "upd" | "add" | "rem"`` (the paper's real
    annotations), ``"at"`` (the *virtual* annotation of Section 4.2.2), or
    the cross-time kinds ``"changed"`` (any change event: ``cre``/``upd``
    on nodes, ``add``/``rem`` on arcs) and ``"last-change"`` (the most
    recent such event).  ``at_var``/``from_var``/``to_var`` are variable
    names to bind; ``at_literal`` is set instead of ``at_var`` when the
    expression pins a concrete time (``<at 5Jan97>``).  ``in_range``
    restricts the bound times to a :class:`TimeRange` -- for the virtual
    ``at`` kind it enumerates *versions* over the range instead of reading
    one state.
    """

    kind: str
    at_var: Optional[str] = None
    from_var: Optional[str] = None
    to_var: Optional[str] = None
    at_literal: Optional[object] = None
    in_range: Optional[TimeRange] = None

    def canonical(self, fresh: "FreshNames") -> "AnnotationExpr":
        """The canonical form with every bindable slot holding a variable.

        Section 4.2.1: "the annotation expressions in a Chorel query are
        transformed into a canonical form that includes all variables" --
        ``<add>`` becomes ``<add at T1>``, ``<upd from X>`` becomes
        ``<upd at T2 from X to NV2>``.  Range-restricted forms always
        bind a time variable: ``<changed in [a..b]>`` becomes
        ``<changed at T1 in [a..b]>``.
        """
        at_var = self.at_var
        if at_var is None and self.at_literal is None:
            at_var = fresh.next("T")
        if self.kind != "upd":
            return AnnotationExpr(self.kind, at_var, None, None,
                                  self.at_literal, self.in_range)
        from_var = self.from_var or fresh.next("OV")
        to_var = self.to_var or fresh.next("NV")
        return AnnotationExpr("upd", at_var, from_var, to_var,
                              self.at_literal, self.in_range)

    def __str__(self) -> str:
        operand = self.at_literal if self.at_literal is not None \
            else self.at_var
        if self.kind == "at":
            # The virtual annotation's kind *is* the "at": <at 5Jan97>,
            # never <at at 5Jan97> (which the parser rightly rejects).
            if self.in_range is not None:
                if operand is None:
                    return f"<at {self.in_range}>"
                return f"<at {operand} in {self.in_range}>"
            return f"<at {operand}>"
        parts = [self.kind]
        if operand is not None:
            parts.append(f"at {operand}")
        if self.in_range is not None:
            parts.append(f"in {self.in_range}")
        if self.from_var:
            parts.append(f"from {self.from_var}")
        if self.to_var:
            parts.append(f"to {self.to_var}")
        return "<" + " ".join(parts) + ">"


class FreshNames:
    """A per-query counter for introduced variables (T1, NV2, X3, ...)."""

    def __init__(self) -> None:
        self._counts: dict[str, int] = {}

    def next(self, prefix: str) -> str:
        self._counts[prefix] = self._counts.get(prefix, 0) + 1
        return f"_{prefix}{self._counts[prefix]}"


@dataclass(frozen=True)
class PathStep:
    """One step of a path expression: ``.<arc_annot>label<node_annot>``.

    ``label`` is a plain label, a ``%``-pattern, an alternation
    ``a|b|c``, or ``"#"`` (the wildcard matching any path of length >= 0,
    which cannot carry arc annotations).  ``repetition`` is ``"*"`` /
    ``"+"`` for the general-path-expression closures ``label*`` (zero or
    more same-labeled hops) and ``label+`` (one or more).
    """

    label: str
    arc_annotation: Optional[AnnotationExpr] = None
    node_annotation: Optional[AnnotationExpr] = None
    repetition: Optional[str] = None

    @property
    def is_wildcard(self) -> bool:
        """True for the ``#`` path wildcard."""
        return self.label == "#"

    @property
    def is_pattern(self) -> bool:
        """True when the label contains ``%`` (like-style label matching)."""
        return "%" in self.label

    @property
    def is_alternation(self) -> bool:
        """True for ``(a|b|c)`` general-path-expression labels."""
        return "|" in self.label

    @property
    def alternatives(self) -> tuple[str, ...]:
        """The alternation's labels (a 1-tuple for plain labels)."""
        return tuple(self.label.split("|"))

    def __str__(self) -> str:
        text = ""
        if self.arc_annotation:
            text += str(self.arc_annotation)
        text += f"({self.label})" if "|" in self.label else self.label
        if self.repetition:
            text += self.repetition
        if self.node_annotation:
            text += str(self.node_annotation)
        return text


@dataclass(frozen=True)
class PathExpr:
    """A path expression: a start name followed by steps.

    The start resolves, in order, to (1) a variable bound in the current
    environment, or (2) a database name known to the engine (``guide``,
    or a QSS polling-query name such as ``LyttonRestaurants``).
    """

    start: str
    steps: tuple[PathStep, ...] = ()

    def __str__(self) -> str:
        pieces = [self.start]
        for index, step in enumerate(self.steps):
            if index == 0 and step.label == "":
                # a start-anchored node annotation: NEW<upd at T>
                pieces[0] += str(step)
            else:
                pieces.append(str(step))
        return ".".join(pieces)

    def with_steps(self, extra: tuple[PathStep, ...]) -> "PathExpr":
        """A copy with ``extra`` steps appended."""
        return PathExpr(self.start, self.steps + extra)


@dataclass(frozen=True)
class Literal:
    """A constant: int, real, string, boolean, or timestamp."""

    value: object

    def __str__(self) -> str:
        if isinstance(value := self.value, str):
            return '"' + value.replace("\\", "\\\\").replace('"', '\\"') + '"'
        if value is True:
            return "true"
        if value is False:
            return "false"
        return str(value)


@dataclass(frozen=True)
class VarRef:
    """A reference to a range/annotation variable."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class TimeVar:
    """A QSS time variable ``t[0]``, ``t[-1]``, ... (Section 6)."""

    index: int

    def __str__(self) -> str:
        return f"t[{self.index}]"


Expr = Union[Literal, VarRef, TimeVar, PathExpr]
"""Any expression that may appear in select items or comparisons."""


@dataclass(frozen=True)
class Comparison:
    """``left op right`` with a forgiving-coercion comparison operator."""

    left: Expr
    op: str
    right: Expr

    def __str__(self) -> str:
        return f"{self.left} {self.op} {self.right}"


@dataclass(frozen=True)
class LikeCond:
    """``expr like "pattern"`` (``%``/``_`` wildcards)."""

    expr: Expr
    pattern: str

    def __str__(self) -> str:
        return f'{self.expr} like "{self.pattern}"'


@dataclass(frozen=True)
class ExistsCond:
    """``exists VAR in PATH : CONDITION`` (used by translated queries)."""

    var: str
    path: PathExpr
    condition: "Condition"

    def __str__(self) -> str:
        return f"exists {self.var} in {self.path} : ({self.condition})"


@dataclass(frozen=True)
class And:
    """Conjunction."""

    left: "Condition"
    right: "Condition"

    def __str__(self) -> str:
        return f"{self.left} and {self.right}"


@dataclass(frozen=True)
class Or:
    """Disjunction."""

    left: "Condition"
    right: "Condition"

    def __str__(self) -> str:
        return f"({self.left} or {self.right})"


@dataclass(frozen=True)
class Not:
    """Negation (negation-as-failure over existential matches)."""

    operand: "Condition"

    def __str__(self) -> str:
        return f"not ({self.operand})"


Condition = Union[Comparison, LikeCond, ExistsCond, And, Or, Not]
"""Any where-clause condition."""


@dataclass(frozen=True)
class SelectItem:
    """One select-clause item with an optional explicit label (``AS``)."""

    expr: Expr
    label: Optional[str] = None

    def __str__(self) -> str:
        if self.label:
            return f"{self.expr} as {self.label}"
        return str(self.expr)


@dataclass(frozen=True)
class FromItem:
    """One from-clause item: a path expression with an optional range variable."""

    path: PathExpr
    var: Optional[str] = None

    def __str__(self) -> str:
        if self.var:
            return f"{self.path} {self.var}"
        return str(self.path)


@dataclass(frozen=True)
class Query:
    """A complete select-from-where query."""

    select: tuple[SelectItem, ...]
    from_items: tuple[FromItem, ...] = ()
    where: Optional[Condition] = None

    def __str__(self) -> str:
        text = "select " + ", ".join(str(item) for item in self.select)
        if self.from_items:
            text += " from " + ", ".join(str(item) for item in self.from_items)
        if self.where is not None:
            text += f" where {self.where}"
        return text


@dataclass(frozen=True)
class Definition:
    """``define polling|filter query NAME as QUERY`` (Section 6)."""

    kind: str  # "polling" | "filter"
    name: str
    query: Query

    def __str__(self) -> str:
        return f"define {self.kind} query {self.name} as {self.query}"
