"""A Lorel-style update language compiling to basic change operations.

Section 2.1: "users will typically request 'higher-level' changes based on
the Lorel update language [AQM+96]; the basic change operations defined
here reflect the actual changes at the database level."  This module is
that bridge: declarative update statements are *planned* against a
database into a :class:`~repro.oem.history.ChangeSet` of creNode /
updNode / addArc / remArc operations, which can then be applied to an OEM
database or folded into a DOEM database with a timestamp.

Supported statements::

    update guide.restaurant.price := 25
        where guide.restaurant.name = "Janta"     -- updNode per match

    insert guide.restaurant.comment := "good"     -- creNode + addArc
        where guide.restaurant.name = "Janta"

    insert guide.restaurant := { name: "Hakata", price: 30 }

    remove guide.restaurant.parking               -- remArc per match
        where guide.restaurant.name = "Janta"

    link   guide.restaurant.annex := PATH guide.restaurant
        where ...                                 -- addArc to existing obj

The targets of ``update``/``remove`` and the parents of ``insert``/``link``
are found by evaluating the path's prefix as a Lorel query, so the full
where-clause machinery (coercion, patterns, wildcards in the prefix) is
available.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass, field
from typing import Mapping

from ..errors import ParseError, QueryError
from ..oem.changes import AddArc, ChangeOp, CreNode, RemArc, UpdNode
from ..oem.history import ChangeSet
from ..oem.model import OEMDatabase
from ..oem.values import COMPLEX, is_atomic_value
from .ast import Comparison, Condition, FromItem, Literal, PathExpr, Query, SelectItem, VarRef
from .engine import LorelEngine
from .parser import Parser
from .tokens import TokenKind

__all__ = ["UpdateStatement", "parse_update", "plan_update"]


@dataclass(frozen=True)
class UpdateStatement:
    """A parsed update statement.

    ``kind`` is ``update | insert | remove | link``; ``path`` locates the
    affected arcs/objects; ``value`` is an atomic literal or a nested
    mapping (for complex inserts); ``target_path`` is set for ``link``;
    ``where`` is an optional condition sharing prefixes with ``path``.
    """

    kind: str
    path: PathExpr
    value: object = None
    target_path: PathExpr | None = None
    where: Condition | None = None


class _UpdateParser(Parser):
    """Extends the query parser with the update-statement forms."""

    def parse_update(self) -> UpdateStatement:
        token = self._peek()
        kind = token.text.lower()
        if kind not in ("update", "insert", "remove", "link"):
            raise self._error("expected update/insert/remove/link")
        self._advance()
        path = self._path_expr()

        value: object = None
        target_path: PathExpr | None = None
        if kind in ("update", "insert", "link"):
            assign = self._peek()
            if not (assign.kind is TokenKind.COLON
                    and self._peek(1).kind is TokenKind.OP
                    and self._peek(1).text == "="):
                raise self._error("expected ':=' after the target path")
            self._advance()
            self._advance()
            if kind == "link":
                if not self._peek().is_keyword("query") and \
                        self._peek().text.upper() != "PATH":
                    raise self._error("expected 'PATH <path>' after ':='")
                self._advance()
                target_path = self._path_expr()
            else:
                value = self._value_spec()

        where = None
        if self._accept_keyword("where"):
            where = self._or_condition()
        if self._peek().kind is not TokenKind.EOF:
            raise self._error(f"trailing input: {self._peek().text!r}")
        return UpdateStatement(kind, path, value, target_path, where)

    def _value_spec(self) -> object:
        """An atomic literal or a ``{ label: value, ... }`` object spec."""
        token = self._peek()
        if token.kind in (TokenKind.INT, TokenKind.REAL, TokenKind.STRING,
                          TokenKind.TIMESTAMP):
            self._advance()
            return token.value
        if token.is_keyword("true") or token.is_keyword("false"):
            self._advance()
            return token.text.lower() == "true"
        if token.text == "{":
            raise self._error(
                "brace object specs must be passed as a Python mapping via "
                "plan_update(..., value=...); the textual form accepts only "
                "atomic literals")
        raise self._error("expected a literal value")


def parse_update(text: str) -> UpdateStatement:
    """Parse an update statement (annotation expressions rejected)."""
    return _UpdateParser(text, allow_annotations=False).parse_update()


def plan_update(db: OEMDatabase, statement: UpdateStatement | str,
                engine: LorelEngine | None = None,
                value: object = None) -> ChangeSet:
    """Plan an update statement against ``db`` into a change set.

    ``engine`` defaults to a fresh :class:`LorelEngine` over ``db``
    (named after its root).  ``value`` overrides the statement's value --
    this is how nested mappings (complex object specs) are supplied.
    The returned change set has **not** been applied.
    """
    if isinstance(statement, str):
        statement = parse_update(statement)
    if engine is None:
        engine = LorelEngine(db)
    if value is None:
        value = statement.value

    if not statement.path.steps:
        raise QueryError("update path must have at least one step")
    prefix = PathExpr(statement.path.start, statement.path.steps[:-1])
    last_label = statement.path.steps[-1].label
    if "%" in last_label or last_label == "#":
        raise QueryError("the final step of an update path must be a "
                         "plain label")

    ops: list[ChangeOp] = []
    used: set[str] = set()

    def fresh_id() -> str:
        node = db.new_node_id()
        while node in used:
            node = db.new_node_id()
        used.add(node)
        return node

    def materialize(parent: str, label: str, spec: object) -> None:
        """creNode/addArc plans for an atomic or nested-mapping spec."""
        if isinstance(spec, Mapping):
            node = fresh_id()
            ops.append(CreNode(node, COMPLEX))
            ops.append(AddArc(parent, label, node))
            for key, child in spec.items():
                children = child if isinstance(child, (list, tuple)) else [child]
                for element in children:
                    materialize(node, key, element)
        elif is_atomic_value(spec):
            node = fresh_id()
            ops.append(CreNode(node, spec))
            ops.append(AddArc(parent, label, node))
        else:
            raise QueryError(f"cannot materialize update value {spec!r}")

    if statement.kind == "insert":
        parents = _match_objects(engine, prefix, statement.where)
        if value is None:
            raise QueryError("insert needs a value")
        for parent in parents:
            materialize(parent, last_label, value)

    elif statement.kind == "update":
        if value is None:
            raise QueryError("update needs a value")
        if not is_atomic_value(value) and value is not COMPLEX:
            raise QueryError("update assigns an atomic value; use insert "
                             "for complex specs")
        targets = _match_objects(engine, statement.path, statement.where)
        seen: set[str] = set()
        for node in targets:
            if node not in seen:
                seen.add(node)
                ops.append(UpdNode(node, value))

    elif statement.kind == "remove":
        parents = _match_objects(engine, prefix, statement.where)
        for parent in parents:
            for child in engine.db.children(parent, last_label):
                op = RemArc(parent, last_label, child)
                if op not in ops:
                    ops.append(op)

    elif statement.kind == "link":
        if statement.target_path is None:
            raise QueryError("link needs 'PATH <path>'")
        parents = _match_objects(engine, prefix, statement.where)
        targets = _match_objects(engine, statement.target_path, statement.where)
        for parent in parents:
            for target in targets:
                op = AddArc(parent, last_label, target)
                if op not in ops and not db.has_arc(parent, last_label, target):
                    ops.append(op)

    else:  # pragma: no cover
        raise QueryError(f"unknown update kind {statement.kind!r}")

    return ChangeSet(ops)


def _match_objects(engine: LorelEngine, path: PathExpr,
                   where: Condition | None) -> list[str]:
    """Node ids matched by ``path`` under ``where`` (select-query reuse)."""
    if not path.steps:
        entry = engine.view.resolve_name(path.start)
        if entry is None:
            raise QueryError(f"unknown name {path.start!r}")
        return [entry]
    query = Query(select=(SelectItem(path),), from_items=(), where=where)
    result = engine.run_ast(query)
    return result.objects()
