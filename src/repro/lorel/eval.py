"""The Lorel/Chorel evaluator.

One evaluator serves plain Lorel over OEM, native Chorel over DOEM, and
translated Chorel over the OEM encoding -- the differences live entirely
in the :mod:`~repro.lorel.views` layer.  The implementation follows the
semantics of Section 4.2.1 operationally:

1. **Normalization** -- annotation expressions are put in canonical form
   (all variables materialized); select-clause path expressions move into
   the from clause with fresh range variables (the rewriting shown in
   Example 4.3).
2. **From clause** -- each item extends a stream of environments: the path
   is matched against the data, binding the range variable to the final
   object and any annotation variables along the way (the
   ``creFun``/``updFun``/``addFun``/``remFun`` bindings).
3. **Where clause** -- conditions are *solved*: a condition maps an
   environment to the stream of extended environments that satisfy it,
   giving existential semantics to variables introduced inside the where
   clause (Example 4.5) while letting bindings flow across ``and``.
4. **Select clause** -- each satisfying from-environment emits one row;
   results are sets (duplicates dropped).

Environments bind variables to :class:`Binding` values: an object (node id
plus optional virtual-annotation time context) or a scalar.

The staged public API (:meth:`Evaluator.prepare`,
:meth:`Evaluator.bind_from_item`, :meth:`Evaluator.from_envs`,
:meth:`Evaluator.satisfies`, :meth:`Evaluator.make_row` /
:meth:`Evaluator.project_row`) doubles as the kernel set of the query
planner's physical operators (:mod:`repro.plan.physical`): ``PathExpand``
wraps ``bind_from_item``, ``Predicate`` wraps ``solve``, ``Project``
wraps ``project_row``.  :meth:`Evaluator.run` remains the single-pass
legacy path -- engines keep it reachable via ``use_planner=False`` as the
differential oracle the equivalence suites compare against.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from ..errors import EvaluationError
from ..obs.trace import span
from ..oem.values import COMPLEX, compare, like
from ..timestamps import POS_INF, Timestamp, parse_timestamp
from .ast import (
    And,
    AnnotationExpr,
    Comparison,
    Condition,
    ExistsCond,
    Expr,
    FreshNames,
    FromItem,
    LikeCond,
    Literal,
    Not,
    Or,
    PathExpr,
    PathStep,
    Query,
    SelectItem,
    TimeVar,
    VarRef,
)
from .result import ObjectRef, QueryResult, Row
from .views import DataView

__all__ = ["Evaluator", "Binding", "NodeBinding", "default_labels"]

_ANNOTATION_DEFAULT_LABELS = {
    ("cre", "at"): "create-time",
    ("add", "at"): "add-time",
    ("rem", "at"): "remove-time",
    ("upd", "at"): "update-time",
    ("at", "at"): "at-time",
    ("changed", "at"): "change-time",
    ("last-change", "at"): "last-change-time",
    ("upd", "from"): "old-value",
    ("upd", "to"): "new-value",
}

_MAX_WILDCARD_DEPTH = 64


@dataclass(frozen=True)
class NodeBinding:
    """A variable bound to an object, with an optional time context.

    ``at`` is set by the virtual ``<at T>`` annotation; value accesses and
    further navigation then happen "as of" that time.
    """

    node: str
    at: Timestamp | None = None


Binding = object
"""A binding is a :class:`NodeBinding` or a plain scalar value."""

Env = dict
"""Environments are plain dicts from variable names to bindings."""

TIMEVARS_KEY = "__polling_times__"
"""Env key holding the QSS polling-time mapping for ``t[i]`` variables."""


def default_labels(query: Query) -> dict[str, str]:
    """Default result labels for every variable in the query.

    For a range variable over a path, the label is the path's last label
    (``R`` over ``guide.restaurant`` -> ``restaurant``).  Time and data
    variables bound in annotation expressions get the paper's defaults:
    ``create-time``, ``add-time``, ``remove-time``, ``update-time``,
    ``new-value``, ``old-value`` (Example 4.4).
    """
    labels: dict[str, str] = {}

    def scan_annotation(annotation: AnnotationExpr | None) -> None:
        if annotation is None:
            return
        if annotation.at_var:
            labels.setdefault(annotation.at_var,
                              _ANNOTATION_DEFAULT_LABELS[(annotation.kind, "at")])
        if annotation.from_var:
            labels.setdefault(annotation.from_var, "old-value")
        if annotation.to_var:
            labels.setdefault(annotation.to_var, "new-value")

    def scan_path(path: PathExpr) -> None:
        for step in path.steps:
            scan_annotation(step.arc_annotation)
            scan_annotation(step.node_annotation)

    for item in query.from_items:
        scan_path(item.path)
        if item.var and item.path.steps:
            last = item.path.steps[-1].label
            labels.setdefault(item.var, last if last != "#" else item.var)

    def scan_condition(condition: Condition | None) -> None:
        if condition is None:
            return
        if isinstance(condition, (And, Or)):
            scan_condition(condition.left)
            scan_condition(condition.right)
        elif isinstance(condition, Not):
            scan_condition(condition.operand)
        elif isinstance(condition, ExistsCond):
            scan_path(condition.path)
            scan_condition(condition.condition)
        elif isinstance(condition, Comparison):
            for side in (condition.left, condition.right):
                if isinstance(side, PathExpr):
                    scan_path(side)
        elif isinstance(condition, LikeCond):
            if isinstance(condition.expr, PathExpr):
                scan_path(condition.expr)

    scan_condition(query.where)
    return labels


class Evaluator:
    """Evaluates normalized queries against a :class:`DataView`."""

    def __init__(self, view: DataView) -> None:
        self.view = view

    # ==================================================================
    # Normalization
    # ==================================================================

    def normalize(self, query: Query) -> Query:
        """Rewrite the query into range-variable normal form.

        Mirrors the paper's OQL-like rewriting (Section 4.2.1):

        * annotation expressions get canonical form (all variables
          materialized): ``<add>`` -> ``<add at _T1>``;
        * every path expression in the select and from clauses is broken
          into a chain of single-step from items, and **textually shared
          prefixes unify to the same range variable** -- Example 4.4's two
          from paths ``guide.restaurant.price<...>`` and
          ``guide.restaurant.name N`` both range over one restaurant
          variable, and Example 4.1's where path ``guide.restaurant.price``
          constrains the *selected* ``guide.restaurant``;
        * where-clause path expressions are re-rooted at the longest
          registered prefix and stay existential in place (Example 4.5).
        """
        fresh = FreshNames()
        prefix_vars: dict[tuple, str] = {}
        new_from: list[FromItem] = []

        def canon_step(step: PathStep) -> PathStep:
            arc = step.arc_annotation.canonical(fresh) if step.arc_annotation else None
            node = step.node_annotation.canonical(fresh) if step.node_annotation else None
            return PathStep(step.label, arc, node, step.repetition)

        def key_of(start: str, steps: tuple[PathStep, ...]) -> tuple:
            return (start, tuple(str(step) for step in steps))

        def var_for(path: PathExpr, explicit_var: str | None = None) -> str:
            """The range variable denoting ``path``; registers a chain of
            single-step from items for unseen prefixes."""
            if not path.steps:
                return path.start
            key = key_of(path.start, path.steps)
            if explicit_var is None and key in prefix_vars:
                return prefix_vars[key]
            parent = var_for(PathExpr(path.start, path.steps[:-1]))
            var = explicit_var or fresh.next("X")
            prefix_vars.setdefault(key, var)
            new_from.append(FromItem(PathExpr(parent, (canon_step(path.steps[-1]),)),
                                     var))
            return var

        # From clause first, so explicit variables win prefix registration.
        for item in query.from_items:
            if not item.path.steps:
                new_from.append(FromItem(item.path, item.var))
                if item.var:
                    prefix_vars.setdefault(key_of(item.path.start, ()), item.var)
                continue
            var_for(item.path, explicit_var=item.var or fresh.next("X"))

        # Select clause: hoist paths onto (possibly shared) range variables.
        select: list[SelectItem] = []
        for item in query.select:
            expr = item.expr
            if isinstance(expr, PathExpr) and expr.steps:
                var = var_for(expr)
                last = expr.steps[-1].label
                label = item.label or (last if last != "#" else "answer")
                select.append(SelectItem(VarRef(var), label))
            elif isinstance(expr, PathExpr):
                select.append(SelectItem(VarRef(expr.start), item.label))
            else:
                select.append(SelectItem(expr, item.label))

        # Where clause: re-root paths at the longest registered prefix.
        def reroot(path: PathExpr) -> PathExpr:
            for cut in range(len(path.steps), 0, -1):
                key = key_of(path.start, path.steps[:cut])
                if key in prefix_vars:
                    rest = tuple(canon_step(s) for s in path.steps[cut:])
                    return PathExpr(prefix_vars[key], rest)
            return PathExpr(path.start,
                            tuple(canon_step(s) for s in path.steps))

        def rewrite_expr(expr: Expr) -> Expr:
            if isinstance(expr, PathExpr) and expr.steps:
                return reroot(expr)
            return expr

        def rewrite_cond(condition: Condition) -> Condition:
            if isinstance(condition, And):
                return And(rewrite_cond(condition.left), rewrite_cond(condition.right))
            if isinstance(condition, Or):
                return Or(rewrite_cond(condition.left), rewrite_cond(condition.right))
            if isinstance(condition, Not):
                return Not(rewrite_cond(condition.operand))
            if isinstance(condition, ExistsCond):
                return ExistsCond(condition.var, reroot(condition.path),
                                  rewrite_cond(condition.condition))
            if isinstance(condition, Comparison):
                return Comparison(rewrite_expr(condition.left), condition.op,
                                  rewrite_expr(condition.right))
            if isinstance(condition, LikeCond):
                return LikeCond(rewrite_expr(condition.expr), condition.pattern)
            raise EvaluationError(f"unknown condition: {condition!r}")

        where = rewrite_cond(query.where) if query.where is not None else None
        return Query(tuple(select), tuple(new_from), where)

    # ==================================================================
    # Path evaluation
    # ==================================================================

    def resolve_start(self, path: PathExpr, env: Env) -> NodeBinding:
        """Resolve the first component of a path to a bound object."""
        if path.start in env:
            binding = env[path.start]
            if not isinstance(binding, NodeBinding):
                raise EvaluationError(
                    f"variable {path.start!r} is bound to a scalar and "
                    f"cannot start a path")
            return binding
        entry = self.view.resolve_name(path.start)
        if entry is None:
            raise EvaluationError(
                f"unknown name or unbound variable {path.start!r}")
        return NodeBinding(entry)

    def eval_path(self, path: PathExpr, env: Env) -> Iterator[tuple[NodeBinding, Env]]:
        """All ``(final object, extended environment)`` matches of a path."""
        try:
            start = self.resolve_start(path, env)
        except EvaluationError:
            raise
        yield from self._walk(start, path.steps, 0, env)

    def _walk(self, binding: NodeBinding, steps: tuple[PathStep, ...],
              index: int, env: Env) -> Iterator[tuple[NodeBinding, Env]]:
        if index == len(steps):
            yield binding, env
            return
        step = steps[index]
        for child_binding, child_env in self.expand_step(binding, step, env):
            yield from self._walk(child_binding, steps, index + 1, child_env)

    def expand_step(self, binding: NodeBinding, step: PathStep,
                    env: Env) -> Iterator[tuple[NodeBinding, Env]]:
        """All matches of one path step from one bound object.

        The single-step kernel both traversal strategies share: the
        depth-first :meth:`_walk` recursion applies it per branch, and the
        batched frontier traversal (:meth:`bind_from_item_batch`) applies
        it level-synchronously across a whole environment batch.  Match
        order is data order, which is what makes the two strategies
        enumerate identical streams.
        """
        if step.is_wildcard:
            if step.arc_annotation:
                raise EvaluationError(
                    "arc annotation expressions on the '#' wildcard are "
                    "ambiguous and not supported; node annotations "
                    "(#<cre at T>) are")
            for descendant in self._wildcard_closure(binding):
                if step.node_annotation is not None:
                    # The Section 7 generalization: a node annotation on
                    # '#' matches any reachable object bearing it.
                    yield from self._node_matches(
                        descendant.node, step.node_annotation, env)
                else:
                    yield descendant, env
            return
        if step.repetition is not None:
            # GPE closure: zero-or-more / one-or-more same-labeled hops.
            for reached in self._label_closure(binding, step):
                if step.node_annotation is not None:
                    yield from self._node_matches(
                        reached.node, step.node_annotation, env)
                else:
                    yield reached, env
            return
        yield from self._step_matches(binding, step, env)

    def _wildcard_closure(self, binding: NodeBinding) -> Iterator[NodeBinding]:
        """``#`` matches any path of length >= 0: the reachable closure."""
        seen = {binding.node}
        queue = [binding]
        depth = 0
        while queue and depth < _MAX_WILDCARD_DEPTH:
            next_queue: list[NodeBinding] = []
            for current in queue:
                yield current
                if self.view.value(current.node) is not COMPLEX:
                    continue
                for label in list(self._labels_for(current)):
                    if label.startswith("&"):
                        # Reserved encoding labels are never wildcarded:
                        # '#' must see only the current-snapshot structure.
                        continue
                    for child in self._plain_children(current, label):
                        if child not in seen:
                            seen.add(child)
                            next_queue.append(NodeBinding(child, current.at))
            queue = next_queue
            depth += 1

    def _label_closure(self, binding: NodeBinding,
                       step: PathStep) -> Iterator[NodeBinding]:
        """``label*`` / ``label+``: nodes reachable by same-labeled hops.

        Cycle-safe BFS; ``*`` includes the start object itself, ``+``
        requires at least one hop.  Alternation labels close over the
        union of their alternatives.
        """
        labels = step.alternatives if step.is_alternation else (step.label,)
        seen: set[str] = set()
        if step.repetition == "*":
            # Zero hops: the start itself.  Under '+', the start is only
            # reachable through a cycle of >= 1 hop, so it is NOT seeded
            # into `seen` -- a cycle back to it must yield it.
            seen.add(binding.node)
            yield binding
        frontier = [binding]
        while frontier:
            next_frontier: list[NodeBinding] = []
            for current in frontier:
                if self.view.value(current.node) is not COMPLEX:
                    continue
                for label in labels:
                    for child in self._plain_children(current, label):
                        if child not in seen:
                            seen.add(child)
                            reached = NodeBinding(child, current.at)
                            yield reached
                            next_frontier.append(reached)
            frontier = next_frontier

    def _labels_for(self, binding: NodeBinding) -> Iterator[str]:
        return self.view.labels(binding.node)

    def _plain_children(self, binding: NodeBinding, label: str) -> Iterator[str]:
        if binding.at is not None:
            return self.view.children_at(binding.node, label, binding.at)
        return self.view.children(binding.node, label)

    def _step_matches(self, binding: NodeBinding, step: PathStep,
                      env: Env) -> Iterator[tuple[NodeBinding, Env]]:
        """Matches of one (possibly annotated) step from one object."""
        if step.label == "":
            # A start-anchored node annotation: stay on this object (which
            # may be atomic) and match the annotation in place.
            yield from self._node_matches(binding.node,
                                          step.node_annotation, env)
            return
        if self.view.value(binding.node) is not COMPLEX:
            return
        annotated = step.arc_annotation is not None
        if step.is_pattern:
            labels = list(self.view.matching_labels(
                binding.node, step.label, include_dead=annotated))
        elif step.is_alternation:
            labels = list(step.alternatives)
        else:
            labels = [step.label]

        for label in labels:
            for child, env_after_arc in self._arc_matches(
                    binding, label, step.arc_annotation, env):
                yield from self._node_matches(
                    child, step.node_annotation, env_after_arc)

    # -- arcs ------------------------------------------------------------

    def _arc_matches(self, binding: NodeBinding, label: str,
                     annotation: AnnotationExpr | None,
                     env: Env) -> Iterator[tuple[str, Env]]:
        node = binding.node
        if annotation is None:
            for child in self._plain_children(binding, label):
                yield child, env
            return
        if annotation.kind == "add":
            pairs = self.view.add_fun(node, label)
        elif annotation.kind == "rem":
            pairs = self.view.rem_fun(node, label)
        elif annotation.kind == "at":
            when = self._resolve_at(annotation, env)
            for child in self.view.children_at(node, label, when):
                yield child, env
            return
        elif annotation.kind in ("changed", "last-change"):
            yield from self._arc_change_matches(node, label, annotation, env)
            return
        else:  # pragma: no cover - parser prevents this
            raise EvaluationError(f"bad arc annotation kind {annotation.kind!r}")
        for when, child in pairs:
            extended = self._bind_time(annotation, when, env)
            if extended is not None:
                yield child, extended

    def _arc_change_matches(self, node: str, label: str,
                            annotation: AnnotationExpr,
                            env: Env) -> Iterator[tuple[str, Env]]:
        """Cross-time arc kinds: ``changed`` is the add/rem event union,
        ``last-change`` keeps only the most recent in-range event per
        child.  Events enumerate in (time, add-before-rem, child) order so
        every evaluation strategy replays the identical stream.
        """
        events = [(when, 0, str(child), child)
                  for when, child in self.view.add_fun(node, label)]
        events += [(when, 1, str(child), child)
                   for when, child in self.view.rem_fun(node, label)]
        events.sort(key=lambda e: (e[0]._order_key(), e[1], e[2]))
        if annotation.kind == "last-change":
            bounds = self._range_bounds(annotation, env)
            latest: dict[str, tuple] = {}
            for event in events:
                if self._within(event[0], bounds):
                    latest[event[2]] = event
            events = sorted(latest.values(),
                            key=lambda e: (e[0]._order_key(), e[1], e[2]))
        for when, _rank, _key, child in events:
            extended = self._bind_time(annotation, when, env)
            if extended is not None:
                yield child, extended

    # -- nodes -----------------------------------------------------------

    def _node_matches(self, child: str, annotation: AnnotationExpr | None,
                      env: Env) -> Iterator[tuple[NodeBinding, Env]]:
        if annotation is None:
            yield NodeBinding(child), env
            return
        if annotation.kind == "cre":
            for when in self.view.cre_fun(child):
                extended = self._bind_time(annotation, when, env)
                if extended is not None:
                    yield NodeBinding(child), extended
            return
        if annotation.kind == "upd":
            for when, old_value, new_value in self.view.upd_fun(child):
                extended = self._bind_time(annotation, when, env)
                if extended is None:
                    continue
                extended = self._bind_var(annotation.from_var, old_value, extended)
                if extended is None:
                    continue
                extended = self._bind_var(annotation.to_var, new_value, extended)
                if extended is not None:
                    yield NodeBinding(child), extended
            return
        if annotation.kind == "at":
            if annotation.in_range is not None:
                yield from self._version_matches(child, annotation, env)
                return
            when = self._resolve_at(annotation, env)
            yield NodeBinding(child, when), env
            return
        if annotation.kind in ("changed", "last-change"):
            yield from self._node_change_matches(child, annotation, env)
            return
        raise EvaluationError(  # pragma: no cover - parser prevents this
            f"bad node annotation kind {annotation.kind!r}")

    def _node_change_matches(self, child: str, annotation: AnnotationExpr,
                             env: Env) -> Iterator[tuple[NodeBinding, Env]]:
        """Cross-time node kinds: ``changed`` is the cre/upd event union,
        ``last-change`` keeps only the most recent in-range event.
        Events enumerate in (time, cre-before-upd) order.
        """
        events = [(when, 0) for when in self.view.cre_fun(child)]
        events += [(when, 1) for when, _old, _new in self.view.upd_fun(child)]
        events.sort(key=lambda e: (e[0]._order_key(), e[1]))
        if annotation.kind == "last-change":
            bounds = self._range_bounds(annotation, env)
            events = [e for e in events if self._within(e[0], bounds)][-1:]
        for when, _rank in events:
            extended = self._bind_time(annotation, when, env)
            if extended is not None:
                yield NodeBinding(child), extended

    def _version_matches(self, child: str, annotation: AnnotationExpr,
                         env: Env) -> Iterator[tuple[NodeBinding, Env]]:
        """The range form of the virtual annotation: ``<at [a..b]>``
        enumerates the node's *versions* over the interval -- its state at
        the range start (when the node already existed), plus one state
        per cre/upd event inside the range.  Each match carries the
        version time as the binding's time context, so value reads and
        further navigation happen "as of" that version.
        """
        low, high = self._range_bounds(annotation, env)
        events = sorted(
            {when for when in self.view.cre_fun(child)}
            | {when for when, _old, _new in self.view.upd_fun(child)},
            key=lambda when: when._order_key())
        times: list[Timestamp] = []
        if low is not None:
            creations = list(self.view.cre_fun(child))
            if not creations or min(creations) <= low:
                times.append(low)
        for when in events:
            if not self._within(when, (low, high)):
                continue
            if times and when == times[-1]:
                continue
            times.append(when)
        for when in times:
            extended = self._bind_time(annotation, when, env)
            if extended is not None:
                yield NodeBinding(child, when), extended

    # -- binding helpers ---------------------------------------------------

    def _resolve_at(self, annotation: AnnotationExpr, env: Env) -> Timestamp:
        """The time pinned by a virtual ``<at ...>`` annotation."""
        if annotation.at_literal is not None:
            literal = annotation.at_literal
            if isinstance(literal, TimeVar):
                return self._polling_time(literal, env)
            return parse_timestamp(literal)
        if annotation.at_var is not None:
            if annotation.at_var not in env:
                raise EvaluationError(
                    f"virtual annotation <at {annotation.at_var}> needs "
                    f"{annotation.at_var!r} to be bound already")
            value = env[annotation.at_var]
            if isinstance(value, NodeBinding):
                value = self._value_of(value)
            return parse_timestamp(value)
        raise EvaluationError("virtual annotation <at> without a time")

    def _range_bounds(self, annotation: AnnotationExpr,
                      env: Env) -> tuple[Timestamp | None, Timestamp | None]:
        """The annotation's resolved (low, high) bounds; ``None`` is open."""
        rng = annotation.in_range
        if rng is None:
            return None, None
        return (self._resolve_bound(rng.low, env),
                self._resolve_bound(rng.high, env))

    def _resolve_bound(self, bound: object, env: Env) -> Timestamp | None:
        if bound is None:
            return None
        if isinstance(bound, TimeVar):
            return self._polling_time(bound, env)
        return parse_timestamp(bound)

    @staticmethod
    def _within(when: Timestamp,
                bounds: tuple[Timestamp | None, Timestamp | None]) -> bool:
        """Is ``when`` inside the closed interval?  Both bounds inclusive."""
        low, high = bounds
        if low is not None and when < low:
            return False
        if high is not None and high < when:
            return False
        return True

    def _bind_time(self, annotation: AnnotationExpr, when: Timestamp,
                   env: Env) -> Env | None:
        """Bind/join the annotation's time slot against ``when``, after
        filtering against the annotation's ``in_range`` restriction."""
        if annotation.in_range is not None and \
                not self._within(when, self._range_bounds(annotation, env)):
            return None
        if annotation.at_literal is not None:
            literal = annotation.at_literal
            if isinstance(literal, TimeVar):
                pinned = self._polling_time(literal, env)
            else:
                pinned = parse_timestamp(literal)
            return env if when == pinned else None
        return self._bind_var(annotation.at_var, when, env)

    @staticmethod
    def _bind_var(name: str | None, value: object, env: Env) -> Env | None:
        """Bind ``name`` to ``value``; join (filter) when already bound."""
        if name is None:
            return env
        if name in env:
            existing = env[name]
            return env if compare(existing, value, "=") or existing == value \
                else None
        extended = dict(env)
        extended[name] = value
        return extended

    def _polling_time(self, timevar: TimeVar, env: Env) -> Timestamp:
        times = env.get(TIMEVARS_KEY)
        if not isinstance(times, dict) or timevar.index not in times:
            raise EvaluationError(
                f"time variable t[{timevar.index}] is only available in "
                f"QSS filter queries (no polling context)")
        return times[timevar.index]

    # ==================================================================
    # Expressions and conditions
    # ==================================================================

    def _value_of(self, binding: Binding) -> object:
        if isinstance(binding, NodeBinding):
            if binding.at is not None:
                return self.view.value_at(binding.node, binding.at)
            return self.view.value(binding.node)
        return binding

    def eval_expr(self, expr: Expr, env: Env) -> Iterator[tuple[object, Env]]:
        """All ``(value, extended env)`` readings of an expression."""
        if isinstance(expr, Literal):
            yield expr.value, env
        elif isinstance(expr, TimeVar):
            yield self._polling_time(expr, env), env
        elif isinstance(expr, VarRef):
            if expr.name not in env:
                # An unbound bare name may be a database name used as an
                # existence test; treat as a zero-step path.
                entry = self.view.resolve_name(expr.name)
                if entry is None:
                    raise EvaluationError(f"unbound variable {expr.name!r}")
                yield self._value_of(NodeBinding(entry)), env
                return
            yield self._value_of(env[expr.name]), env
        elif isinstance(expr, PathExpr):
            for binding, extended in self.eval_path(expr, env):
                yield self._value_of(binding), extended
        else:  # pragma: no cover
            raise EvaluationError(f"unknown expression {expr!r}")

    def solve(self, condition: Condition, env: Env) -> Iterator[Env]:
        """Environments extending ``env`` that satisfy ``condition``.

        Path expressions inside comparisons are existentially quantified;
        variables they introduce flow rightward through ``and`` (Example
        4.5's ``R.<add at T>price = "moderate" and T >= 1Jan97``).
        """
        if isinstance(condition, And):
            for left_env in self.solve(condition.left, env):
                yield from self.solve(condition.right, left_env)
        elif isinstance(condition, Or):
            yield from self.solve(condition.left, env)
            yield from self.solve(condition.right, env)
        elif isinstance(condition, Not):
            if next(self.solve(condition.operand, env), None) is None:
                yield env
        elif isinstance(condition, ExistsCond):
            for binding, extended in self.eval_path(condition.path, env):
                inner = dict(extended)
                inner[condition.var] = binding
                yield from self.solve(condition.condition, inner)
        elif isinstance(condition, LikeCond):
            for value, extended in self.eval_expr(condition.expr, env):
                if like(value, condition.pattern):
                    yield extended
        elif isinstance(condition, Comparison):
            yield from self._solve_comparison(condition, env)
        else:  # pragma: no cover
            raise EvaluationError(f"unknown condition {condition!r}")

    def _solve_comparison(self, condition: Comparison, env: Env) -> Iterator[Env]:
        # Existence test: `path != None-literal` produced by bare paths.
        if isinstance(condition.right, Literal) and condition.right.value is None:
            matched = False
            for _value, extended in self.eval_expr(condition.left, env):
                matched = True
                if condition.op in ("!=", "<>"):
                    yield extended
            if condition.op in ("=", "==") and not matched:
                yield env
            return
        for left_value, left_env in self.eval_expr(condition.left, env):
            for right_value, right_env in self.eval_expr(condition.right, left_env):
                if self._holds(left_value, condition.op, right_value):
                    yield right_env

    @staticmethod
    def _holds(left: object, op: str, right: object) -> bool:
        # Timestamps compare through the coercing comparator too.
        if isinstance(left, Timestamp) or isinstance(right, Timestamp):
            try:
                left_ts = parse_timestamp(left)   # type: ignore[arg-type]
                right_ts = parse_timestamp(right)  # type: ignore[arg-type]
            except Exception:
                return False
            return compare(left_ts, right_ts, op)
        return compare(left, op=op, right=right)

    # ==================================================================
    # Whole queries
    # ==================================================================

    def run(self, query: Query, env: Env | None = None) -> QueryResult:
        """Evaluate ``query`` and return its result rows.

        ``env`` may carry ambient bindings -- the QSS engine passes the
        polling-time mapping under :data:`TIMEVARS_KEY`.
        """
        with span("lorel.eval"):
            return self._run(query, env)

    def prepare(self, query: Query,
                env: Env | None = None) -> tuple[Query, dict[str, str], Env]:
        """Normalize a query for staged evaluation.

        Returns ``(normalized query, result labels, base environment)``
        -- the inputs :meth:`from_envs`, :meth:`satisfies`, and
        :meth:`make_row` consume.  The parallel execution layer
        (:mod:`repro.parallel`) prepares once on the coordinating thread
        and fans the enumeration out over shards of the first from-item's
        bindings.
        """
        base_env: Env = dict(env) if env else {}
        normalized = self.normalize(query)
        return normalized, default_labels(normalized), base_env

    def bind_from_item(self, item: FromItem, env: Env) -> Iterator[Env]:
        """Environments extending ``env`` with one from-item's bindings."""
        for binding, extended in self.eval_path(item.path, env):
            scoped = dict(extended)
            if item.var:
                if item.var in scoped:
                    previous = scoped[item.var]
                    if previous != binding:
                        continue
                scoped[item.var] = binding
            yield scoped

    def bind_from_item_batch(self, item: FromItem,
                             envs: list) -> list:
        """One from-item's bindings for a whole environment batch.

        Frontier traversal: instead of recursing depth-first per
        environment, the batch advances through the item's path one step
        at a time -- every frontier entry expands in data order and its
        matches append in frontier order, so the final frontier is
        exactly the concatenation of the per-environment depth-first
        enumerations :meth:`bind_from_item` would produce.  One list
        append per match replaces a chain of nested generator frames,
        which is where the batched operators win their constant factor.
        """
        path = item.path
        frontier = []
        append = frontier.append
        for env in envs:
            append((self.resolve_start(path, env), env))
        expand = self.expand_step
        for step in path.steps:
            next_frontier: list = []
            append = next_frontier.append
            for binding, env in frontier:
                for pair in expand(binding, step, env):
                    append(pair)
            frontier = next_frontier
        out: list = []
        var = item.var
        emit = out.append
        for binding, env in frontier:
            scoped = dict(env)
            if var:
                if var in scoped and scoped[var] != binding:
                    continue
                scoped[var] = binding
            emit(scoped)
        return out

    def from_envs(self, normalized: Query, index: int,
                  env: Env) -> Iterator[Env]:
        """Environments satisfying the from clause from ``index`` onward.

        Enumeration order is deterministic (data order per item, items
        left to right), which is what makes sharded evaluation
        order-identical to serial evaluation: a contiguous partition of
        the ``index = 0`` bindings, evaluated shard by shard, replays
        exactly this stream.
        """
        if index == len(normalized.from_items):
            yield env
            return
        item = normalized.from_items[index]
        for scoped in self.bind_from_item(item, env):
            yield from self.from_envs(normalized, index + 1, scoped)

    def satisfies(self, normalized: Query, env: Env) -> bool:
        """Does the environment satisfy the normalized where clause?"""
        if normalized.where is None:
            return True
        return next(self.solve(normalized.where, env), None) is not None

    def make_row(self, normalized: Query, env: Env,
                 labels: dict[str, str]) -> Row:
        """Build the result row one satisfying environment emits."""
        return self._make_row(normalized.select, env, labels)

    def project_row(self, select: tuple[SelectItem, ...], env: Env,
                    labels: dict[str, str]) -> Row:
        """Build a row from a bare select list and one environment.

        This is the ``Project`` operator's kernel: the planner's physical
        layer (:mod:`repro.plan.physical`) carries the select list on the
        plan node rather than threading the whole normalized query
        through execution.
        """
        return self._make_row(select, env, labels)

    def _run(self, query: Query, env: Env | None) -> QueryResult:
        normalized, labels, base_env = self.prepare(query, env)
        result = QueryResult()
        for env_candidate in self.from_envs(normalized, 0, base_env):
            if not self.satisfies(normalized, env_candidate):
                continue
            result.add(self.make_row(normalized, env_candidate, labels))
        return result

    def _make_row(self, select: tuple[SelectItem, ...], env: Env,
                  labels: dict[str, str]) -> Row:
        items: list[tuple[str, object]] = []
        for item in select:
            expr = item.expr
            if isinstance(expr, VarRef):
                if expr.name not in env:
                    raise EvaluationError(
                        f"select variable {expr.name!r} is not bound by the "
                        f"from clause")
                binding = env[expr.name]
                label = item.label or labels.get(expr.name, expr.name)
                if isinstance(binding, NodeBinding):
                    items.append((label, ObjectRef(binding.node, binding.at)))
                else:
                    items.append((label, binding))
            elif isinstance(expr, Literal):
                items.append((item.label or "value", expr.value))
            elif isinstance(expr, TimeVar):
                items.append((item.label or "time",
                              self._polling_time(expr, env)))
            else:  # pragma: no cover - normalize() removes path selects
                raise EvaluationError(f"unexpected select expression {expr!r}")
        return Row(tuple(items))
