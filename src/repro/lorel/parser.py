"""Recursive-descent parser for Lorel and Chorel.

One grammar serves both dialects; constructing the parser with
``allow_annotations=False`` (plain Lorel) makes annotation expressions a
parse error, which is how the :class:`~repro.lorel.engine.LorelEngine`
guards against Chorel-only syntax reaching it accidentally.

Grammar (keywords case-insensitive)::

    query      := SELECT selitem ("," selitem)*
                  [FROM fromitem ("," fromitem)*]
                  [WHERE condition]
    selitem    := expr [AS IDENT] | expr IDENT        -- trailing label
    fromitem   := pathexpr [IDENT] | "(" varlist ")" IN funcall
    condition  := orcond
    orcond     := andcond (OR andcond)*
    andcond    := unary (AND unary)*
    unary      := NOT unary | EXISTS IDENT IN pathexpr ":" unary
                | "(" orcond ")" | predicate
    predicate  := expr ( OP expr | LIKE STRING )      -- or bare expr
    expr       := literal | TIMEVAR | pathexpr
    pathexpr   := name step*
    step       := "." [annot] label [annot]
    label      := IDENT | AMP_IDENT | "#" | pattern-with-%
    annot      := "<" kind [AT (IDENT|ts-literal)] [range] [FROM IDENT]
                  [TO IDENT] ">"
    range      := IN "[" [bound] ".." [bound] "]" | SINCE bound
    bound      := ts-literal | TIMEVAR | INT

Cross-time kinds (contextual identifiers, not reserved words):
``changed`` matches any change event (``cre``/``upd`` after a label,
``add``/``rem`` before one), ``last-change`` its most recent event, and
``<at [t1..t2]>`` enumerates a node's *versions* over the range.
``changed-in [a..b]`` is sugar for ``changed in [a..b]``;
``<versions [at T] over [a..b]>`` is sugar for ``<at T in [a..b]>``;
``since t`` is sugar for ``in [t..]``.
"""

from __future__ import annotations

from ..errors import ParseError
from ..timestamps import Timestamp, parse_timestamp
from .ast import (
    And,
    AnnotationExpr,
    Comparison,
    Condition,
    Definition,
    ExistsCond,
    Expr,
    FromItem,
    LikeCond,
    Literal,
    Not,
    Or,
    PathExpr,
    PathStep,
    Query,
    SelectItem,
    TimeRange,
    TimeVar,
    VarRef,
)
from .lexer import tokenize
from .tokens import Token, TokenKind

__all__ = ["Parser", "parse_query", "parse_definition"]

_ARC_ANNOT_KINDS = {"add", "rem", "at", "changed", "last-change"}
_NODE_ANNOT_KINDS = {"cre", "upd", "at", "changed", "last-change"}
_COMPARISON_OPS = {"=", "==", "!=", "<>", "<", "<=", ">", ">="}


class Parser:
    """A recursive-descent parser over the token stream."""

    def __init__(self, text: str, allow_annotations: bool = True) -> None:
        self.text = text
        self.tokens = tokenize(text)
        self.index = 0
        self.allow_annotations = allow_annotations

    # -- token plumbing -------------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        index = min(self.index + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def _advance(self) -> Token:
        token = self.tokens[self.index]
        if token.kind is not TokenKind.EOF:
            self.index += 1
        return token

    def _error(self, message: str) -> ParseError:
        return ParseError(message, self._peek().position)

    def _expect(self, kind: TokenKind, what: str) -> Token:
        token = self._peek()
        if token.kind is not kind:
            raise self._error(f"expected {what}, found {token.text!r}")
        return self._advance()

    def _accept_keyword(self, word: str) -> bool:
        if self._peek().is_keyword(word):
            self._advance()
            return True
        return False

    def _expect_keyword(self, word: str) -> None:
        if not self._accept_keyword(word):
            raise self._error(f"expected {word!r}, found {self._peek().text!r}")

    # -- entry points ---------------------------------------------------

    def parse_query(self) -> Query:
        """Parse a complete query and require end of input."""
        query = self._query()
        if self._peek().kind is not TokenKind.EOF:
            raise self._error(f"trailing input: {self._peek().text!r}")
        return query

    def parse_definition(self) -> Definition:
        """Parse ``define polling|filter query NAME as QUERY``."""
        self._expect_keyword("define")
        kind_token = self._advance()
        if kind_token.text.lower() not in ("polling", "filter"):
            raise self._error("expected 'polling' or 'filter'")
        self._expect_keyword("query")
        name = self._expect(TokenKind.IDENT, "a query name").text
        self._expect_keyword("as")
        query = self._query()
        if self._peek().kind is not TokenKind.EOF:
            raise self._error(f"trailing input: {self._peek().text!r}")
        return Definition(kind_token.text.lower(), name, query)

    # -- clauses ----------------------------------------------------------

    def _query(self) -> Query:
        self._expect_keyword("select")
        select = [self._select_item()]
        while self._peek().kind is TokenKind.COMMA:
            self._advance()
            select.append(self._select_item())

        from_items: list[FromItem] = []
        if self._accept_keyword("from"):
            from_items.append(self._from_item())
            while self._peek().kind is TokenKind.COMMA:
                self._advance()
                from_items.append(self._from_item())

        where = None
        if self._accept_keyword("where"):
            where = self._or_condition()

        return Query(tuple(select), tuple(from_items), where)

    def _select_item(self) -> SelectItem:
        expr = self._expression()
        if self._accept_keyword("as"):
            label = self._label_token("a result label")
            return SelectItem(expr, label)
        return SelectItem(expr)

    def _from_item(self) -> FromItem:
        path = self._path_expr()
        token = self._peek()
        if token.kind is TokenKind.IDENT:
            self._advance()
            return FromItem(path, token.text)
        return FromItem(path)

    # -- conditions -------------------------------------------------------

    def _or_condition(self) -> Condition:
        left = self._and_condition()
        while self._accept_keyword("or"):
            left = Or(left, self._and_condition())
        return left

    def _and_condition(self) -> Condition:
        left = self._unary_condition()
        while self._accept_keyword("and"):
            left = And(left, self._unary_condition())
        return left

    def _unary_condition(self) -> Condition:
        if self._accept_keyword("not"):
            return Not(self._unary_condition())
        if self._accept_keyword("exists"):
            var = self._expect(TokenKind.IDENT, "a variable").text
            self._expect_keyword("in")
            path = self._path_expr()
            self._expect(TokenKind.COLON, "':'")
            return ExistsCond(var, path, self._unary_condition())
        if self._peek().kind is TokenKind.LPAREN:
            self._advance()
            inner = self._or_condition()
            self._expect(TokenKind.RPAREN, "')'")
            return inner
        return self._predicate()

    def _predicate(self) -> Condition:
        left = self._expression()
        token = self._peek()
        if token.is_keyword("like"):
            self._advance()
            pattern = self._expect(TokenKind.STRING, "a pattern string")
            return LikeCond(left, str(pattern.value))
        if token.kind is TokenKind.OP and token.text in _COMPARISON_OPS:
            self._advance()
            right = self._expression()
            return Comparison(left, token.text, right)
        if token.kind is TokenKind.RANGLE:
            self._advance()
            right = self._expression()
            return Comparison(left, ">", right)
        # A bare path expression is an existence test ("has this path").
        return Comparison(left, "!=", Literal(None))

    # -- expressions --------------------------------------------------------

    def _expression(self) -> Expr:
        token = self._peek()
        if token.kind in (TokenKind.INT, TokenKind.REAL, TokenKind.STRING,
                          TokenKind.TIMESTAMP):
            self._advance()
            return Literal(token.value)
        if token.kind is TokenKind.TIMEVAR:
            self._advance()
            return TimeVar(int(token.value))  # type: ignore[arg-type]
        if token.is_keyword("true") or token.is_keyword("false"):
            self._advance()
            return Literal(token.text.lower() == "true")
        if token.kind in (TokenKind.IDENT, TokenKind.AMP_IDENT):
            path = self._path_expr()
            if not path.steps:
                return VarRef(path.start)
            return path
        raise self._error(f"expected an expression, found {token.text!r}")

    # -- path expressions ------------------------------------------------

    def _path_expr(self) -> PathExpr:
        start = self._label_token("a name or variable")
        steps: list[PathStep] = []
        if self._peek().kind is TokenKind.LANGLE:
            # A node annotation directly on the start object (a bound
            # variable): ``NEW<upd at T>``.  Represented as an empty-label
            # step that stays on the current object.
            annotation = self._annotation(_NODE_ANNOT_KINDS, "node")
            steps.append(PathStep("", None, annotation))
        while self._peek().kind is TokenKind.DOT:
            self._advance()
            steps.append(self._path_step())
        return PathExpr(start, tuple(steps))

    def _path_step(self) -> PathStep:
        arc_annotation = None
        if self._peek().kind is TokenKind.LANGLE:
            arc_annotation = self._annotation(_ARC_ANNOT_KINDS, "arc")
        label = self._label_token("an arc label")
        repetition = None
        if self._peek().kind is TokenKind.OP and \
                self._peek().text in ("*", "+"):
            repetition = self._advance().text
            if arc_annotation is not None:
                raise self._error(
                    "arc annotations cannot combine with label closures "
                    f"({label}{repetition})")
        node_annotation = None
        if self._peek().kind is TokenKind.LANGLE:
            node_annotation = self._annotation(_NODE_ANNOT_KINDS, "node")
        return PathStep(label, arc_annotation, node_annotation, repetition)

    def _label_token(self, what: str) -> str:
        """A label: IDENT, AMP_IDENT, '#', quoted string, a %-pattern, or
        an alternation ``(a|b|c)``.

        Adjacent IDENT/'%' fragments with no intervening whitespace fuse
        into one pattern label (``%Lytton%``); contextual keywords (cre,
        upd, add, rem, at, to) are legal labels outside annotations.
        Alternations come from Lorel's general path expressions
        ("path expressions that include regular expressions", Section
        4.1) and are stored as ``a|b|c``.
        """
        token = self._peek()
        if token.kind is TokenKind.HASH:
            self._advance()
            return "#"
        if token.kind is TokenKind.LPAREN:
            self._advance()
            alternatives = [self._label_token("a label alternative")]
            while self._peek().kind is not TokenKind.RPAREN:
                if self._peek().text != "|":
                    raise self._error("expected '|' or ')' in alternation")
                self._advance()
                alternatives.append(self._label_token("a label alternative"))
            self._expect(TokenKind.RPAREN, "')'")
            return "|".join(alternatives)
        if token.kind is TokenKind.STRING:
            self._advance()
            return str(token.value)
        if token.kind is TokenKind.AMP_IDENT:
            self._advance()
            return token.text
        if token.kind is TokenKind.IDENT or token.kind is TokenKind.KEYWORD:
            if token.kind is TokenKind.KEYWORD and token.text.lower() not in (
                    "cre", "upd", "add", "rem", "at", "to", "in", "query",
                    "polling", "filter"):
                raise self._error(f"expected {what}, found keyword {token.text!r}")
            self._advance()
            pieces = [token.text]
            end = token.position + len(token.text)
            # Fuse adjacent fragments for %-patterns.
            while True:
                nxt = self._peek()
                if nxt.kind is TokenKind.IDENT and nxt.position == end \
                        and ("%" in nxt.text or "%" in pieces[-1]):
                    pieces.append(nxt.text)
                    end = nxt.position + len(nxt.text)
                    self._advance()
                else:
                    break
            return "".join(pieces)
        raise self._error(f"expected {what}, found {token.text!r}")

    # -- annotation expressions -------------------------------------------

    def _annotation(self, allowed: set[str], where: str) -> AnnotationExpr:
        if not self.allow_annotations:
            raise self._error(
                "annotation expressions are Chorel syntax; this engine "
                "parses plain Lorel")
        self._expect(TokenKind.LANGLE, "'<'")
        kind_token = self._advance()
        word = kind_token.text.lower()
        require_range = False
        versions = False
        if word == "changed-in":
            # ``<changed-in [a..b]>`` sugar: a changed kind with a
            # mandatory range.
            kind = "changed"
            require_range = True
        elif word in ("versions", "versions-of"):
            # ``<versions [at T] over [a..b]>`` sugar for the virtual
            # range annotation ``<at T in [a..b]>``.
            if where != "node":
                raise self._error(
                    "<versions ...> can only appear after a label")
            kind = "at"
            require_range = True
            versions = True
        else:
            kind = word
        if kind not in allowed:
            raise self._error(
                f"annotation <{kind}> cannot appear {'before' if where == 'arc' else 'after'} "
                f"a label (expected one of {sorted(allowed)})")

        at_var = None
        at_literal = None
        from_var = None
        to_var = None
        in_range = None

        if kind == "at" and not versions:
            # Virtual annotation: <at T>, <at 5Jan97>, <at [a..b]>, or
            # <at T in [a..b]>.
            if self._peek().kind is TokenKind.LBRACKET:
                in_range = self._time_range()
            else:
                at_var, at_literal = self._at_operand()
                in_range = self._range_suffix()
            if in_range is not None and where == "arc":
                raise self._error(
                    "a range-restricted <at> cannot appear before a label "
                    "(versions are enumerated on nodes)")
        else:
            # The range may come before or after the at-operand:
            # <changed in [a..b] at T> and <changed at T in [a..b]> are
            # the same annotation (the latter is the canonical print).
            in_range = self._range_suffix(allow_over=versions)
            if self._accept_keyword("at"):
                at_var, at_literal = self._at_operand()
            if in_range is None:
                in_range = self._range_suffix(require=require_range,
                                              allow_over=versions)
            if kind == "upd":
                if self._accept_keyword("from"):
                    from_var = self._expect(TokenKind.IDENT, "a variable").text
                if self._accept_keyword("to"):
                    to_var = self._expect(TokenKind.IDENT, "a variable").text

        self._expect(TokenKind.RANGLE, "'>'")
        return AnnotationExpr(kind, at_var, from_var, to_var, at_literal,
                              in_range)

    def _at_operand(self) -> tuple[str | None, object | None]:
        token = self._peek()
        if token.kind is TokenKind.IDENT:
            self._advance()
            return token.text, None
        if token.kind is TokenKind.TIMESTAMP:
            self._advance()
            return None, token.value
        if token.kind is TokenKind.TIMEVAR:
            self._advance()
            return None, TimeVar(int(token.value))  # type: ignore[arg-type]
        raise self._error("expected a variable or timestamp after 'at'")

    def _range_suffix(self, *, require: bool = False,
                      allow_over: bool = False) -> TimeRange | None:
        """An optional range restriction: ``in [a..b]`` or ``since t``.

        A bare bracket also opens a range (``<changed-in [a..b]>``,
        ``<versions [a..b]>``) -- the introducing word is optional sugar.
        """
        token = self._peek()
        if token.kind is TokenKind.LBRACKET:
            return self._time_range()
        if token.is_keyword("in") or (
                allow_over and token.kind is TokenKind.IDENT
                and token.text.lower() == "over"):
            self._advance()
            return self._time_range()
        if token.kind is TokenKind.IDENT and token.text.lower() == "since":
            self._advance()
            return TimeRange(self._range_bound(), None)
        if require:
            raise self._error("expected a time range ('in [t1..t2]')")
        return None

    def _time_range(self) -> TimeRange:
        self._expect(TokenKind.LBRACKET, "'['")
        low = None
        if self._peek().kind is not TokenKind.DOT:
            low = self._range_bound()
        self._expect(TokenKind.DOT, "'..'")
        self._expect(TokenKind.DOT, "'..'")
        high = None
        if self._peek().kind is not TokenKind.RBRACKET:
            high = self._range_bound()
        self._expect(TokenKind.RBRACKET, "']'")
        if low is None and high is None:
            raise self._error("a time range needs at least one bound")
        return TimeRange(low, high)

    def _range_bound(self) -> object:
        token = self._peek()
        if token.kind is TokenKind.TIMESTAMP:
            self._advance()
            return token.value
        if token.kind is TokenKind.TIMEVAR:
            self._advance()
            return TimeVar(int(token.value))  # type: ignore[arg-type]
        if token.kind is TokenKind.INT:
            self._advance()
            return parse_timestamp(token.value)
        raise self._error("expected a timestamp bound in a time range")


def parse_query(text: str, allow_annotations: bool = True) -> Query:
    """Parse a query; set ``allow_annotations=False`` for strict Lorel."""
    return Parser(text, allow_annotations).parse_query()


def parse_definition(text: str, allow_annotations: bool = True) -> Definition:
    """Parse a ``define polling/filter query`` statement."""
    return Parser(text, allow_annotations).parse_definition()
