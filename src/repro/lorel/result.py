"""Query results: rows of labeled values, packagable as an OEM database.

Lore packages every query answer as an OEM object (Example 4.4 shows the
``answer`` object for a three-item select).  :class:`QueryResult` keeps the
rows in their raw, convenient Python shape and offers :meth:`QueryResult.as_oem`
to build the answer database -- including the *recursive subobject
closure* that QSS polling relies on: "the result of a polling query
includes (recursively) all subobjects of the objects in the query answer,
and ... the result is 'packaged' as an OEM database" (Section 6).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

from ..oem.model import OEMDatabase
from ..oem.values import COMPLEX, Value, value_repr

__all__ = ["ObjectRef", "Row", "QueryResult"]


@dataclass(frozen=True)
class ObjectRef:
    """A selected *object* (as opposed to a scalar annotation value).

    ``at`` carries the virtual-annotation time context when the object was
    selected through ``<at T>`` (None = current).
    """

    node: str
    at: object = None

    def __str__(self) -> str:
        return f"&{self.node}"


@dataclass(frozen=True)
class Row:
    """One result row: a tuple of ``(label, value)`` pairs.

    Values are :class:`ObjectRef` for selected objects and plain Python
    values (int, float, str, bool, Timestamp) for scalars.
    """

    items: tuple[tuple[str, object], ...]

    def __getitem__(self, label: str) -> object:
        for key, value in self.items:
            if key == label:
                return value
        raise KeyError(label)

    def get(self, label: str, default: object = None) -> object:
        """The first value under ``label``, or ``default``."""
        for key, value in self.items:
            if key == label:
                return value
        return default

    def labels(self) -> list[str]:
        """The labels of this row, in select-clause order."""
        return [key for key, _ in self.items]

    def values(self) -> list[object]:
        """The values of this row, in select-clause order."""
        return [value for _, value in self.items]

    def scalar(self) -> object:
        """The single value of a one-item row (raises otherwise)."""
        if len(self.items) != 1:
            raise ValueError(f"row has {len(self.items)} items, not 1")
        return self.items[0][1]

    def __str__(self) -> str:
        body = ", ".join(f"{key}: {value}" for key, value in self.items)
        return "{" + body + "}"


class QueryResult:
    """An ordered, duplicate-free collection of result rows."""

    def __init__(self, rows: Sequence[Row] = ()) -> None:
        self.rows: list[Row] = []
        self._seen: set[tuple] = set()
        for row in rows:
            self.add(row)

    def add(self, row: Row) -> None:
        """Append ``row`` unless an identical row is already present.

        Lorel results have set semantics; duplicates arise naturally from
        multiple derivations of the same binding.
        """
        key = row.items
        if key not in self._seen:
            self._seen.add(key)
            self.rows.append(row)

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[Row]:
        return iter(self.rows)

    def __bool__(self) -> bool:
        return bool(self.rows)

    def first(self) -> Row:
        """The first row (raises IndexError when empty)."""
        return self.rows[0]

    def column(self, label: str) -> list[object]:
        """All values under ``label`` across rows (missing rows skipped)."""
        sentinel = object()
        values = [row.get(label, sentinel) for row in self.rows]
        return [value for value in values if value is not sentinel]

    def objects(self) -> list[str]:
        """Node ids of every :class:`ObjectRef` in the result, row order."""
        found: list[str] = []
        for row in self.rows:
            for _, value in row.items:
                if isinstance(value, ObjectRef):
                    found.append(value.node)
        return found

    def scalars(self) -> list[object]:
        """The single-column scalar values (for one-item selects)."""
        return [row.scalar() for row in self.rows]

    def __str__(self) -> str:
        if not self.rows:
            return "(empty result)"
        return "\n".join(str(row) for row in self.rows)

    # ------------------------------------------------------------------

    def as_oem(self, source: OEMDatabase,
               root: str = "answer",
               preserve_ids: bool = True) -> OEMDatabase:
        """Package the result as an OEM ``answer`` database.

        Selected objects are copied out of ``source`` together with the
        recursive closure of their subobjects (cycles included); scalars
        become atomic subobjects.  Each row hangs off the answer root: a
        one-item row directly under its label, a multi-item row under a
        ``row`` complex object whose children carry the item labels (the
        shape of Example 4.4's answer object).

        ``preserve_ids`` keeps the source node identifiers in the copy
        (handy for joining results back to the database); pass False to
        mint fresh ones, e.g. when simulating an autonomous source that
        does not expose stable identifiers.
        """
        answer = OEMDatabase(root=root)
        copied: dict[str, str] = {}

        def copy_object(node: str) -> str:
            if node in copied:
                return copied[node]
            new_id = node if (preserve_ids and node not in answer) \
                else answer.new_node_id("a")
            answer.create_node(new_id, source.value(node))
            copied[node] = new_id
            for arc in source.out_arcs(node):
                answer.add_arc(new_id, arc.label, copy_object(arc.target))
            return new_id

        def attach(parent: str, label: str, value: object) -> None:
            if isinstance(value, ObjectRef):
                answer.add_arc(parent, label, copy_object(value.node))
            else:
                node = answer.create_node(answer.new_node_id("a"), value)
                answer.add_arc(parent, label, node)

        for row in self.rows:
            if len(row.items) == 1:
                label, value = row.items[0]
                attach(answer.root, label, value)
            else:
                row_node = answer.create_node(answer.new_node_id("row"), COMPLEX)
                answer.add_arc(answer.root, "row", row_node)
                for label, value in row.items:
                    attach(row_node, label, value)
        return answer
