"""Lorel: the Stanford query language for semistructured data (Section 4.1).

This package implements a from-scratch Lorel substrate sufficient for the
paper: select-from-where queries, path expressions with the ``#`` wildcard
and ``%`` label patterns, the forgiving coercion type system, ``like``,
``exists ... in ... :`` conditions, and a small update language.  Chorel
(:mod:`repro.chorel`) reuses the same lexer, parser, and evaluator with
annotation expressions enabled.

Public surface:

* :class:`~repro.lorel.engine.LorelEngine` -- parse + evaluate over OEM;
* :func:`~repro.lorel.parser.parse_query` -- text to AST;
* :class:`~repro.lorel.result.QueryResult` -- rows + OEM packaging;
* :mod:`~repro.lorel.update` -- update statements compiling to change ops.
"""

from .engine import LorelEngine
from .parser import parse_query, parse_definition
from .result import QueryResult
from .pretty import format_query

__all__ = ["LorelEngine", "parse_query", "parse_definition",
           "QueryResult", "format_query"]
