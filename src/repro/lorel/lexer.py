"""The tokenizer shared by Lorel and Chorel.

Notable lexical quirks this lexer must handle:

* timestamp literals such as ``4Jan97`` start with digits but are not
  numbers -- the lexer scans the longest identifier-ish run after a number
  and checks :func:`repro.timestamps.is_timestamp_literal`;
* ``<`` is both the comparison operator and the opener of a Chorel
  annotation expression.  The lexer emits a structural ``LANGLE`` when the
  character is *immediately* followed by an annotation keyword (``cre``,
  ``upd``, ``add``, ``rem``, ``at``, or a cross-time word such as
  ``changed`` / ``last-change`` / ``versions``) and a comparison ``OP``
  otherwise; the parser double-checks with context;
* QSS filter queries use special time variables ``t[0]``, ``t[-1]`` ...
  (Section 6), lexed as single ``TIMEVAR`` tokens;
* encoding labels start with ``&`` (``&val``, ``&price-history``) and
  labels may contain ``-`` (``nearby-eats``), so ``-`` only starts a
  number/operator when it cannot continue an identifier.
"""

from __future__ import annotations

import re

from ..errors import LexError
from ..timestamps import is_timestamp_literal, parse_timestamp
from .tokens import KEYWORDS, Token, TokenKind

__all__ = ["tokenize"]

_IDENT_START = re.compile(r"[A-Za-z_]")
_IDENT_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_\-]*")
_AMP_IDENT_RE = re.compile(r"&[A-Za-z_][A-Za-z0-9_\-]*")
_NUMBER_RE = re.compile(r"\d+(\.\d+)?([eE][-+]?\d+)?")
_TS_TAIL_RE = re.compile(r"[A-Za-z0-9\-]*")
_TIMEVAR_RE = re.compile(r"t\[\s*(-?\d+)\s*\]")
_ANNOT_WORDS = ("cre", "upd", "add", "rem", "at",
                # cross-time annotation kinds (contextual identifiers):
                "changed", "last-change", "versions")
# The longest annotation word plus one lookahead character decides how far
# the LANGLE peek must reach past optional whitespace.
_ANNOT_PEEK = max(len(word) for word in _ANNOT_WORDS) + 2


def tokenize(text: str) -> list[Token]:
    """Tokenize ``text``; raises :class:`~repro.errors.LexError` on bad input."""
    tokens: list[Token] = []
    pos = 0
    length = len(text)

    while pos < length:
        ch = text[pos]

        if ch in " \t\r\n":
            pos += 1
            continue

        if ch == "-" and text.startswith("--", pos):  # SQL-style comment
            newline = text.find("\n", pos)
            pos = length if newline < 0 else newline
            continue

        # QSS time variables: t[0], t[-1] ...
        if ch == "t":
            match = _TIMEVAR_RE.match(text, pos)
            if match:
                tokens.append(Token(TokenKind.TIMEVAR, match.group(0),
                                    int(match.group(1)), pos))
                pos = match.end()
                continue

        if _IDENT_START.match(ch):
            match = _IDENT_RE.match(text, pos)
            word = match.group(0)
            lowered = word.lower()
            if lowered in KEYWORDS:
                kind = TokenKind.KEYWORD
                value: object = lowered
            else:
                kind = TokenKind.IDENT
                value = word
            tokens.append(Token(kind, word, value, pos))
            pos = match.end()
            continue

        if ch == "&":
            match = _AMP_IDENT_RE.match(text, pos)
            if not match:
                raise LexError("stray '&'", pos)
            tokens.append(Token(TokenKind.AMP_IDENT, match.group(0),
                                match.group(0), pos))
            pos = match.end()
            continue

        if ch.isdigit():
            # Try a timestamp literal first: digits followed by letters
            # (4Jan97) or an ISO / slash date shape.
            number = _NUMBER_RE.match(text, pos)
            tail = _TS_TAIL_RE.match(text, number.end())
            candidate = text[pos:tail.end()]
            if candidate != number.group(0) or "-" in candidate:
                if is_timestamp_literal(candidate):
                    tokens.append(Token(TokenKind.TIMESTAMP, candidate,
                                        parse_timestamp(candidate), pos))
                    pos = tail.end()
                    continue
                # A run like 12abc that is not a timestamp is an error.
                if candidate != number.group(0):
                    raise LexError(f"malformed literal {candidate!r}", pos)
            raw = number.group(0)
            if "." in raw or "e" in raw or "E" in raw:
                tokens.append(Token(TokenKind.REAL, raw, float(raw), pos))
            else:
                tokens.append(Token(TokenKind.INT, raw, int(raw), pos))
            pos = number.end()
            continue

        if ch == "-" and pos + 1 < length and text[pos + 1].isdigit():
            number = _NUMBER_RE.match(text, pos + 1)
            raw = text[pos:number.end()]
            if "." in raw or "e" in raw or "E" in raw:
                tokens.append(Token(TokenKind.REAL, raw, float(raw), pos))
            else:
                tokens.append(Token(TokenKind.INT, raw, int(raw), pos))
            pos = number.end()
            continue

        if ch == '"' or ch == "'":
            end = pos + 1
            chunks: list[str] = []
            while end < length and text[end] != ch:
                if text[end] == "\\" and end + 1 < length:
                    escape = text[end + 1]
                    chunks.append({"n": "\n", "t": "\t"}.get(escape, escape))
                    end += 2
                else:
                    chunks.append(text[end])
                    end += 1
            if end >= length:
                raise LexError("unterminated string literal", pos)
            tokens.append(Token(TokenKind.STRING, text[pos:end + 1],
                                "".join(chunks), pos))
            pos = end + 1
            continue

        if ch == "<":
            rest = text[pos + 1:pos + 1 + _ANNOT_PEEK].lstrip().lower()
            if any(rest.startswith(word) for word in _ANNOT_WORDS):
                tokens.append(Token(TokenKind.LANGLE, "<", "<", pos))
                pos += 1
                continue
            for op in ("<=", "<>", "<"):
                if text.startswith(op, pos):
                    tokens.append(Token(TokenKind.OP, op, op, pos))
                    pos += len(op)
                    break
            continue

        if ch == ">":
            if text.startswith(">=", pos):
                tokens.append(Token(TokenKind.OP, ">=", ">=", pos))
                pos += 2
            else:
                # RANGLE vs OP is resolved by the parser from context; emit
                # a RANGLE -- the parser treats it as '>' in expressions.
                tokens.append(Token(TokenKind.RANGLE, ">", ">", pos))
                pos += 1
            continue

        if ch in "=!":
            for op in ("!=", "==", "="):
                if text.startswith(op, pos):
                    tokens.append(Token(TokenKind.OP, op, op, pos))
                    pos += len(op)
                    break
            else:
                raise LexError(f"unexpected character {ch!r}", pos)
            continue

        if ch in "|*+":  # GPE operators: (a|b), label*, label+
            tokens.append(Token(TokenKind.OP, ch, ch, pos))
            pos += 1
            continue

        simple = {
            ".": TokenKind.DOT,
            ",": TokenKind.COMMA,
            ":": TokenKind.COLON,
            "(": TokenKind.LPAREN,
            ")": TokenKind.RPAREN,
            "[": TokenKind.LBRACKET,
            "]": TokenKind.RBRACKET,
            "#": TokenKind.HASH,
        }.get(ch)
        if simple is not None:
            tokens.append(Token(simple, ch, ch, pos))
            pos += 1
            continue

        if ch == "%":
            # '%' only appears inside label patterns; the parser assembles
            # them from IDENT/'%' runs, so emit it as an IDENT fragment.
            tokens.append(Token(TokenKind.IDENT, "%", "%", pos))
            pos += 1
            continue

        raise LexError(f"unexpected character {ch!r}", pos)

    tokens.append(Token(TokenKind.EOF, "", None, length))
    return tokens
