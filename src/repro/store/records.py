"""Record payloads: the JSON wire form of origins and change sets.

Two record kinds appear in a history log:

* ``origin`` -- the first record of every segment generation: the
  textual OEM serialization of ``O0`` (or, after horizon compaction,
  of the promoted checkpoint state).  Everything the log encodes is a
  delta against this snapshot.
* ``changeset`` -- one timestamped change set: the timestamp's ticks
  plus the four basic operations in list form.

Operations encode positionally (``["cre", node, value]``,
``["upd", node, value]``, ``["add"|"rem", source, label, target]``);
values reuse JSON scalars directly, with two tagged escapes for the
value-domain members JSON lacks: ``{"$ts": ticks}`` for timestamps and
``{"$c": 1}`` for the reserved complex value.  The encoding is pure
data -- decoding rebuilds the frozen :mod:`repro.oem.changes` dataclasses
and re-runs :class:`~repro.oem.history.ChangeSet`'s conflict checks, so
a hand-edited (or bit-flipped-but-CRC-colliding) record still cannot
smuggle an invalid set into replay.
"""

from __future__ import annotations

import json

from ..errors import StoreCorruptionError
from ..oem.changes import AddArc, ChangeOp, CreNode, RemArc, UpdNode
from ..oem.history import ChangeSet
from ..oem.model import OEMDatabase
from ..oem.serialize import dumps, loads
from ..oem.values import COMPLEX
from ..timestamps import Timestamp

__all__ = ["encode_origin", "encode_change_set", "decode_record",
           "encode_value", "decode_value"]


def encode_value(value: object) -> object:
    """One atomic-or-complex node value as a JSON value."""
    if value is COMPLEX:
        return {"$c": 1}
    if isinstance(value, Timestamp):
        return {"$ts": value.ticks}
    return value


def decode_value(value: object) -> object:
    """Inverse of :func:`encode_value`."""
    if isinstance(value, dict):
        if "$c" in value:
            return COMPLEX
        if "$ts" in value:
            return Timestamp(int(value["$ts"]))
        raise StoreCorruptionError(f"unknown tagged value {value!r}")
    return value


def _encode_op(op: ChangeOp) -> list:
    if isinstance(op, CreNode):
        return ["cre", op.node, encode_value(op.value)]
    if isinstance(op, UpdNode):
        return ["upd", op.node, encode_value(op.value)]
    if isinstance(op, AddArc):
        return ["add", op.source, op.label, op.target]
    if isinstance(op, RemArc):
        return ["rem", op.source, op.label, op.target]
    raise StoreCorruptionError(f"unknown change operation {op!r}")


def _decode_op(item: object) -> ChangeOp:
    try:
        kind = item[0]
        if kind == "cre":
            return CreNode(item[1], decode_value(item[2]))
        if kind == "upd":
            return UpdNode(item[1], decode_value(item[2]))
        if kind == "add":
            return AddArc(item[1], item[2], item[3])
        if kind == "rem":
            return RemArc(item[1], item[2], item[3])
    except (IndexError, TypeError, KeyError) as exc:
        raise StoreCorruptionError(f"malformed operation {item!r}") from exc
    raise StoreCorruptionError(f"unknown operation kind {item!r}")


def encode_origin(db: OEMDatabase) -> bytes:
    """The origin record: the snapshot every later delta builds on."""
    return json.dumps({"kind": "origin", "oem": dumps(db)},
                      separators=(",", ":")).encode("utf-8")


def encode_change_set(when: Timestamp, change_set: ChangeSet) -> bytes:
    """One timestamped change set as a record payload."""
    return json.dumps(
        {"kind": "changeset", "at": when.ticks,
         "ops": [_encode_op(op) for op in change_set.canonical_order()]},
        separators=(",", ":")).encode("utf-8")


def decode_record(payload: bytes) -> tuple[str, object]:
    """Decode one payload to ``("origin", OEMDatabase)`` or
    ``("changeset", (Timestamp, ChangeSet))``.

    Structural problems raise :class:`~repro.errors.StoreCorruptionError`
    -- the caller (recovery, fsck) maps them to the record's position.
    """
    try:
        record = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise StoreCorruptionError(f"undecodable record: {exc}") from exc
    if not isinstance(record, dict):
        raise StoreCorruptionError("record is not a JSON object")
    kind = record.get("kind")
    if kind == "origin":
        try:
            return "origin", loads(record["oem"])
        except Exception as exc:
            raise StoreCorruptionError(
                f"origin snapshot failed to parse: {exc}") from exc
    if kind == "changeset":
        try:
            when = Timestamp(int(record["at"]))
            ops = [_decode_op(item) for item in record["ops"]]
            return "changeset", (when, ChangeSet(ops))
        except StoreCorruptionError:
            raise
        except Exception as exc:
            raise StoreCorruptionError(
                f"change-set record failed to decode: {exc}") from exc
    raise StoreCorruptionError(f"unknown record kind {kind!r}")
