"""``repro.store``: the durable, log-structured DOEM store.

The in-memory reproduction meets disk here: OEM histories persist as
append-only, checksummed change-log segments with periodic materialized
snapshot checkpoints, so ``Ot(D)`` resolves as
nearest-checkpoint-load + bounded delta replay instead of
replay-from-origin, and a restart (CLI or QSS server) recovers every
served history without re-polling its sources.

Layering, bottom up:

* :mod:`.segment` -- length-prefixed CRC-framed record files and the
  torn-tail scan that crash recovery is built on;
* :mod:`.records` -- the JSON payloads (origin snapshots, timestamped
  change sets);
* :mod:`.checkpoint` -- materialized ``Ot`` snapshots plus the hybrid
  spacing policy (query-time replay budget vs snapshot size);
* :mod:`.log` -- :class:`HistoryLog`: one history's segments,
  checkpoints, recovery, time travel, and compaction;
* :mod:`.store` -- :class:`ChangeLogStore`: named histories under one
  root, the single-writer lock, and the process-shared
  :func:`open_store` handle cache.

See ``docs/storage.md`` for the formats and recovery semantics.
"""

from .checkpoint import CheckpointPolicy, CheckpointRef
from .log import DEFAULT_SEGMENT_BYTES, FSYNC_POLICIES, HistoryLog, \
    StoreStats, fsck_log
from .segment import SegmentScan, SegmentWriter
from .store import ChangeLogStore, StoreLock, close_store, is_store, \
    open_store, sanitize_name

__all__ = [
    "ChangeLogStore",
    "CheckpointPolicy",
    "CheckpointRef",
    "DEFAULT_SEGMENT_BYTES",
    "FSYNC_POLICIES",
    "HistoryLog",
    "SegmentScan",
    "SegmentWriter",
    "StoreLock",
    "StoreStats",
    "close_store",
    "fsck_log",
    "is_store",
    "open_store",
    "sanitize_name",
]
