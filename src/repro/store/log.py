"""The per-history change log: segments + checkpoints + recovery.

A :class:`HistoryLog` is one OEM history made durable inside a single
directory::

    <dir>/CURRENT                  {"generation": g} -- the live generation
    <dir>/seg-<gen>-<idx>.log      append-only segments of generation g
    <dir>/ckpt-<seq>.oem           materialized snapshot checkpoints

The first record of a generation's first segment is the *origin* (the
``O0`` snapshot the deltas build on); every later record is one
timestamped change set.  Appends go to the newest segment, which rolls
at ``segment_bytes``; the fsync policy is ``"always"`` (fsync after
every append -- a record is durable when :meth:`append` returns) or
``"roll"`` (fsync only at segment rolls and :meth:`flush`, trading the
tail of the current segment for throughput).

**Time travel.**  ``Ot(D)`` resolves as nearest-checkpoint-load plus
bounded delta replay: :meth:`snapshot_at` finds the newest checkpoint at
``t0 <= t``, loads it, and replays only the change sets in ``(t0, t]``
-- never the whole log.  The :class:`~.checkpoint.CheckpointPolicy`
bounds how many operations that replay can span.

**Recovery.**  Opening for writing truncates a torn tail in the *last*
segment back to the last durable record (counted and logged as a
``store_recovered`` event); corruption anywhere else -- an interior
segment, an interior record -- is not silently repairable and raises
:class:`~repro.errors.StoreCorruptionError`.  :func:`fsck_log` performs
the same analysis without loading the history, reporting (and with
``repair=True`` fixing) what it finds.

**Compaction.**  :meth:`compact` rewrites the live segments into a new
generation and atomically swaps ``CURRENT`` -- with no horizon it only
consolidates (every ``Ot`` still resolves exactly); with ``before=t`` it
promotes the state at the greatest entry ``<= t`` to the new origin and
drops the records and checkpoints before it, so history at or after the
horizon stays exact while earlier times collapse onto the new origin.
"""

from __future__ import annotations

import json
import os
from collections import OrderedDict
from pathlib import Path

from ..errors import InvalidChangeError, InvalidHistoryError, \
    StoreCorruptionError, StoreError
from ..obs.events import emit_event
from ..obs.metrics import CounterField, registry as metrics_registry
from ..oem.history import ChangeSet, OEMHistory
from ..oem.model import OEMDatabase
from ..timestamps import NEG_INF, Timestamp, parse_timestamp
from .checkpoint import CheckpointPolicy, CheckpointRef, read_checkpoint, \
    scan_checkpoints, write_checkpoint
from .records import decode_record, encode_change_set, encode_origin
from .segment import FRAME_HEADER, HEADER_SIZE, SegmentScan, SegmentWriter

__all__ = ["HistoryLog", "StoreStats", "fsck_log",
           "DEFAULT_SEGMENT_BYTES", "FSYNC_POLICIES"]

DEFAULT_SEGMENT_BYTES = 4 * 1024 * 1024
FSYNC_POLICIES = ("always", "roll")

_CURRENT = "CURRENT"
_SEG_PREFIX = "seg-"
_SEG_SUFFIX = ".log"

# Parsed checkpoints kept in memory per log: time-travel workloads probe
# a handful of distinct cutoffs repeatedly, and re-parsing the same
# checkpoint file per query would erase most of the checkpoint win.
_CKPT_CACHE_SLOTS = 8


class StoreStats:
    """Counters for the durable store, family ``repro.store``.

    One instance per :class:`HistoryLog` (the store shares each log's
    stats); the registry sums live instances, so ``repro.store.appends``
    in a metrics dump is the process-wide total.
    """

    _FIELDS = ("appends", "ops_appended", "bytes_written", "fsyncs",
               "segment_rolls", "checkpoints_written", "checkpoint_loads",
               "checkpoints_skipped", "snapshot_queries",
               "snapshots_from_checkpoint", "snapshots_from_origin",
               "replayed_sets", "compactions", "recovered_tails")

    appends = CounterField()
    ops_appended = CounterField()
    bytes_written = CounterField()
    fsyncs = CounterField()
    segment_rolls = CounterField()
    checkpoints_written = CounterField()
    checkpoint_loads = CounterField()
    checkpoints_skipped = CounterField()
    snapshot_queries = CounterField()
    snapshots_from_checkpoint = CounterField()
    snapshots_from_origin = CounterField()
    replayed_sets = CounterField()
    compactions = CounterField()
    recovered_tails = CounterField()

    def __init__(self) -> None:
        self._metrics = metrics_registry().group("repro.store", self._FIELDS)

    def reset(self) -> None:
        self._metrics.reset()

    def as_dict(self) -> dict:
        return {name: getattr(self, name) for name in self._FIELDS}

    def describe(self) -> str:
        return (f"appends={self.appends} bytes={self.bytes_written} "
                f"rolls={self.segment_rolls} "
                f"ckpt_written={self.checkpoints_written} "
                f"ckpt_loads={self.checkpoint_loads} "
                f"snapshots={self.snapshot_queries} "
                f"replayed_sets={self.replayed_sets} "
                f"compactions={self.compactions} "
                f"recovered={self.recovered_tails}")


def _segment_path(directory: Path, generation: int, index: int) -> Path:
    return directory / f"{_SEG_PREFIX}{generation:04d}-{index:06d}{_SEG_SUFFIX}"


def _segment_key(path: Path) -> tuple[int, int] | None:
    stem = path.name[len(_SEG_PREFIX):-len(_SEG_SUFFIX)]
    generation, _, index = stem.partition("-")
    try:
        return int(generation), int(index)
    except ValueError:
        return None


def _list_segments(directory: Path, generation: int) -> list[Path]:
    found = []
    for path in directory.glob(f"{_SEG_PREFIX}*{_SEG_SUFFIX}"):
        key = _segment_key(path)
        if key is not None and key[0] == generation:
            found.append((key[1], path))
    return [path for _, path in sorted(found)]


def _fsync_dir(directory: Path) -> None:
    fd = os.open(directory, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def _read_current(directory: Path) -> int:
    path = directory / _CURRENT
    try:
        manifest = json.loads(path.read_text("utf-8"))
        return int(manifest["generation"])
    except FileNotFoundError:
        raise
    except (OSError, ValueError, KeyError, TypeError) as exc:
        raise StoreCorruptionError(
            f"{path}: unreadable CURRENT manifest: {exc}") from exc


def _write_current(directory: Path, generation: int) -> None:
    tmp = directory / (_CURRENT + ".tmp")
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump({"generation": generation}, handle)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, directory / _CURRENT)
    _fsync_dir(directory)


class HistoryLog:
    """One durable OEM history (see module docstring).

    Construct directly over a directory; the :class:`~.store.ChangeLogStore`
    is the usual owner.  ``mode`` is ``"rw"`` (recover the tail, accept
    appends) or ``"ro"`` (never writes -- a torn tail is skipped in
    memory, left on disk).  A missing ``CURRENT`` means a fresh log,
    which requires ``mode="rw"`` and an ``origin`` database.
    """

    def __init__(self, directory: str | os.PathLike, mode: str = "rw", *,
                 origin: OEMDatabase | None = None,
                 policy: CheckpointPolicy | None = None,
                 fsync_policy: str = "always",
                 segment_bytes: int = DEFAULT_SEGMENT_BYTES,
                 stats: StoreStats | None = None) -> None:
        if mode not in ("rw", "ro"):
            raise StoreError(f"unknown log mode {mode!r}")
        if fsync_policy not in FSYNC_POLICIES:
            raise StoreError(f"unknown fsync policy {fsync_policy!r} "
                             f"(one of {FSYNC_POLICIES})")
        self.directory = Path(directory)
        self.mode = mode
        self.policy = policy if policy is not None else CheckpointPolicy()
        self.fsync_policy = fsync_policy
        self.segment_bytes = segment_bytes
        self.stats = stats if stats is not None else StoreStats()
        self._writer: SegmentWriter | None = None
        self._entries: list[tuple[Timestamp, ChangeSet]] = []
        self._ckpt_cache: OrderedDict[int, OEMDatabase] = OrderedDict()
        self.checkpoint_problems: list[str] = []
        self.recovered_tail: str | None = None

        if (self.directory / _CURRENT).exists():
            self._load()
        else:
            if mode != "rw":
                raise StoreError(f"{self.directory}: no log here "
                                 f"(CURRENT missing)")
            if origin is None:
                raise StoreError(f"{self.directory}: creating a log "
                                 f"requires an origin database")
            self._initialize(origin)

    # -- construction and recovery ---------------------------------------

    def _initialize(self, origin: OEMDatabase) -> None:
        self.directory.mkdir(parents=True, exist_ok=True)
        self.generation = 1
        self._origin = origin.copy()
        self._tip = origin.copy()
        path = _segment_path(self.directory, 1, 1)
        writer = SegmentWriter(path)
        written = writer.append(encode_origin(self._origin))
        writer.fsync()
        self.stats.bytes_written += written
        self.stats.fsyncs += 1
        self._segments = [path]
        self._writer = writer
        self._checkpoints: list[CheckpointRef] = []
        self._ckpt_seq = 0
        self._ops_since_ckpt = 0
        self._sets_since_ckpt = 0
        _write_current(self.directory, 1)
        _fsync_dir(self.directory)

    def _load(self) -> None:
        self.generation = _read_current(self.directory)
        self._segments = _list_segments(self.directory, self.generation)
        if not self._segments:
            raise StoreCorruptionError(
                f"{self.directory}: CURRENT points at generation "
                f"{self.generation} but no segments exist")
        origin: OEMDatabase | None = None
        last_scan: SegmentScan | None = None
        for position, path in enumerate(self._segments):
            scan = SegmentScan(path)
            for payload in scan:
                try:
                    kind, value = decode_record(payload)
                except StoreCorruptionError as exc:
                    raise StoreCorruptionError(
                        f"{path.name}: {exc}") from exc
                if kind == "origin":
                    if origin is not None:
                        raise StoreCorruptionError(
                            f"{path.name}: second origin record")
                    origin = value
                    self._tip = origin.copy()
                else:
                    when, change_set = value
                    if origin is None:
                        raise StoreCorruptionError(
                            f"{path.name}: change set precedes the origin")
                    if self._entries and when <= self._entries[-1][0]:
                        raise StoreCorruptionError(
                            f"{path.name}: timestamps out of order "
                            f"({when} after {self._entries[-1][0]})")
                    try:
                        change_set.apply_to(self._tip)
                    except (InvalidChangeError, InvalidHistoryError) as exc:
                        raise StoreCorruptionError(
                            f"{path.name}: change set at {when} does not "
                            f"apply: {exc}") from exc
                    self._entries.append((when, change_set))
            if scan.torn is not None and position < len(self._segments) - 1:
                raise StoreCorruptionError(
                    f"{path.name}: interior segment is corrupt "
                    f"({scan.torn}) with later segments present")
            last_scan = scan
        if origin is None:
            raise StoreCorruptionError(
                f"{self._segments[0].name}: no origin record")
        self._origin = origin

        if self.mode == "rw":
            assert last_scan is not None
            if last_scan.torn is not None:
                self.recovered_tail = last_scan.torn
                self.stats.recovered_tails += 1
                emit_event("store_recovered", level="warning",
                           log=str(self.directory.name),
                           segment=self._segments[-1].name,
                           reason=last_scan.torn,
                           truncated_to=last_scan.good_bytes)
            self._writer = SegmentWriter(self._segments[-1],
                                         resume_at=last_scan.good_bytes)
        elif last_scan is not None and last_scan.torn is not None:
            # Read-only: note the torn tail but leave the bytes alone.
            self.recovered_tail = last_scan.torn

        self._checkpoints, self.checkpoint_problems = \
            scan_checkpoints(self.directory)
        self._ckpt_seq = max((ref.seq for ref in self._checkpoints),
                             default=0)
        last_ckpt = self._checkpoints[-1].at if self._checkpoints else None
        self._ops_since_ckpt = 0
        self._sets_since_ckpt = 0
        for when, change_set in self._entries:
            if last_ckpt is None or when > last_ckpt:
                self._ops_since_ckpt += len(change_set)
                self._sets_since_ckpt += 1

    # -- views ------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    def origin(self) -> OEMDatabase:
        """A copy of the generation's base snapshot."""
        return self._origin.copy()

    def tip(self) -> OEMDatabase:
        """A copy of the current (latest) snapshot."""
        return self._tip.copy()

    def tip_nodes(self) -> int:
        return len(self._tip)

    def entries(self) -> tuple[tuple[Timestamp, ChangeSet], ...]:
        return tuple(self._entries)

    def timestamps(self) -> list[Timestamp]:
        return [when for when, _ in self._entries]

    def last_timestamp(self) -> Timestamp | None:
        return self._entries[-1][0] if self._entries else None

    def history(self) -> OEMHistory:
        """The log's entries as an in-memory :class:`OEMHistory`."""
        history = OEMHistory()
        for when, change_set in self._entries:
            history.append(when, change_set)
        return history

    def get_doem(self):
        """``D(O, H)``: the full annotated DOEM database.

        DOEM construction is inherently a full fold of the history --
        annotations encode every change -- so this replays the whole
        generation; checkpoints accelerate :meth:`snapshot_at`, not this.
        """
        from ..doem.build import build_doem
        return build_doem(self._origin, self.history())

    def checkpoints(self) -> tuple[CheckpointRef, ...]:
        return tuple(self._checkpoints)

    def segments(self) -> tuple[Path, ...]:
        return tuple(self._segments)

    # -- appending ---------------------------------------------------------

    def _require_writer(self) -> SegmentWriter:
        if self.mode != "rw":
            raise StoreError(f"{self.directory}: log opened read-only")
        if self._writer is None:
            raise StoreError(f"{self.directory}: log is closed")
        return self._writer

    def append(self, when: object, change_set: ChangeSet) -> Timestamp:
        """Durably append one timestamped change set.

        The set is validated against the tip snapshot *before* any bytes
        are written, so an invalid set can never land in the log.  With
        the ``"always"`` fsync policy the record is on stable storage
        when this returns.
        """
        writer = self._require_writer()
        timestamp = parse_timestamp(when)
        if not isinstance(change_set, ChangeSet):
            change_set = ChangeSet(change_set)
        last = self.last_timestamp()
        if last is not None and timestamp <= last:
            raise InvalidHistoryError(
                f"history timestamps must be strictly increasing: "
                f"{timestamp} does not follow {last}")
        new_tip = self._tip.copy()
        change_set.apply_to(new_tip)  # raises InvalidChangeError if invalid

        payload = encode_change_set(timestamp, change_set)
        frame_size = FRAME_HEADER.size + len(payload)
        if (writer.size + frame_size > self.segment_bytes
                and writer.size > HEADER_SIZE):
            writer = self._roll()
        written = writer.append(payload)
        if self.fsync_policy == "always":
            writer.fsync()
            self.stats.fsyncs += 1

        self._entries.append((timestamp, change_set))
        self._tip = new_tip
        self.stats.appends += 1
        self.stats.ops_appended += len(change_set)
        self.stats.bytes_written += written
        self._ops_since_ckpt += len(change_set)
        self._sets_since_ckpt += 1
        if self.policy.due(self._ops_since_ckpt, self._sets_since_ckpt,
                           len(self._tip)):
            self.write_checkpoint()
        return timestamp

    def extend(self, history: OEMHistory) -> int:
        """Append every entry of ``history``; returns how many landed."""
        count = 0
        for when, change_set in history:
            self.append(when, change_set)
            count += 1
        return count

    def _roll(self) -> SegmentWriter:
        """Seal the active segment and start the next one."""
        writer = self._require_writer()
        writer.close(sync=True)
        self.stats.fsyncs += 1
        self.stats.segment_rolls += 1
        key = _segment_key(self._segments[-1])
        assert key is not None
        path = _segment_path(self.directory, self.generation, key[1] + 1)
        self._writer = SegmentWriter(path)
        self._segments.append(path)
        _fsync_dir(self.directory)
        return self._writer

    def flush(self) -> None:
        """fsync the active segment (a no-op on read-only logs)."""
        if self.mode == "rw" and self._writer is not None:
            self._writer.fsync()
            self.stats.fsyncs += 1

    def close(self) -> None:
        if self._writer is not None:
            self._writer.close(sync=True)
            self._writer = None

    def __enter__(self) -> "HistoryLog":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- checkpoints -------------------------------------------------------

    def write_checkpoint(self) -> CheckpointRef | None:
        """Materialize the tip as a checkpoint (idempotent per time)."""
        self._require_writer()
        at = self.last_timestamp()
        if at is None:
            return None  # the origin is already the tip
        if self._checkpoints and self._checkpoints[-1].at == at:
            return self._checkpoints[-1]
        self._ckpt_seq += 1
        ref, size = write_checkpoint(self.directory, self._ckpt_seq, at,
                                     self._tip)
        self._checkpoints.append(ref)
        self._checkpoints.sort(key=lambda r: (r.at, r.seq))
        self._ops_since_ckpt = 0
        self._sets_since_ckpt = 0
        self.stats.checkpoints_written += 1
        self.stats.bytes_written += size
        self.stats.fsyncs += 1
        emit_event("checkpoint_written", level="info",
                   log=str(self.directory.name), seq=ref.seq,
                   at=str(at), nodes=len(self._tip), bytes=size)
        return ref

    def _load_checkpoint(self, ref: CheckpointRef) -> OEMDatabase | None:
        cached = self._ckpt_cache.get(ref.seq)
        if cached is not None:
            self._ckpt_cache.move_to_end(ref.seq)
            return cached.copy()
        try:
            _, snapshot = read_checkpoint(ref.path)
        except StoreCorruptionError as exc:
            self.stats.checkpoints_skipped += 1
            self.checkpoint_problems.append(str(exc))
            return None
        self.stats.checkpoint_loads += 1
        self._ckpt_cache[ref.seq] = snapshot
        while len(self._ckpt_cache) > _CKPT_CACHE_SLOTS:
            self._ckpt_cache.popitem(last=False)
        return snapshot.copy()

    def nearest_checkpoint(self, when: object) \
            -> tuple[Timestamp, OEMDatabase] | None:
        """The newest durable checkpoint at or before ``when``, loaded.

        Unreadable checkpoints are skipped (falling back to the next
        older); returns ``None`` when no usable checkpoint precedes
        ``when``.
        """
        cutoff = parse_timestamp(when)
        for ref in reversed(self._checkpoints):
            if ref.at <= cutoff:
                snapshot = self._load_checkpoint(ref)
                if snapshot is not None:
                    return ref.at, snapshot
        return None

    # -- time travel -------------------------------------------------------

    def snapshot_at(self, when: object, *,
                    use_checkpoints: bool = True) -> OEMDatabase:
        """``Ot(D)`` by nearest-checkpoint load + bounded delta replay.

        With ``use_checkpoints=False`` the replay starts at the origin
        (the pre-checkpoint resolution path, kept for the equivalence
        tests and the benchmark's control arm).
        """
        cutoff = parse_timestamp(when)
        self.stats.snapshot_queries += 1
        base_time: Timestamp = NEG_INF
        snapshot: OEMDatabase | None = None
        if use_checkpoints:
            nearest = self.nearest_checkpoint(cutoff)
            if nearest is not None:
                base_time, snapshot = nearest
        if snapshot is None:
            snapshot = self._origin.copy()
            self.stats.snapshots_from_origin += 1
        else:
            self.stats.snapshots_from_checkpoint += 1
        replayed = 0
        for when_i, change_set in self._entries:
            if when_i > cutoff:
                break
            if when_i > base_time:
                change_set.apply_to(snapshot)
                replayed += 1
        self.stats.replayed_sets += replayed
        return snapshot

    # -- compaction --------------------------------------------------------

    def compact(self, before: object | None = None) -> dict:
        """Rewrite the live generation; returns a summary dict.

        Without ``before``, this consolidates every segment into one new
        generation -- every ``Ot`` resolves exactly as before.  With
        ``before=t``, the state at the greatest entry ``<= t`` becomes
        the new origin: times at or after that base stay exact, earlier
        times collapse onto it, and superseded segments and checkpoints
        are deleted.
        """
        self._require_writer()
        old_segments = list(self._segments)
        old_count = len(self._entries)
        if before is None:
            new_origin = self._origin
            kept = self._entries
            base_time: Timestamp | None = None
        else:
            horizon = parse_timestamp(before)
            base_time = None
            for when, _ in self._entries:
                if when <= horizon:
                    base_time = when
                else:
                    break
            if base_time is None:
                return {"generation": self.generation, "dropped_sets": 0,
                        "dropped_segments": 0, "dropped_checkpoints": 0}
            new_origin = self.snapshot_at(base_time)
            kept = [(when, cs) for when, cs in self._entries
                    if when > base_time]

        new_generation = self.generation + 1
        self._writer.close(sync=True)
        self._writer = None

        # Write the consolidated generation, rolling at segment_bytes.
        new_segments: list[Path] = []
        writer: SegmentWriter | None = None
        index = 0

        def _next_writer() -> SegmentWriter:
            nonlocal writer, index
            if writer is not None:
                writer.close(sync=True)
            index += 1
            path = _segment_path(self.directory, new_generation, index)
            writer = SegmentWriter(path)
            new_segments.append(path)
            return writer

        writer = _next_writer()
        written = writer.append(encode_origin(new_origin))
        for when, change_set in kept:
            payload = encode_change_set(when, change_set)
            if writer.size + FRAME_HEADER.size + len(payload) \
                    > self.segment_bytes:
                writer = _next_writer()
            written += writer.append(payload)
        writer.close(sync=True)
        _fsync_dir(self.directory)
        self.stats.bytes_written += written
        self.stats.fsyncs += len(new_segments)

        # The atomic commit point: CURRENT now names the new generation.
        _write_current(self.directory, new_generation)

        dropped_ckpts = 0
        if base_time is not None:
            survivors = []
            for ref in self._checkpoints:
                if ref.at < base_time:
                    ref.path.unlink(missing_ok=True)
                    dropped_ckpts += 1
                else:
                    survivors.append(ref)
            self._checkpoints = survivors
            self._ckpt_cache.clear()
        for path in old_segments:
            path.unlink(missing_ok=True)
        _fsync_dir(self.directory)

        self.generation = new_generation
        self._origin = new_origin.copy() if before is not None else self._origin
        self._entries = list(kept)
        self._segments = new_segments
        self._writer = SegmentWriter(new_segments[-1])
        self.stats.compactions += 1
        summary = {"generation": new_generation,
                   "dropped_sets": old_count - len(kept),
                   "dropped_segments": len(old_segments),
                   "dropped_checkpoints": dropped_ckpts,
                   "segments": len(new_segments)}
        emit_event("store_compacted", level="info",
                   log=str(self.directory.name), **summary)
        return summary

    # -- integrity ---------------------------------------------------------

    def fsck(self, repair: bool = False) -> dict:
        """Re-scan this log's files from disk; see :func:`fsck_log`."""
        if repair:
            # Repair rewrites the tail under the writer's feet; route it
            # through a clean close/reopen so the in-memory state agrees.
            self.close()
            report = fsck_log(self.directory, repair=True)
            self._entries = []
            self._ckpt_cache.clear()
            self._load()
            return report
        return fsck_log(self.directory)

    def info(self) -> dict:
        """A point-in-time description (the ``repro store info`` payload)."""
        seg_bytes = sum(path.stat().st_size for path in self._segments
                        if path.exists())
        return {"generation": self.generation,
                "segments": len(self._segments),
                "segment_bytes": seg_bytes,
                "change_sets": len(self._entries),
                "operations": sum(len(cs) for _, cs in self._entries),
                "checkpoints": len(self._checkpoints),
                "checkpoint_times": [str(ref.at) for ref in self._checkpoints],
                "first_timestamp": str(self._entries[0][0])
                if self._entries else None,
                "last_timestamp": str(self._entries[-1][0])
                if self._entries else None,
                "tip_nodes": len(self._tip),
                "recovered_tail": self.recovered_tail,
                "checkpoint_problems": list(self.checkpoint_problems)}


def fsck_log(directory: str | os.PathLike, repair: bool = False) -> dict:
    """Verify one log directory record-by-record, without loading it.

    Returns a report dict with per-segment record counts, the torn-tail
    diagnosis, checkpoint problems, and ``ok`` (no problems found).
    ``repair=True`` truncates a torn tail in the last segment back to
    the last durable record and deletes unreadable checkpoints; interior
    corruption (a bad record with good segments after it) is reported
    but never auto-repaired.
    """
    directory = Path(directory)
    report: dict = {"path": str(directory), "segments": [], "problems": [],
                    "repaired": [], "ok": True}
    try:
        generation = _read_current(directory)
    except FileNotFoundError:
        report["problems"].append("CURRENT missing: not a history log")
        report["ok"] = False
        return report
    except StoreCorruptionError as exc:
        report["problems"].append(str(exc))
        report["ok"] = False
        return report
    report["generation"] = generation

    segments = _list_segments(directory, generation)
    if not segments:
        report["problems"].append(
            f"generation {generation} has no segments")
        report["ok"] = False
    for position, path in enumerate(segments):
        scan = SegmentScan(path)
        decode_errors: list[str] = []
        for payload in scan:
            try:
                decode_record(payload)
            except StoreCorruptionError as exc:
                decode_errors.append(f"{path.name}: {exc}")
        entry = {"segment": path.name, "records": scan.records,
                 "good_bytes": scan.good_bytes, "torn": scan.torn}
        report["segments"].append(entry)
        report["problems"].extend(decode_errors)
        if decode_errors:
            report["ok"] = False
        if scan.torn is not None:
            last = position == len(segments) - 1
            if last:
                report["problems"].append(
                    f"{path.name}: torn tail ({scan.torn}); "
                    f"last durable record ends at {scan.good_bytes}")
                if repair:
                    with open(path, "r+b") as handle:
                        handle.truncate(scan.good_bytes)
                        os.fsync(handle.fileno())
                    report["repaired"].append(
                        f"{path.name}: truncated to {scan.good_bytes}")
                else:
                    report["ok"] = False
            else:
                report["problems"].append(
                    f"{path.name}: interior corruption ({scan.torn}) -- "
                    f"not auto-repairable")
                report["ok"] = False

    refs, ckpt_problems = scan_checkpoints(directory)
    report["checkpoints"] = len(refs)
    for problem in ckpt_problems:
        report["problems"].append(problem)
        if repair:
            # The problem string leads with "checkpoint <name>: ...".
            name = problem.split(":", 1)[0].removeprefix("checkpoint ")
            target = directory / name
            if target.exists():
                target.unlink()
                report["repaired"].append(f"{name}: deleted")
        else:
            report["ok"] = False
    # Stray generations (left by an interrupted compaction) are advisory.
    strays = sorted({key[0] for path in directory.glob(
        f"{_SEG_PREFIX}*{_SEG_SUFFIX}")
        if (key := _segment_key(path)) is not None} - {generation})
    if strays:
        report["problems"].append(
            f"stray segment generation(s) {strays} (interrupted "
            f"compaction); live generation is {generation}")
        if repair:
            for path in directory.glob(f"{_SEG_PREFIX}*{_SEG_SUFFIX}"):
                key = _segment_key(path)
                if key is not None and key[0] != generation:
                    path.unlink()
                    report["repaired"].append(f"{path.name}: deleted")
    return report
