"""Materialized snapshot checkpoints and the hybrid spacing policy.

A checkpoint is ``Ot(D)`` written down: the full OEM snapshot at one
history timestamp, so a time-travel query at ``t' >= t`` loads it and
replays only the change sets in ``(t, t']`` instead of the whole log.
"On Graph Deltas for Historical Queries" frames the storage/query
trade-off this machinery navigates: deltas are cheap to store and
expensive to query, snapshots the reverse, and the right policy
materializes a snapshot whenever the accumulated delta chain exceeds a
query-time replay budget.

**File format** (``ckpt-<seq>.oem``): one JSON header line --
``{"format": 1, "at": <ticks>, "seq": <n>, "crc": <crc32-of-body>,``
``"nodes": <count>}`` -- followed by the textual OEM serialization of
the snapshot.  The CRC covers the body, so a torn or bit-rotten
checkpoint is detected at load time and simply skipped: a bad
checkpoint never corrupts an answer, it only costs a longer replay from
the next older one (or the origin).

**Spacing policy** (:class:`CheckpointPolicy`): a checkpoint is due
when the operations appended since the last one exceed
``max(replay_budget, size_weight * snapshot_nodes)``.  The first term
is the query-time promise -- no lookup ever replays more than about
``replay_budget`` operations past a checkpoint.  The second term is the
hybrid correction from the graph-deltas analysis: materializing a big
snapshot costs proportionally to its size, so for large databases the
spacing stretches until the replay work saved is worth the snapshot
written.  ``min_sets`` stops degenerate one-set checkpointing when
single change sets are larger than the budget.
"""

from __future__ import annotations

import json
import os
import zlib
from dataclasses import dataclass
from pathlib import Path

from ..errors import StoreCorruptionError
from ..oem.model import OEMDatabase
from ..oem.serialize import dumps, loads
from ..timestamps import Timestamp

__all__ = ["CheckpointPolicy", "CheckpointRef", "write_checkpoint",
           "read_checkpoint", "scan_checkpoints", "CHECKPOINT_FORMAT"]

CHECKPOINT_FORMAT = 1
_PREFIX = "ckpt-"
_SUFFIX = ".oem"


@dataclass(frozen=True)
class CheckpointPolicy:
    """When to materialize a snapshot checkpoint (see module docstring).

    ``replay_budget`` -- the query-time budget: target maximum number of
    change *operations* between a checkpoint and any later query time.
    ``size_weight`` -- the hybrid term: effective budget grows to
    ``size_weight * snapshot_nodes`` for large snapshots, so checkpoint
    cost stays proportionate to the replay work it saves.
    ``min_sets`` -- never checkpoint more often than every ``min_sets``
    change sets.  A ``replay_budget`` of 0 disables checkpointing.
    """

    replay_budget: int = 512
    size_weight: float = 0.25
    min_sets: int = 2

    @property
    def enabled(self) -> bool:
        return self.replay_budget > 0

    def effective_budget(self, snapshot_nodes: int) -> int:
        """The op budget in force for a snapshot of the given size."""
        return max(self.replay_budget,
                   int(self.size_weight * snapshot_nodes))

    def due(self, ops_since: int, sets_since: int,
            snapshot_nodes: int) -> bool:
        """Is a checkpoint due after the accumulated delta chain?"""
        if not self.enabled or sets_since < self.min_sets:
            return False
        return ops_since >= self.effective_budget(snapshot_nodes)

    @classmethod
    def disabled(cls) -> "CheckpointPolicy":
        """A policy that never checkpoints (pure delta log)."""
        return cls(replay_budget=0)


@dataclass(frozen=True)
class CheckpointRef:
    """One durable checkpoint: where it is and what time it captures."""

    at: Timestamp
    seq: int
    path: Path

    @property
    def name(self) -> str:
        return self.path.name


def checkpoint_path(directory: Path, seq: int) -> Path:
    return directory / f"{_PREFIX}{seq:06d}{_SUFFIX}"


def write_checkpoint(directory: Path, seq: int, at: Timestamp,
                     snapshot: OEMDatabase, *, sync: bool = True
                     ) -> tuple[CheckpointRef, int]:
    """Write one checkpoint file; returns its ref and byte size.

    The body is written before the file is visible under its final name
    only in spirit -- a checkpoint is advisory, so a torn write is not a
    durability problem: the CRC check at load time rejects it and
    resolution falls back to the previous checkpoint.
    """
    body = dumps(snapshot).encode("utf-8")
    header = json.dumps({"format": CHECKPOINT_FORMAT, "at": at.ticks,
                         "seq": seq, "crc": zlib.crc32(body),
                         "nodes": len(snapshot)},
                        separators=(",", ":")).encode("utf-8")
    path = checkpoint_path(directory, seq)
    with open(path, "wb") as handle:
        handle.write(header + b"\n" + body)
        handle.flush()
        if sync:
            os.fsync(handle.fileno())
    return CheckpointRef(at=at, seq=seq, path=path), len(header) + 1 + len(body)


def read_checkpoint(path: Path) -> tuple[Timestamp, OEMDatabase]:
    """Load and verify one checkpoint file.

    Raises :class:`~repro.errors.StoreCorruptionError` on any integrity
    failure (missing header, bad CRC, unparseable body); callers treat
    that as "this checkpoint does not exist".
    """
    try:
        raw = path.read_bytes()
    except OSError as exc:
        raise StoreCorruptionError(f"checkpoint {path.name}: {exc}") from exc
    newline = raw.find(b"\n")
    if newline < 0:
        raise StoreCorruptionError(f"checkpoint {path.name}: no header line")
    try:
        header = json.loads(raw[:newline].decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise StoreCorruptionError(
            f"checkpoint {path.name}: bad header: {exc}") from exc
    body = raw[newline + 1:]
    if header.get("format") != CHECKPOINT_FORMAT:
        raise StoreCorruptionError(
            f"checkpoint {path.name}: unknown format {header.get('format')!r}")
    if zlib.crc32(body) != header.get("crc"):
        raise StoreCorruptionError(
            f"checkpoint {path.name}: checksum mismatch")
    try:
        snapshot = loads(body.decode("utf-8"))
    except Exception as exc:
        raise StoreCorruptionError(
            f"checkpoint {path.name}: body failed to parse: {exc}") from exc
    return Timestamp(int(header["at"])), snapshot


def scan_checkpoints(directory: Path) -> tuple[list[CheckpointRef], list[str]]:
    """Index every readable checkpoint in ``directory``.

    Returns ``(refs sorted by time then seq, problems)``; an unreadable
    checkpoint lands in ``problems`` and is excluded from the index --
    the degradation is more replay, never a wrong answer.
    """
    refs: list[CheckpointRef] = []
    problems: list[str] = []
    for path in sorted(directory.glob(f"{_PREFIX}*{_SUFFIX}")):
        try:
            seq = int(path.name[len(_PREFIX):-len(_SUFFIX)])
        except ValueError:
            problems.append(f"checkpoint {path.name}: unparseable name")
            continue
        try:
            at, _ = read_checkpoint(path)
        except StoreCorruptionError as exc:
            problems.append(str(exc))
            continue
        refs.append(CheckpointRef(at=at, seq=seq, path=path))
    refs.sort(key=lambda ref: (ref.at, ref.seq))
    return refs, problems
