"""Append-only segment files: length-prefixed, checksummed records.

A segment is the unit of the durable change log.  The on-disk layout is
deliberately boring -- the format a recovery tool can re-derive from one
paragraph of documentation::

    +----------+----------------------------------------------+
    | 8 bytes  | magic ``DOEMSEG1``                           |
    +----------+----------------------------------------------+
    | 4 bytes  | record length N (big-endian, payload only)   |
    | 4 bytes  | CRC-32 of the payload                        |
    | N bytes  | payload (UTF-8 JSON, :mod:`..store.records`) |
    +----------+  ... repeated until end of file ...          |

Records are only ever appended; a record is *durable* once its bytes
and the frame before it are on stable storage.  :class:`SegmentWriter`
appends frames and fsyncs according to the log's policy (always, or at
segment rolls); :class:`SegmentScan` reads a segment back and classifies
its tail:

* a frame whose header is complete and whose payload matches its CRC is
  a good record;
* anything else -- a truncated header, a length running past the end of
  the file, a checksum mismatch -- marks the *torn tail*: scanning stops
  and ``good_bytes`` records the offset of the last durable record's
  end, which is exactly where crash recovery truncates.

The scan cannot distinguish "the process died mid-append" from "the disk
flipped a bit in the final record"; both are resolved the same way, by
dropping everything from the first bad frame on.  Corruption *before*
the tail (an interior record with a bad checksum while good frames
follow) is still reported the same way -- the log layer decides whether
that is a recoverable tail (last segment) or hard corruption (an interior
segment, :class:`~repro.errors.StoreCorruptionError`).
"""

from __future__ import annotations

import os
import struct
import zlib
from pathlib import Path

from ..errors import StoreError

__all__ = ["MAGIC", "HEADER_SIZE", "FRAME_HEADER", "SegmentWriter",
           "SegmentScan", "frame_record"]

MAGIC = b"DOEMSEG1"
HEADER_SIZE = len(MAGIC)
FRAME_HEADER = struct.Struct(">II")  # (payload length, CRC-32)

# A single record larger than this is a framing error, not data: it
# guards the scanner against interpreting garbage as a gigantic length
# and allocating unbounded memory.
MAX_RECORD_BYTES = 1 << 28


def frame_record(payload: bytes) -> bytes:
    """The on-disk frame for one payload: header + bytes."""
    if len(payload) > MAX_RECORD_BYTES:
        raise StoreError(f"record of {len(payload)} bytes exceeds the "
                         f"{MAX_RECORD_BYTES}-byte frame limit")
    return FRAME_HEADER.pack(len(payload), zlib.crc32(payload)) + payload


class SegmentWriter:
    """Appends framed records to one segment file.

    Opening an existing segment seeks to ``resume_at`` (the durable
    prefix established by a prior :class:`SegmentScan`) and truncates
    whatever follows -- the crash-recovery contract: a torn tail is
    discarded the moment the log is opened for writing.
    """

    def __init__(self, path: str | os.PathLike,
                 resume_at: int | None = None) -> None:
        self.path = Path(path)
        fresh = not self.path.exists()
        self._file = open(self.path, "ab" if fresh else "r+b")
        if fresh:
            self._file.write(MAGIC)
            self._file.flush()
            self.size = HEADER_SIZE
        else:
            end = self.path.stat().st_size
            keep = end if resume_at is None else resume_at
            if keep < HEADER_SIZE:
                raise StoreError(f"segment {self.path.name} has no durable "
                                 f"prefix to resume from")
            if keep < end:
                self._file.truncate(keep)
            self._file.seek(keep)
            self.size = keep

    def append(self, payload: bytes) -> int:
        """Append one framed record; returns the bytes written."""
        frame = frame_record(payload)
        self._file.write(frame)
        self._file.flush()
        self.size += len(frame)
        return len(frame)

    def fsync(self) -> None:
        """Force the segment's bytes to stable storage."""
        self._file.flush()
        os.fsync(self._file.fileno())

    def close(self, sync: bool = True) -> None:
        """Flush (optionally fsync) and close the file."""
        if self._file.closed:
            return
        self._file.flush()
        if sync:
            os.fsync(self._file.fileno())
        self._file.close()

    def __enter__(self) -> "SegmentWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class SegmentScan:
    """Reads a segment, separating the durable prefix from a torn tail.

    Iterate to receive payloads in order; after iteration finishes,

    * ``good_bytes`` is the end offset of the last intact record (the
      truncation point for recovery),
    * ``records`` is how many intact records were read,
    * ``torn`` is ``None`` for a clean segment, else a one-line reason
      (``"truncated header at 412"``, ``"checksum mismatch at 96"``).
    """

    def __init__(self, path: str | os.PathLike) -> None:
        self.path = Path(path)
        self.good_bytes = 0
        self.records = 0
        self.torn: str | None = None

    def __iter__(self):
        with open(self.path, "rb") as handle:
            magic = handle.read(HEADER_SIZE)
            if magic != MAGIC:
                self.torn = "bad segment magic"
                return
            offset = HEADER_SIZE
            self.good_bytes = offset
            while True:
                header = handle.read(FRAME_HEADER.size)
                if not header:
                    return  # clean end of file
                if len(header) < FRAME_HEADER.size:
                    self.torn = f"truncated header at {offset}"
                    return
                length, checksum = FRAME_HEADER.unpack(header)
                if length > MAX_RECORD_BYTES:
                    self.torn = f"implausible record length at {offset}"
                    return
                payload = handle.read(length)
                if len(payload) < length:
                    self.torn = f"truncated record at {offset}"
                    return
                if zlib.crc32(payload) != checksum:
                    self.torn = f"checksum mismatch at {offset}"
                    return
                offset += FRAME_HEADER.size + length
                self.good_bytes = offset
                self.records += 1
                yield payload

    def payloads(self) -> list[bytes]:
        """Every intact payload (drains the iterator)."""
        return list(self)
