"""The durable store: named history logs under one root directory.

Layout::

    <root>/.doemstore            marker ({"format": 1}) -- "this is a store"
    <root>/LOCK                  single-writer pid file (rw opens only)
    <root>/<name>/               one :class:`~.log.HistoryLog` per history

**Single writer.**  Opening a store ``"rw"`` takes ``LOCK`` with
``O_CREAT | O_EXCL``; a second writer in another process gets
:class:`~repro.errors.StoreLockedError` (a lock left by a dead process
is detected via its recorded pid and stolen).  Read-only opens never
touch the lock -- the log format is append-only with self-validating
frames, so a reader sees a consistent durable prefix at worst.

**One handle per process.**  :func:`open_store` keeps a process-level
cache keyed by the store's real path, so the CLI's ``--store`` paths and
a QSS server in the same process observe the *same* live handle (and
therefore the same in-memory tips and stats) instead of each loading an
independent copy -- the shared-handle fix for ``repro
explain/analyze/top`` against a served history.  A cached read-only
handle is transparently upgraded when a writer asks for ``"rw"``.
"""

from __future__ import annotations

import errno
import json
import os
import re
import threading
import zlib
from pathlib import Path

from ..errors import StoreCorruptionError, StoreError, StoreLockedError
from ..oem.history import ChangeSet, OEMHistory
from ..oem.model import OEMDatabase
from ..timestamps import Timestamp
from .checkpoint import CheckpointPolicy
from .log import DEFAULT_SEGMENT_BYTES, HistoryLog, StoreStats, fsck_log

__all__ = ["ChangeLogStore", "StoreLock", "open_store", "close_store",
           "is_store", "sanitize_name", "MARKER", "STORE_FORMAT"]

MARKER = ".doemstore"
STORE_FORMAT = 1
_LOCK_FILE = "LOCK"

_NAME_RE = re.compile(r"[A-Za-z0-9][A-Za-z0-9._-]*\Z")


def sanitize_name(name: str) -> str:
    """A filesystem-safe history name for an arbitrary string.

    Valid names pass through unchanged; anything else (QSS alias keys
    like ``wrapper::query`` for instance) becomes a slug of its safe
    characters plus a CRC-32 suffix, so distinct keys stay distinct.
    """
    if _NAME_RE.match(name):
        return name
    slug = re.sub(r"[^A-Za-z0-9._-]+", "-", name).strip("-.") or "history"
    return f"{slug[:48]}-{zlib.crc32(name.encode('utf-8')):08x}"


def is_store(path: str | os.PathLike) -> bool:
    """Does ``path`` hold a change-log store (its marker file)?"""
    return (Path(path) / MARKER).is_file()


class StoreLock:
    """The store's single-writer pid file.

    Acquired with ``O_CREAT | O_EXCL`` so exactly one process can hold
    it; the holder's pid is recorded, and a lock whose pid no longer
    names a live process is treated as stale and stolen (one retry).
    """

    def __init__(self, path: Path) -> None:
        self.path = path
        self._held = False

    def acquire(self) -> None:
        for attempt in (1, 2):
            try:
                fd = os.open(self.path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except OSError as exc:
                if exc.errno != errno.EEXIST:
                    raise
                holder = self._holder_pid()
                if holder is not None and self._alive(holder):
                    raise StoreLockedError(
                        f"{self.path.parent}: store is locked by "
                        f"pid {holder}") from None
                if attempt == 2:
                    raise StoreLockedError(
                        f"{self.path.parent}: stale lock could not be "
                        f"reclaimed") from None
                self.path.unlink(missing_ok=True)  # stale: steal it
                continue
            with os.fdopen(fd, "w") as handle:
                handle.write(str(os.getpid()))
            self._held = True
            return

    def _holder_pid(self) -> int | None:
        try:
            return int(self.path.read_text("utf-8").strip())
        except (OSError, ValueError):
            return None

    @staticmethod
    def _alive(pid: int) -> bool:
        try:
            os.kill(pid, 0)
        except ProcessLookupError:
            return False
        except PermissionError:
            return True
        return True

    def release(self) -> None:
        if self._held:
            self.path.unlink(missing_ok=True)
            self._held = False


class ChangeLogStore:
    """Durable named OEM histories (see module docstring).

    ``mode="rw"`` takes the single-writer lock and recovers torn tails
    on open; ``mode="ro"`` reads the durable prefix without locking.
    Checkpoint policy, fsync policy, and segment size apply to every
    log opened through this handle.
    """

    def __init__(self, path: str | os.PathLike, mode: str = "rw", *,
                 policy: CheckpointPolicy | None = None,
                 fsync_policy: str = "always",
                 segment_bytes: int = DEFAULT_SEGMENT_BYTES) -> None:
        if mode not in ("rw", "ro"):
            raise StoreError(f"unknown store mode {mode!r}")
        self.path = Path(path)
        self.mode = mode
        self.policy = policy if policy is not None else CheckpointPolicy()
        self.fsync_policy = fsync_policy
        self.segment_bytes = segment_bytes
        self._logs: dict[str, HistoryLog] = {}
        self._lock = threading.RLock()
        self._closed = False

        marker = self.path / MARKER
        if marker.is_file():
            try:
                manifest = json.loads(marker.read_text("utf-8"))
            except (OSError, ValueError) as exc:
                raise StoreCorruptionError(
                    f"{marker}: unreadable store marker: {exc}") from exc
            if manifest.get("format") != STORE_FORMAT:
                raise StoreError(
                    f"{self.path}: store format "
                    f"{manifest.get('format')!r} is not supported")
        elif mode == "rw":
            if self.path.exists() and any(self.path.iterdir()):
                raise StoreError(
                    f"{self.path}: directory exists, is not empty, and "
                    f"is not a store (no {MARKER})")
            self.path.mkdir(parents=True, exist_ok=True)
            marker.write_text(json.dumps({"format": STORE_FORMAT}) + "\n",
                              encoding="utf-8")
        else:
            raise StoreError(f"{self.path}: not a change-log store "
                             f"(no {MARKER})")

        self._write_lock = StoreLock(self.path / _LOCK_FILE)
        if mode == "rw":
            self._write_lock.acquire()

    # -- naming -----------------------------------------------------------

    def _check_name(self, name: str) -> str:
        if not _NAME_RE.match(name):
            raise StoreError(
                f"invalid history name {name!r} (use sanitize_name())")
        return name

    def names(self) -> list[str]:
        """Every history in the store, sorted."""
        if not self.path.is_dir():
            return []
        return sorted(entry.name for entry in self.path.iterdir()
                      if entry.is_dir() and (entry / "CURRENT").exists())

    def __contains__(self, name: str) -> bool:
        return (self.path / name / "CURRENT").exists()

    # -- logs -------------------------------------------------------------

    def log(self, name: str, *, origin: OEMDatabase | None = None) \
            -> HistoryLog:
        """The named history's log, opened (and cached) on first use.

        ``origin`` creates the history when it does not exist yet
        (rw mode only); without it, a missing history is an error.
        """
        self._check_name(name)
        with self._lock:
            if self._closed:
                raise StoreError(f"{self.path}: store is closed")
            log = self._logs.get(name)
            if log is None:
                exists = name in self
                if not exists and origin is None:
                    raise StoreError(
                        f"{self.path}: no history named {name!r} "
                        f"(have {self.names()})")
                if not exists and self.mode != "rw":
                    raise StoreError(
                        f"{self.path}: read-only open cannot create "
                        f"history {name!r}")
                log = HistoryLog(self.path / name, self.mode,
                                 origin=None if exists else origin,
                                 policy=self.policy,
                                 fsync_policy=self.fsync_policy,
                                 segment_bytes=self.segment_bytes)
                self._logs[name] = log
            return log

    def create(self, name: str, origin: OEMDatabase) -> HistoryLog:
        """Create a new named history from its origin snapshot."""
        if name in self:
            raise StoreError(f"{self.path}: history {name!r} already exists")
        return self.log(name, origin=origin)

    def put_history(self, name: str, origin: OEMDatabase,
                    history: OEMHistory) -> HistoryLog:
        """Create a history and append every entry of ``history``."""
        log = self.create(name, origin)
        log.extend(history)
        return log

    # -- convenience pass-throughs ---------------------------------------

    def append(self, name: str, when: object,
               change_set: ChangeSet) -> Timestamp:
        return self.log(name).append(when, change_set)

    def snapshot_at(self, name: str, when: object, *,
                    use_checkpoints: bool = True) -> OEMDatabase:
        return self.log(name).snapshot_at(
            when, use_checkpoints=use_checkpoints)

    def get_doem(self, name: str):
        return self.log(name).get_doem()

    def checkpoint(self, name: str):
        return self.log(name).write_checkpoint()

    def compact(self, name: str, before: object | None = None) -> dict:
        return self.log(name).compact(before)

    # -- maintenance ------------------------------------------------------

    def fsck(self, repair: bool = False) -> dict:
        """Verify (optionally repair) every history; see :func:`fsck_log`.

        Runs from the on-disk state; open logs are reloaded after a
        repairing pass so in-memory views stay consistent.
        """
        reports = []
        ok = True
        for name in self.names():
            with self._lock:
                log = self._logs.get(name)
            if log is not None:
                report = log.fsck(repair=repair)
            else:
                report = fsck_log(self.path / name, repair=repair)
            report["name"] = name
            reports.append(report)
            ok = ok and report["ok"]
        return {"path": str(self.path), "ok": ok, "histories": reports}

    def info(self) -> dict:
        """Per-history descriptions plus store-level totals."""
        histories = {}
        for name in self.names():
            histories[name] = self.log(name).info()
        return {"path": str(self.path), "mode": self.mode,
                "histories": histories,
                "change_sets": sum(h["change_sets"]
                                   for h in histories.values()),
                "checkpoints": sum(h["checkpoints"]
                                   for h in histories.values())}

    def stats(self) -> dict:
        """Summed counters across every open log in this handle."""
        totals = {field: 0 for field in StoreStats._FIELDS}
        with self._lock:
            logs = list(self._logs.values())
        for log in logs:
            for field, value in log.stats.as_dict().items():
                totals[field] += value
        return totals

    def flush(self) -> None:
        """fsync every open log's active segment."""
        with self._lock:
            logs = list(self._logs.values())
        for log in logs:
            log.flush()

    def close(self) -> None:
        """Flush and close every log, then release the writer lock."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            logs = list(self._logs.values())
            self._logs.clear()
        for log in logs:
            log.close()
        if self.mode == "rw":
            self._write_lock.release()
        _evict_handle(self)

    @property
    def closed(self) -> bool:
        return self._closed

    def __enter__(self) -> "ChangeLogStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        return (f"<ChangeLogStore {self.path} mode={self.mode} "
                f"histories={len(self.names())}>")


# ---------------------------------------------------------------------------
# The process-level handle cache (the shared-handle bugfix)
# ---------------------------------------------------------------------------

_HANDLES: dict[str, ChangeLogStore] = {}
# Reentrant: ChangeLogStore.close() evicts its own cache entry, and the
# rw-upgrade path in open_store closes the stale handle under this lock.
_HANDLES_LOCK = threading.RLock()


def open_store(path: str | os.PathLike, mode: str = "rw",
               **kwargs) -> ChangeLogStore:
    """The process's shared handle for the store at ``path``.

    Repeated opens of the same real path return one live
    :class:`ChangeLogStore`; a cached read-only handle is upgraded in
    place when a writer asks for ``"rw"`` (a cached writer serves
    read-only requests as-is).  Keyword arguments configure the handle
    only when it is first created (or upgraded).
    """
    key = os.path.realpath(path)
    with _HANDLES_LOCK:
        cached = _HANDLES.get(key)
        if cached is not None and not cached.closed:
            if mode == "rw" and cached.mode == "ro":
                cached.close()  # upgrade: reopen with the writer lock
            else:
                return cached
        store = ChangeLogStore(path, mode, **kwargs)
        _HANDLES[key] = store
        return store


def close_store(path: str | os.PathLike) -> None:
    """Close (and evict) the cached handle for ``path``, if any."""
    key = os.path.realpath(path)
    with _HANDLES_LOCK:
        store = _HANDLES.pop(key, None)
    if store is not None:
        store.close()


def _evict_handle(store: ChangeLogStore) -> None:
    with _HANDLES_LOCK:
        for key, cached in list(_HANDLES.items()):
            if cached is store:
                del _HANDLES[key]
