"""AST -> logical IR lowering.

Lowering consumes the *normalized* query (range-variable normal form,
:meth:`repro.lorel.eval.Evaluator.normalize`): every path select has
already been hoisted into a from-item, prefixes are unified, and
annotations are canonical.  The translation is then direct::

    Project(select, labels,
        Predicate(where,                 # only if a where clause exists
            PathExpand(item_n, ... PathExpand(item_1, Scan()))))

so the logical tree is a straight chain that mirrors the evaluator's
depth-first enumeration order -- the property the rewrite passes and the
``Exchange`` operator must preserve for planned results to stay row- and
order-identical to the legacy evaluator.
"""

from __future__ import annotations

from ..lorel.ast import Query
from .ir import LogicalNode, PathExpand, Predicate, Project, Scan

__all__ = ["lower"]


def lower(normalized: Query, labels: dict) -> Project:
    """Lower a normalized query to the logical chain described above."""
    node: LogicalNode = Scan()
    for item in normalized.from_items:
        node = PathExpand(item=item, child=node)
    if normalized.where is not None:
        node = Predicate(condition=normalized.where, child=node)
    return Project(select=normalized.select, labels=dict(labels), child=node)
