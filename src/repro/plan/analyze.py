"""EXPLAIN ANALYZE: per-operator runtime stats and cardinality feedback.

EXPLAIN renders the *static* plan; this module is the dynamic half.
When an engine executes with ``analyze=True`` it attaches a
:class:`PlanStats` collector to the
:class:`~repro.plan.physical.ExecutionContext` (``ctx.stats``), and the
physical operators wrap their streams so every node accounts:

* **rows/batches in and out** -- the input wrapper counts what a node
  pulls from its child, the output wrapper what it emits, so the
  invariant ``child.rows_out == parent.rows_in`` is measured, not
  assumed (the analyze equivalence suite pins it);
* **cumulative wall seconds** -- inclusive time: the wrapper clocks each
  ``next()`` on the node's output stream, so a node's figure covers its
  own work plus its inputs' (subtract the children to get self time);
* **vectorized vs. fallback predicate rows** -- how many rows the
  compiled closure judged versus how many fell back to the general
  solver (:func:`~repro.plan.batch.filter_rows` reports the split);
* **Exchange shard stats** -- detached stage nodes run on pool workers;
  each shard fills a :class:`StageRecorder` whose payload rides back
  beside the rows (through the :mod:`repro.obs.propagation` telemetry
  payload for process pools) and merges into the coordinator's tree, so
  a sharded ANALYZE shows the same per-operator row totals as serial.

**Cardinality feedback** closes the loop: every node carries an
``est_rows`` estimate -- a deterministic heuristic on first sight, the
*recorded actuals* once the same plan fingerprint has been analyzed
before (:class:`CardinalityFeedback`) -- and :meth:`PlanStats.render`
surfaces the worst estimated-vs-actual misses.  When no stats collector
is attached (``ctx.stats is None``) the operators take their original
uninstrumented paths; analyze overhead is bounded by the
``BENCH_analyze`` gate (<5%, ``scripts/check_bench_baseline.py``).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from time import perf_counter
from typing import Iterator, Optional

from .ir import (
    AnnotationFilter,
    DeltaProject,
    Exchange,
    LogicalNode,
    PathExpand,
    Predicate,
    Project,
    Scan,
    TimeRangeScan,
    VersionJoin,
)

__all__ = ["OpStats", "PlanStats", "StageRecorder", "CardinalityFeedback",
           "cardinality_feedback", "estimate_rows", "plan_fingerprint"]

# Deterministic first-sight heuristics: a path step fans out, a
# predicate keeps a third.  Deliberately crude -- the point of the
# feedback loop is that the *second* analyzed run of a fingerprint uses
# recorded actuals instead.
PATH_FANOUT = 8
PREDICATE_KEEP = 3  # keep 1 in 3


def plan_fingerprint(root: LogicalNode) -> str:
    """A stable hash of a normalized logical plan tree.

    Computed over the deterministic EXPLAIN render of the *lowered*
    (pre-optimization) tree, so the fingerprint identifies the query
    shape after normalization but independent of which rewrite passes
    fire -- the key the query log and the feedback store share.
    """
    import hashlib

    from .ir import render
    digest = hashlib.sha256(render(root).encode("utf-8")).hexdigest()
    return digest[:12]


@dataclass
class OpStats:
    """One operator's runtime accounting inside a :class:`PlanStats`."""

    node_id: int
    op: str
    depth: int
    rows_in: int = 0
    rows_out: int = 0
    batches_in: int = 0
    batches_out: int = 0
    wall_seconds: float = 0.0
    est_rows: Optional[int] = None
    est_source: str = "heuristic"
    shards: int = 0
    detached: bool = False  # an Exchange stage, fed by shard payloads
    pred_counts: dict = field(
        default_factory=lambda: {"vectorized": 0, "fallback": 0})

    @property
    def vectorized_rows(self) -> int:
        return self.pred_counts["vectorized"]

    @property
    def fallback_rows(self) -> int:
        return self.pred_counts["fallback"]

    def misestimate_factor(self) -> float:
        """How far off the estimate was (>= 1.0; 1.0 = exact)."""
        if self.est_rows is None:
            return 1.0
        est = max(1, self.est_rows)
        actual = max(1, self.rows_out)
        return max(est, actual) / min(est, actual)

    def to_dict(self) -> dict:
        return {
            "op": self.op,
            "depth": self.depth,
            "rows_in": self.rows_in,
            "rows_out": self.rows_out,
            "batches_in": self.batches_in,
            "batches_out": self.batches_out,
            "wall_seconds": round(self.wall_seconds, 6),
            "est_rows": self.est_rows,
            "est_source": self.est_source,
            "shards": self.shards,
            "detached": self.detached,
            "vectorized_rows": self.vectorized_rows,
            "fallback_rows": self.fallback_rows,
        }


class StageRecorder:
    """Per-shard accounting for detached Exchange stages.

    One plain dict per stage index -- picklable, so a process-pool shard
    ships it back inside the telemetry payload
    (:func:`repro.obs.propagation.attach_stage_stats`).  The coordinator
    folds every shard's recorder into the stage nodes' :class:`OpStats`
    (:meth:`PlanStats.merge_stage_payload`); row counts sum across
    shards, wall seconds sum to *CPU* seconds (shards overlap, so stage
    time can exceed the Exchange's wall clock).
    """

    __slots__ = ("stages",)

    def __init__(self, count: int) -> None:
        self.stages = [{"rows_in": 0, "rows_out": 0, "wall_seconds": 0.0,
                        "vectorized": 0, "fallback": 0}
                       for _ in range(count)]


def estimate_rows(root: LogicalNode) -> dict[int, int]:
    """Deterministic bottom-up cardinality estimates, by ``id(node)``."""
    assign: dict[int, int] = {}
    _estimate(root, assign)
    return assign


def _estimate(node: LogicalNode, assign: dict[int, int]) -> int:
    if isinstance(node, Scan):
        est = 1
    elif isinstance(node, PathExpand):
        child = _estimate(node.child, assign) if node.child is not None else 1
        est = child * PATH_FANOUT
    elif isinstance(node, Predicate):
        child = _estimate(node.child, assign) if node.child is not None else 1
        est = max(1, child // PREDICATE_KEEP)
    elif isinstance(node, Project):
        est = _estimate(node.child, assign) if node.child is not None else 1
    elif isinstance(node, AnnotationFilter):
        est = PATH_FANOUT
    elif isinstance(node, TimeRangeScan):
        est = PATH_FANOUT * len(node.plan.kinds)
    elif isinstance(node, (DeltaProject, VersionJoin)):
        child = _estimate(node.child, assign) if node.child is not None else 1
        est = max(1, child // PREDICATE_KEEP)
    elif isinstance(node, Exchange):
        est = _estimate(node.child, assign)
        for stage in node.stages:
            if isinstance(stage, PathExpand):
                est = est * PATH_FANOUT
            elif isinstance(stage, Predicate):
                est = max(1, est // PREDICATE_KEEP)
            assign[id(stage)] = est
    else:  # pragma: no cover - lowering only builds the nodes above
        est = 1
    assign[id(node)] = est
    return est


class CardinalityFeedback:
    """Actual per-operator row counts, keyed by (fingerprint, shape).

    ``record`` stores the preorder ``rows_out`` vector of an analyzed
    execution; ``lookup`` returns it for the next compile of the same
    fingerprint *and* executed tree shape (serial and Exchange-rewritten
    trees are distinct shapes, so a sharded run never mis-seeds a serial
    estimate).  Bounded LRU -- old fingerprints age out.
    """

    def __init__(self, capacity: int = 256) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._store: OrderedDict[tuple, tuple[int, ...]] = OrderedDict()
        self._lock = threading.Lock()

    def record(self, fingerprint: str, shape: tuple[str, ...],
               actuals: tuple[int, ...]) -> None:
        key = (fingerprint, shape)
        with self._lock:
            self._store[key] = actuals
            self._store.move_to_end(key)
            while len(self._store) > self.capacity:
                self._store.popitem(last=False)

    def lookup(self, fingerprint: str,
               shape: tuple[str, ...]) -> tuple[int, ...] | None:
        with self._lock:
            actuals = self._store.get((fingerprint, shape))
            if actuals is not None:
                self._store.move_to_end((fingerprint, shape))
            return actuals

    def __len__(self) -> int:
        with self._lock:
            return len(self._store)

    def reset(self) -> None:
        with self._lock:
            self._store.clear()


_FEEDBACK = CardinalityFeedback()


def cardinality_feedback() -> CardinalityFeedback:
    """The process-global feedback store."""
    return _FEEDBACK


class PlanStats:
    """The runtime stats tree for one analyzed execution.

    Built over the *executed* root (after any ``insert_exchange``
    rewrite), with one :class:`OpStats` per node in preorder; the
    physical operators call the ``observe_*`` wrappers when
    ``ctx.stats`` is set.  ``finalize`` records the actuals into the
    feedback store; ``render`` is the annotated ANALYZE tree.
    """

    def __init__(self, root: LogicalNode, *,
                 fingerprint: str = "") -> None:
        self.root = root
        self.fingerprint = fingerprint
        self.result_rows = 0
        self.execute_seconds = 0.0
        self.ops: list[OpStats] = []
        self._by_node: dict[int, OpStats] = {}
        self._build(root, 0)
        feedback = None
        if fingerprint:
            feedback = cardinality_feedback().lookup(fingerprint,
                                                     self.shape())
        if feedback is not None and len(feedback) == len(self.ops):
            for op, est in zip(self.ops, feedback):
                op.est_rows = est
                op.est_source = "feedback"
        else:
            estimates = estimate_rows(root)
            for op in self.ops:
                op.est_rows = estimates.get(op.node_id)

    def _build(self, node: LogicalNode, depth: int) -> None:
        op = OpStats(node_id=id(node), op=node.describe(), depth=depth)
        self.ops.append(op)
        self._by_node[id(node)] = op
        for child in node.children():
            self._build(child, depth + 1)
        if isinstance(node, Exchange):
            for stage in node.stages:
                self._by_node[id(stage)].detached = True

    # -- lookups ---------------------------------------------------------

    def op_for(self, node: LogicalNode) -> OpStats:
        return self._by_node[id(node)]

    def shape(self) -> tuple[str, ...]:
        """The preorder operator signature (the feedback-store key)."""
        return tuple(op.op for op in self.ops)

    # -- stream wrappers (called by the physical operators) --------------

    def observe_batches(self, node: LogicalNode, stream) -> Iterator:
        """Wrap a node's *output* batch stream: rows/batches out + wall."""
        op = self._by_node[id(node)]

        def wrapped():
            iterator = iter(stream)
            while True:
                started = perf_counter()
                try:
                    batch = next(iterator)
                except StopIteration:
                    op.wall_seconds += perf_counter() - started
                    return
                op.wall_seconds += perf_counter() - started
                op.batches_out += 1
                op.rows_out += len(batch)
                yield batch
        return wrapped()

    def observe_envs(self, node: LogicalNode, stream) -> Iterator:
        """Batch-less variant: each element is one environment row."""
        op = self._by_node[id(node)]

        def wrapped():
            iterator = iter(stream)
            while True:
                started = perf_counter()
                try:
                    env = next(iterator)
                except StopIteration:
                    op.wall_seconds += perf_counter() - started
                    return
                op.wall_seconds += perf_counter() - started
                op.rows_out += 1
                yield env
        return wrapped()

    def observe_input(self, node: LogicalNode, stream) -> Iterator:
        """Wrap a node's *input* batch stream: rows/batches in."""
        op = self._by_node[id(node)]

        def wrapped():
            for batch in stream:
                op.batches_in += 1
                op.rows_in += len(batch)
                yield batch
        return wrapped()

    def observe_input_envs(self, node: LogicalNode, stream) -> Iterator:
        op = self._by_node[id(node)]

        def wrapped():
            for env in stream:
                op.rows_in += 1
                yield env
        return wrapped()

    def predicate_counts(self, node: LogicalNode) -> dict:
        """The mutable vectorized/fallback tally ``filter_rows`` fills."""
        return self._by_node[id(node)].pred_counts

    # -- shard merging ----------------------------------------------------

    def merge_stage_payload(self, exchange: Exchange,
                            payload: list[dict] | None) -> None:
        """Fold one shard's :class:`StageRecorder` payload into the tree."""
        if not payload:
            return
        for stage, rec in zip(exchange.stages, payload):
            op = self._by_node[id(stage)]
            op.rows_in += rec.get("rows_in", 0)
            op.rows_out += rec.get("rows_out", 0)
            op.wall_seconds += rec.get("wall_seconds", 0.0)
            op.pred_counts["vectorized"] += rec.get("vectorized", 0)
            op.pred_counts["fallback"] += rec.get("fallback", 0)

    # -- finishing --------------------------------------------------------

    def finalize(self, result_rows: int, execute_seconds: float) -> None:
        """Seal the collection and feed the actuals back to the estimator."""
        self.result_rows = result_rows
        self.execute_seconds = execute_seconds
        if self.fingerprint:
            cardinality_feedback().record(
                self.fingerprint, self.shape(),
                tuple(op.rows_out for op in self.ops))

    def misestimates(self, limit: int = 3,
                     threshold: float = 2.0) -> list[OpStats]:
        """The operators whose estimates missed worst (factor >= threshold)."""
        order = {id(op): position for position, op in enumerate(self.ops)}
        missed = [op for op in self.ops
                  if op.est_rows is not None
                  and op.misestimate_factor() >= threshold]
        missed.sort(key=lambda op: (-op.misestimate_factor(),
                                    order[id(op)]))
        return missed[:limit]

    # -- export -----------------------------------------------------------

    def render(self) -> str:
        """The annotated ANALYZE plan tree, one operator per line."""
        lines: list[str] = []
        for op in self.ops:
            indent = "  " * op.depth
            parts = [f"rows {op.rows_in} -> {op.rows_out}"]
            if op.batches_out or op.batches_in:
                parts.append(f"batches {op.batches_in} -> {op.batches_out}")
            parts.append(f"time {op.wall_seconds * 1000:.3f}ms")
            if op.est_rows is not None:
                tag = "est" if op.est_source == "heuristic" else "est*"
                parts.append(f"{tag} {op.est_rows}")
            if op.shards:
                parts.append(f"shards {op.shards}")
            if op.vectorized_rows or op.fallback_rows:
                parts.append(f"vectorized {op.vectorized_rows}"
                             f"/fallback {op.fallback_rows}")
            lines.append(f"{indent}{op.op}  ({', '.join(parts)})")
        missed = self.misestimates()
        if missed:
            lines.append("misestimates:")
            for op in missed:
                lines.append(f"  {op.op}: est {op.est_rows} vs actual "
                             f"{op.rows_out} (x{op.misestimate_factor():.1f})")
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "fingerprint": self.fingerprint,
            "rows": self.result_rows,
            "execute_seconds": round(self.execute_seconds, 6),
            "ops": [op.to_dict() for op in self.ops],
            "misestimates": [
                {"op": op.op, "est_rows": op.est_rows,
                 "rows_out": op.rows_out,
                 "factor": round(op.misestimate_factor(), 3)}
                for op in self.misestimates()],
        }
