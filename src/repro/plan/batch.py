"""Environment batches: the unit of work of the batched physical operators.

The iterator execution model streams environments one at a time through
nested generators; profiling showed the generator plumbing itself -- one
frame resume per environment per operator -- dominating the hot path, and
the sharding ``Exchange`` paying that plumbing again per shard *plus*
per-task submission overhead for tiny work units.  The batched model
moves whole :class:`EnvBatch` lists between operators instead:

* ``PathExpand`` advances an entire batch through its path with a
  frontier traversal (:meth:`repro.lorel.eval.Evaluator.
  bind_from_item_batch`) -- one list append per match, no generator
  frames;
* ``Predicate`` evaluates **vectorized** over the batch: the condition is
  compiled once per operator into a plain-Python closure
  (:func:`compile_predicate`) and applied row by row in a single loop,
  falling back to the evaluator's general ``solve`` only for rows (or
  condition shapes) the closure cannot serve;
* ``Exchange`` ships whole batches to pool workers, so each submitted
  task amortizes its scheduling (and, for process pools, pickling) cost
  over hundreds of rows.

Batches are sized by ``ExecutionContext.batch_size``
(:data:`DEFAULT_BATCH_SIZE` rows unless the engine overrides it); every
batch an operator emits is observed in the ``repro.plan.batch_rows``
histogram so a metrics dump shows the actual batch-size distribution.

Equivalence contract: all operators are per-row independent and
order-preserving, so results are row- and order-identical to the
iterator model and the legacy evaluator for **any** batch size -- the
hypothesis suite in ``tests/plan/test_batched_equivalence.py`` pins this
across engines, batch sizes, and shard widths.
"""

from __future__ import annotations

from typing import Callable, Iterator, Optional

from ..lorel.ast import And, Comparison, Condition, LikeCond, Literal, \
    Not, Or, TimeVar, VarRef
from ..obs.metrics import registry as metrics_registry
from ..oem.values import like
from ..parallel.sharding import chunk_fixed

__all__ = ["EnvBatch", "DEFAULT_BATCH_SIZE", "BATCH_ROWS_METRIC",
           "batch_rows_histogram", "compile_predicate", "filter_rows"]

DEFAULT_BATCH_SIZE = 256
"""Default operator batch width (rows).

Large enough that per-batch overhead (one histogram observation, one
pool submission under Exchange) is noise against per-row work; small
enough that pipelined memory stays bounded and shards split evenly.
``docs/batched-execution.md`` discusses tuning.
"""

BATCH_ROWS_METRIC = "repro.plan.batch_rows"

_BATCH_BUCKETS = (1, 4, 16, 64, 256, 1024, 4096, 16384)


def batch_rows_histogram():
    """The batch-size histogram (row counts, not seconds)."""
    return metrics_registry().histogram(BATCH_ROWS_METRIC,
                                        buckets=_BATCH_BUCKETS)


class EnvBatch:
    """A list of environments moving between physical operators.

    Thin by design -- the rows stay plain environment dicts so the
    evaluator kernels apply unchanged -- but with the column-style
    access batched operators want: :meth:`column` materializes one
    variable's bindings across the batch in row order, which is what the
    vectorized comparison fast path iterates instead of per-row dict
    lookups inside a generic interpreter loop.
    """

    __slots__ = ("rows",)

    def __init__(self, rows: list) -> None:
        self.rows = rows

    def __len__(self) -> int:
        return len(self.rows)

    def __bool__(self) -> bool:
        return bool(self.rows)

    def __iter__(self):
        return iter(self.rows)

    def column(self, name: str, default=None) -> list:
        """The variable's binding per row (``default`` where unbound)."""
        return [env.get(name, default) for env in self.rows]

    def split(self, size: int) -> Iterator["EnvBatch"]:
        """Re-chunk into batches of at most ``size`` rows, order kept."""
        if size <= 0 or len(self.rows) <= size:
            yield self
            return
        for chunk in chunk_fixed(self.rows, size):
            yield EnvBatch(chunk)

    @staticmethod
    def concat(batches: list["EnvBatch"]) -> "EnvBatch":
        """One batch holding every row, in batch-then-row order."""
        rows: list = []
        for batch in batches:
            rows.extend(batch.rows)
        return EnvBatch(rows)


# ---------------------------------------------------------------------------
# Vectorized predicate evaluation
# ---------------------------------------------------------------------------
#
# ``Predicate`` only asks *does the condition have a solution?* -- it never
# keeps bindings the condition introduces.  For conditions built purely
# from literals, polling-time variables, and already-bound variables,
# solving cannot extend the environment, so the existential check
# decomposes into ordinary boolean evaluation: And = conjunction, Or =
# disjunction, Not = negation, Comparison/LikeCond = one value comparison.
# compile_predicate turns such a condition into a closure once; anything
# that walks paths (or the `= None` existence-test encoding, whose
# semantics hang on match multiplicity) stays on the general solver.

class _NotVectorizable(Exception):
    """Internal: the condition shape needs the general solver."""


def compile_predicate(condition: Condition,
                      evaluator) -> Optional[Callable[[dict], bool]]:
    """A per-row boolean closure for ``condition``, or ``None``.

    The closure raises ``KeyError`` for rows where a referenced variable
    is unbound -- callers fall back to the general solver for that row
    (:func:`filter_rows` does), so the fast path never changes semantics,
    only speed.
    """
    try:
        return _compile_condition(condition, evaluator)
    except _NotVectorizable:
        return None


def _compile_condition(condition, evaluator):
    if isinstance(condition, And):
        left = _compile_condition(condition.left, evaluator)
        right = _compile_condition(condition.right, evaluator)
        return lambda env: left(env) and right(env)
    if isinstance(condition, Or):
        left = _compile_condition(condition.left, evaluator)
        right = _compile_condition(condition.right, evaluator)
        return lambda env: left(env) or right(env)
    if isinstance(condition, Not):
        operand = _compile_condition(condition.operand, evaluator)
        return lambda env: not operand(env)
    if isinstance(condition, Comparison):
        if isinstance(condition.right, Literal) and \
                condition.right.value is None:
            # The bare-path existence encoding: semantics depend on match
            # multiplicity, which only the general solver models.
            raise _NotVectorizable
        left = _compile_operand(condition.left, evaluator)
        right = _compile_operand(condition.right, evaluator)
        op = condition.op
        holds = evaluator._holds
        return lambda env: holds(left(env), op, right(env))
    if isinstance(condition, LikeCond):
        operand = _compile_operand(condition.expr, evaluator)
        pattern = condition.pattern
        return lambda env: like(operand(env), pattern)
    raise _NotVectorizable


def _compile_operand(expr, evaluator):
    if isinstance(expr, Literal):
        value = expr.value
        return lambda env: value
    if isinstance(expr, TimeVar):
        return lambda env: evaluator._polling_time(expr, env)
    if isinstance(expr, VarRef):
        name = expr.name
        value_of = evaluator._value_of
        return lambda env: value_of(env[name])  # KeyError -> row fallback
    raise _NotVectorizable  # PathExpr walks data


def filter_rows(evaluator, condition: Condition, rows: list,
                pred: Optional[Callable[[dict], bool]],
                counts: Optional[dict] = None) -> list:
    """The rows satisfying ``condition``, in input order.

    ``pred`` is the compiled closure (or ``None``); rows it cannot judge
    (unbound variable -> ``KeyError``) re-run through the general solver,
    which resolves free names exactly as serial evaluation would.

    ``counts`` (EXPLAIN ANALYZE only) receives the per-row split: how
    many rows the compiled closure judged (``"vectorized"``) versus how
    many fell back to the solver (``"fallback"``).  The tallies are
    accumulated locally and flushed once after the loop, so the
    instrumented path adds two dict updates per *batch*, not per row.
    """
    if pred is None:
        solve = evaluator.solve
        if counts is not None:
            counts["fallback"] += len(rows)
        return [env for env in rows
                if next(solve(condition, env), None) is not None]
    kept = []
    keep = kept.append
    solve = evaluator.solve
    vectorized = fallback = 0
    for env in rows:
        try:
            ok = pred(env)
            vectorized += 1
        except KeyError:
            ok = next(solve(condition, env), None) is not None
            fallback += 1
        if ok:
            keep(env)
    if counts is not None:
        counts["vectorized"] += vectorized
        counts["fallback"] += fallback
    return kept
