"""Plan-layer accounting types: the index plan and the pushdown stats.

These used to live in :mod:`repro.chorel.optimize`, below the engine that
consumed them -- a layering inversion once the planner needed them too.
:class:`IndexPlan` is the physical description of an annotation-index
scan (the ``AnnotationFilter`` operator carries one); :class:`EngineStats`
is the per-engine indexed-vs-fallback split.  ``repro.chorel.optimize``
re-exports both, so existing imports keep working.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..lorel.ast import SelectItem
from ..obs.metrics import CounterField, registry as metrics_registry
from ..timestamps import NEG_INF, POS_INF, Timestamp

__all__ = ["IndexPlan", "RangePlan", "EngineStats", "TIME_LABELS"]

TIME_LABELS = {"cre": "create-time", "add": "add-time",
               "rem": "remove-time", "upd": "update-time"}


@dataclass
class IndexPlan:
    """A recognized index-servable query."""

    kind: str                     # cre | upd | add | rem
    labels: tuple[str, ...]       # plain labels of the path, in order
    root_name: str                # the database name the path starts at
    at_var: str
    from_var: Optional[str]      # upd only
    to_var: Optional[str]        # upd only
    object_var: Optional[str] = None  # explicit range variable, if any
    low: Timestamp = NEG_INF
    high: Timestamp = POS_INF
    include_low: bool = False
    include_high: bool = True
    select: tuple[SelectItem, ...] = ()
    object_label: str = "answer"

    def describe(self) -> str:
        """Human-readable plan summary (for logs and tests)."""
        lo = "[" if self.include_low else "("
        hi = "]" if self.include_high else ")"
        return (f"index-scan {self.kind} over "
                f"{'.'.join((self.root_name,) + self.labels)} "
                f"in {lo}{self.low}, {self.high}{hi}")


@dataclass
class RangePlan:
    """A recognized range-servable cross-time query.

    The range analogue of :class:`IndexPlan`: ``kinds`` lists the *real*
    event kinds to enumerate (``("cre", "upd")`` for a node-position
    ``<changed>``, ``("add", "rem")`` for the arc position, a 1-tuple for
    a range-restricted real annotation), the interval comes from the
    annotation's ``in [a..b]`` range (inclusive on both present sides)
    optionally narrowed by folded where conjuncts, and ``strategy`` is
    the physical source the planner chose: ``"index-scan"`` merges
    per-kind :class:`~repro.lore.indexes.TimestampIndex` scans,
    ``"checkpoint-replay"`` rescans the change history (seeking past the
    newest durable checkpoint below the range when a store log is
    attached).  Both strategies must produce the same globally ordered
    event stream -- the cross-time equivalence suite pins that.
    """

    kinds: tuple[str, ...]        # real event kinds to enumerate
    labels: tuple[str, ...]       # plain labels of the path, in order
    root_name: str                # the database name the path starts at
    at_var: str
    from_var: Optional[str] = None   # upd only
    to_var: Optional[str] = None     # upd only
    object_var: Optional[str] = None  # explicit range variable, if any
    low: Timestamp = NEG_INF
    high: Timestamp = POS_INF
    include_low: bool = True
    include_high: bool = True
    last_only: bool = False       # <last-change ...>: newest per subject
    strategy: str = "index-scan"  # | "checkpoint-replay"
    select: tuple[SelectItem, ...] = ()
    object_label: str = "answer"
    time_label: str = "change-time"

    def describe(self) -> str:
        """Human-readable plan summary (for EXPLAIN and the goldens)."""
        lo = "[" if self.include_low else "("
        hi = "]" if self.include_high else ")"
        text = (f"range-scan {'+'.join(self.kinds)} over "
                f"{'.'.join((self.root_name,) + self.labels)} "
                f"in {lo}{self.low}, {self.high}{hi} "
                f"strategy={self.strategy}")
        if self.last_only:
            text += " last-only"
        return text


class EngineStats:
    """Per-engine pushdown accounting: which path served each query.

    Registered in the global metrics registry under
    ``repro.chorel_engine``; the attributes remain the API.
    """

    _FIELDS = ("indexed_queries", "fallback_queries")

    indexed_queries = CounterField()
    fallback_queries = CounterField()

    def __init__(self) -> None:
        self._metrics = metrics_registry().group("repro.chorel_engine",
                                                 self._FIELDS)

    @property
    def total(self) -> int:
        return self.indexed_queries + self.fallback_queries

    @property
    def pushdown_rate(self) -> float:
        """Fraction of queries served by an index plan."""
        return self.indexed_queries / self.total if self.total else 0.0

    def reset(self) -> None:
        self._metrics.reset()

    def as_dict(self) -> dict:
        """Raw counters plus derived rates, for profiles and artifacts."""
        return {"indexed_queries": self.indexed_queries,
                "fallback_queries": self.fallback_queries,
                "total": self.total,
                "pushdown_rate": self.pushdown_rate}

    def describe(self) -> str:
        return (f"queries={self.total} indexed={self.indexed_queries} "
                f"fallback={self.fallback_queries} "
                f"pushdown_rate={self.pushdown_rate:.2f}")
