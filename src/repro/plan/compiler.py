"""The compile entry point: normalize, lower, optimize, explain.

``compile_query`` is the one staging step every engine shares::

    compiled = compile_query(parsed, evaluator, context=ctx)   # plan.compile
    result = execute_plan(compiled.root, execution_ctx)        # operators

The returned :class:`CompiledPlan` carries the optimized logical tree,
the per-pass firing report (what ``repro explain`` prints), and -- when
index selection fired -- the :class:`~repro.plan.stats.IndexPlan` the
``AnnotationFilter`` will scan.  Compilation cost is observable: a
``plan.compile`` trace span, the ``repro.plan.compiled`` counter, and the
``repro.plan.compile_seconds`` histogram (both gated by the bench
baseline).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional

from ..lorel.ast import Query
from ..obs.events import emit_event
from ..obs.metrics import registry as metrics_registry
from ..obs.trace import span
from .analyze import plan_fingerprint
from .ir import AnnotationFilter, DeltaProject, LogicalNode, VersionJoin, render
from .lowering import lower
from .rules import CompileContext, PassManager, PassReport, plan_metrics
from .stats import IndexPlan, RangePlan

__all__ = ["CompiledPlan", "compile_query", "COMPILE_SECONDS_METRIC"]

COMPILE_SECONDS_METRIC = "repro.plan.compile_seconds"


@dataclass
class CompiledPlan:
    """One query, compiled: the optimized tree plus its provenance."""

    source: Query
    normalized: Query
    root: LogicalNode
    labels: dict = field(default_factory=dict)
    passes: tuple[PassReport, ...] = ()
    translation: object = None  # TranslationResult, translate backend only
    compile_seconds: float = 0.0
    fingerprint: str = ""
    runtime: object = None  # PlanStats, set by an analyze=True execution

    @property
    def index_plan(self) -> Optional[IndexPlan]:
        """The index scan serving this query, if index selection fired."""
        if isinstance(self.root, AnnotationFilter):
            return self.root.plan
        return None

    @property
    def is_indexed(self) -> bool:
        return isinstance(self.root, AnnotationFilter)

    @property
    def range_plan(self) -> Optional[RangePlan]:
        """The range scan serving this query, if the range rewrite fired."""
        if isinstance(self.root, (DeltaProject, VersionJoin)):
            return self.root.plan
        return None

    @property
    def is_range(self) -> bool:
        return isinstance(self.root, (DeltaProject, VersionJoin))

    def explain(self, analyze: bool = False) -> str:
        """The optimized plan tree plus the pass-by-pass firing report.

        With ``analyze=True`` the tree is the *runtime* one instead --
        every operator annotated with rows in/out, wall time, estimate,
        and shard fan-out -- which requires the plan to have been
        executed with ``analyze=True`` first (``engine.run(q,
        analyze=True)`` or ``engine.execute(compiled, analyze=True)``).
        """
        if analyze:
            if self.runtime is None:
                raise ValueError(
                    "no runtime stats on this plan: execute it with "
                    "analyze=True before explain(analyze=True)")
            lines = [self.runtime.render()]
            lines.append(f"fingerprint: {self.fingerprint}")
        else:
            lines = [render(self.root)]
        lines.append("passes:")
        for report in self.passes:
            status = "fired" if report.fired else "-"
            line = f"  {report.name:<28} {status}"
            if report.note:
                line += f": {report.note}"
            lines.append(line)
        return "\n".join(lines)


def compile_query(query: Query, evaluator, *,
                  context: CompileContext | None = None,
                  rules=None) -> CompiledPlan:
    """Compile a parsed query to an optimized logical plan.

    ``context`` carries the engine facts the rules consult (index
    availability, polling times, pre-bindings); ``rules`` overrides the
    default pass pipeline (tests isolate single passes this way).
    """
    ctx = context if context is not None else CompileContext(evaluator)
    with span("plan.compile"):
        started = time.perf_counter()
        normalized, labels, _ = evaluator.prepare(query)
        root = lower(normalized, labels)
        # Fingerprint the *lowered* tree, before optimization: the hash
        # identifies the normalized query shape, so the query log and
        # the cardinality-feedback store key the same query the same way
        # regardless of which rewrite passes fire for a given engine.
        fingerprint = plan_fingerprint(root)
        # The range-strategy pass consults recorded cardinality feedback
        # keyed by this fingerprint, so it rides on the compile context.
        ctx.fingerprint = fingerprint
        root, reports = PassManager(rules).run(root, ctx)
        elapsed = time.perf_counter() - started
        plan_metrics()["compiled"].inc()
        metrics_registry().histogram(COMPILE_SECONDS_METRIC).observe(elapsed)
        emit_event("query_compiled", level="info",
                   indexed=isinstance(root, AnnotationFilter),
                   fingerprint=fingerprint,
                   passes_fired=[r.name for r in reports if r.fired],
                   compile_seconds=round(elapsed, 6))
    return CompiledPlan(source=query, normalized=normalized, root=root,
                        labels=labels, passes=reports,
                        compile_seconds=elapsed, fingerprint=fingerprint)
