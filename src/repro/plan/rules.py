"""Rule-based plan rewriting: the optimizer's pass manager and rules.

Each rule is an independent, individually-testable pass over the logical
tree: ``apply(root, ctx) -> (new_root, fired)``.  The
:class:`PassManager` runs them in order, opens a ``plan.pass.<name>``
trace span around each, and bumps the ``repro.plan.rules_fired.<name>``
counter when a pass changes the plan -- so EXPLAIN, profiles, and the
bench baseline all see exactly which rules did work.

The default pipeline, in order:

1. ``virtual-at-expansion`` -- coerce textual ``<at 5Jan97>``-style
   annotation literals (the virtual annotations of Section 4.2.2, and
   pinned real annotations alike) into internal timestamps at compile
   time, so neither the executor nor later passes re-parse them.
2. ``time-range-strategy`` -- recognize the cross-time chain shapes
   (``<changed>``, ``<last-change>``, range-restricted real annotations,
   version-enumerating ``<at [a..b]>``) and replace the chain with a
   :class:`~repro.plan.ir.DeltaProject` or
   :class:`~repro.plan.ir.VersionJoin` over a
   :class:`~repro.plan.ir.TimeRangeScan`, choosing the scan strategy --
   timestamp-index scan for narrow ranges, nearest-checkpoint history
   replay for wide or open-ended ones -- with recorded EXPLAIN ANALYZE
   actuals overriding the width heuristic.
3. ``annotation-literal-pushdown`` -- recognize the linear
   root-to-annotation chain shape and build the candidate
   :class:`~repro.plan.stats.IndexPlan`, folding a pinned annotation
   literal into the degenerate interval ``[t, t]``.
4. ``index-selection`` -- when the engine has an annotation index and the
   candidate's where clause folds into one time interval with a
   supported select list, replace the whole chain with a terminal
   :class:`~repro.plan.ir.AnnotationFilter`.
5. ``predicate-reorder`` -- hoist cheap, pure filter conjuncts (operands
   are literals, time variables, or from-bound variables only) ahead of
   conjuncts that walk paths, preserving the relative order within each
   class.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from ..lorel.ast import (
    And,
    AnnotationExpr,
    Comparison,
    Condition,
    ExistsCond,
    FromItem,
    LikeCond,
    Literal,
    Not,
    Or,
    PathExpr,
    PathStep,
    TimeVar,
    VarRef,
)
from ..obs.events import emit_event
from ..obs.metrics import registry as metrics_registry
from ..obs.trace import span
from ..timestamps import Timestamp, is_timestamp_literal, parse_timestamp
from .ir import (
    AnnotationFilter,
    DeltaProject,
    LogicalNode,
    PathExpand,
    Predicate,
    Project,
    Scan,
    TimeRangeScan,
    VersionJoin,
)
from .stats import TIME_LABELS, IndexPlan, RangePlan

__all__ = ["CompileContext", "PassReport", "RewriteRule", "PassManager",
           "VirtualAtExpansion", "TimeRangeStrategy",
           "AnnotationLiteralPushdown", "IndexSelection",
           "PredicateReorder", "default_rules", "RULE_NAMES",
           "plan_metrics", "fold_interval", "literal_time",
           "RANGE_REPLAY_THRESHOLD_DAYS"]

RULE_NAMES = ("virtual-at-expansion", "time-range-strategy",
              "annotation-literal-pushdown", "index-selection",
              "predicate-reorder")

# Strategy selection for cross-time range scans: ranges spanning at most
# this many days scan the timestamp index, wider (or open-ended) ranges
# replay the change history from the nearest checkpoint.
RANGE_REPLAY_THRESHOLD_DAYS = 30
# Recorded EXPLAIN ANALYZE actuals override the width heuristic at these
# event counts (see TimeRangeStrategy).
RANGE_FEEDBACK_WIDE_EVENTS = 4096
RANGE_FEEDBACK_NARROW_EVENTS = 64

# Default result labels for the bound time variable of a cross-time
# annotation (mirrors the evaluator's default-label table).
_RANGE_TIME_LABELS = {"changed": "change-time",
                      "last-change": "last-change-time",
                      "at": "at-time"}

_metrics_group = None


def plan_metrics():
    """The ``repro.plan`` counter family (kept alive module-wide)."""
    global _metrics_group
    if _metrics_group is None:
        _metrics_group = metrics_registry().group(
            "repro.plan",
            ("compiled",) + tuple(f"rules_fired.{name}"
                                  for name in RULE_NAMES))
    return _metrics_group


@dataclass
class CompileContext:
    """Everything a rewrite rule may consult about the compiling engine.

    ``allow_index`` is cleared when trigger pre-bindings are in play (the
    index scan cannot honor them); ``bound_names`` carries those
    pre-bound variable names for the predicate-reorder purity check.
    """

    evaluator: object
    view: object = None
    root_node: Optional[str] = None
    polling_times: dict = field(default_factory=dict)
    has_index: bool = False
    allow_index: bool = True
    bound_names: frozenset = frozenset()
    candidate: Optional[IndexPlan] = None
    notes: dict = field(default_factory=dict)
    fingerprint: str = ""  # lowered-tree hash (cardinality-feedback key)


@dataclass(frozen=True)
class PassReport:
    """One pass's outcome, as shown by EXPLAIN."""

    name: str
    fired: bool
    note: Optional[str] = None


class RewriteRule:
    """Base class: a named, pure tree-to-tree rewrite."""

    name = "rewrite"

    def apply(self, root: LogicalNode,
              ctx: CompileContext) -> tuple[LogicalNode, bool]:
        raise NotImplementedError


class PassManager:
    """Runs rules in order with per-pass spans and fired counters."""

    def __init__(self, rules=None) -> None:
        self.rules = list(default_rules() if rules is None else rules)

    def run(self, root: LogicalNode,
            ctx: CompileContext) -> tuple[LogicalNode, tuple[PassReport, ...]]:
        metrics = plan_metrics()
        reports = []
        for rule in self.rules:
            with span(f"plan.pass.{rule.name}"):
                root, fired = rule.apply(root, ctx)
            if fired:
                counter = f"rules_fired.{rule.name}"
                if counter in metrics.fields:
                    metrics[counter].inc()
                emit_event("rule_fired", level="debug", rule=rule.name,
                           note=ctx.notes.get(rule.name))
            reports.append(PassReport(rule.name, fired,
                                      ctx.notes.get(rule.name)))
        return root, tuple(reports)


def default_rules() -> list[RewriteRule]:
    """The standard pipeline, in its required order."""
    return [VirtualAtExpansion(), TimeRangeStrategy(),
            AnnotationLiteralPushdown(), IndexSelection(),
            PredicateReorder()]


# ---------------------------------------------------------------------------
# Chain-shape helpers shared by the pushdown rules
# ---------------------------------------------------------------------------

def linear_chain(root: LogicalNode):
    """Decompose ``Project(Predicate?(PathExpand*(Scan)))``.

    Returns ``(project, items, condition)`` with the from-items in
    evaluation order, or ``None`` when the tree has any other shape.
    """
    if not isinstance(root, Project):
        return None
    node = root.child
    condition = None
    if isinstance(node, Predicate):
        condition = node.condition
        node = node.child
    items: list[FromItem] = []
    while isinstance(node, PathExpand):
        items.append(node.item)
        node = node.child
    if not isinstance(node, Scan):
        return None
    items.reverse()
    return root, tuple(items), condition


def literal_time(expr, polling_times: dict) -> Timestamp | None:
    """Coerce a comparison operand to a timestamp, if possible."""
    if isinstance(expr, Literal):
        try:
            return parse_timestamp(expr.value)
        except Exception:
            return None
    if isinstance(expr, TimeVar):
        if expr.index in polling_times:
            return polling_times[expr.index]
    return None


def fold_interval(condition: Condition, plan: IndexPlan,
                  polling_times: dict) -> bool:
    """Fold a conjunction of T-vs-literal comparisons into the plan."""
    if isinstance(condition, And):
        return fold_interval(condition.left, plan, polling_times) and \
            fold_interval(condition.right, plan, polling_times)
    if not isinstance(condition, Comparison):
        return False
    left, op, right = condition.left, condition.op, condition.right
    if isinstance(right, VarRef) and right.name == plan.at_var:
        left, right = right, left
        op = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}.get(op, op)
    if not (isinstance(left, VarRef) and left.name == plan.at_var):
        return False
    when = literal_time(right, polling_times)
    if when is None:
        return False
    if op in ("=", "=="):
        # An equality is the intersection of >= and <=.
        if when > plan.low or (when == plan.low and not plan.include_low):
            plan.low, plan.include_low = when, True
        if when < plan.high or (when == plan.high and not plan.include_high):
            plan.high, plan.include_high = when, True
    elif op == ">":
        if when >= plan.low:
            plan.low, plan.include_low = when, False
    elif op == ">=":
        if when > plan.low:
            plan.low, plan.include_low = when, True
    elif op == "<":
        if when <= plan.high:
            plan.high, plan.include_high = when, False
    elif op == "<=":
        if when < plan.high:
            plan.high, plan.include_high = when, True
    else:
        return False
    return True


def _chain_labels_annotation(items, ctx):
    """Walk a root-anchored linear chain of plain labels.

    Returns ``(labels, annotation, on_arc)`` when the chain starts at a
    name resolving to the root, walks plain labels only, and carries
    exactly one annotation on its final step (``on_arc`` says which
    position); ``None`` for every other shape.  Shared by the index
    pushdown and the time-range strategy, which differ only in which
    annotation kinds they accept.
    """
    if not items:
        return None
    first = items[0]
    if ctx.view.resolve_name(first.path.start) != ctx.root_node:
        return None  # non-root entry points keep the general engine
    total = sum(len(item.path.steps) for item in items)
    labels: list[str] = []
    annotation: AnnotationExpr | None = None
    on_arc = False
    previous_var = None
    seen = 0
    for position, item in enumerate(items):
        if position > 0 and (previous_var is None
                             or item.path.start != previous_var):
            return None  # not one linear root-anchored walk
        if not item.path.steps:
            return None
        for step in item.path.steps:
            seen += 1
            is_last = seen == total
            if step.is_wildcard or step.is_pattern or step.label == "" \
                    or step.is_alternation or step.repetition is not None:
                return None
            if step.arc_annotation is not None:
                if not is_last or step.node_annotation is not None:
                    return None
                annotation = step.arc_annotation
                on_arc = True
            if step.node_annotation is not None:
                if not is_last:
                    return None
                annotation = step.node_annotation
                on_arc = False
            labels.append(step.label)
        previous_var = item.var
    if annotation is None:
        return None
    return tuple(labels), annotation, on_arc


def _select_supported(plan: IndexPlan) -> bool:
    """Only the subject object and annotation variables may be selected."""
    allowed = {plan.at_var, plan.from_var, plan.to_var} - {None}
    for item in plan.select:
        expr = item.expr
        if isinstance(expr, PathExpr) and expr.steps:
            continue  # the hoisted subject path itself (raw-query plans)
        if isinstance(expr, PathExpr):
            expr = VarRef(expr.start)
        if isinstance(expr, VarRef) and (
                expr.name in allowed or expr.name == plan.object_var):
            continue
        return False
    return True


# ---------------------------------------------------------------------------
# Pass 1: virtual-annotation <at T> expansion
# ---------------------------------------------------------------------------

class VirtualAtExpansion(RewriteRule):
    """Resolve annotation time literals once, at compile time.

    Two expansions, applied to every annotation in the from and where
    clauses (the virtual ``<at T>`` annotations of Section 4.2.2 are the
    main customer, pinned real annotations benefit identically):

    * textual timestamps (``<at "5Jan97">`` in programmatically built
      ASTs) are coerced to internal :class:`~repro.timestamps.Timestamp`
      values, so path evaluation never re-parses per binding;
    * polling-time variables (``<at t[0]>``) whose index the engine's
      polling table resolves are expanded to their concrete timestamps --
      unresolvable indexes are left alone so evaluation raises exactly
      the error the legacy path would.
    """

    name = "virtual-at-expansion"

    def apply(self, root, ctx):
        self._changed = False
        self._polling = ctx.polling_times
        rebuilt = self._node(root)
        if self._changed:
            ctx.notes[self.name] = "expanded annotation time literals"
        return rebuilt, self._changed

    # -- tree walk ------------------------------------------------------

    def _node(self, node):
        if isinstance(node, Project):
            return replace(node, child=self._node(node.child))
        if isinstance(node, Predicate):
            child = self._node(node.child) if node.child is not None else None
            return replace(node, condition=self._condition(node.condition),
                           child=child)
        if isinstance(node, PathExpand):
            child = self._node(node.child) if node.child is not None else None
            item = replace(node.item, path=self._path(node.item.path))
            return replace(node, item=item, child=child)
        return node

    def _condition(self, condition):
        if isinstance(condition, (And, Or)):
            return replace(condition, left=self._condition(condition.left),
                           right=self._condition(condition.right))
        if isinstance(condition, Not):
            return replace(condition, operand=self._condition(
                condition.operand))
        if isinstance(condition, Comparison):
            return replace(condition, left=self._expr(condition.left),
                           right=self._expr(condition.right))
        if isinstance(condition, LikeCond):
            return replace(condition, expr=self._expr(condition.expr))
        if isinstance(condition, ExistsCond):
            return replace(condition, path=self._path(condition.path),
                           condition=self._condition(condition.condition))
        return condition

    def _expr(self, expr):
        if isinstance(expr, PathExpr):
            return self._path(expr)
        return expr

    def _path(self, path: PathExpr) -> PathExpr:
        return replace(path, steps=tuple(self._step(step)
                                         for step in path.steps))

    def _step(self, step: PathStep) -> PathStep:
        return replace(step,
                       arc_annotation=self._annotation(step.arc_annotation),
                       node_annotation=self._annotation(step.node_annotation))

    def _annotation(self, annotation: AnnotationExpr | None):
        if annotation is None or annotation.at_literal is None:
            return annotation
        literal = annotation.at_literal
        if isinstance(literal, str) and is_timestamp_literal(literal):
            self._changed = True
            return replace(annotation, at_literal=parse_timestamp(literal))
        if isinstance(literal, TimeVar) and literal.index in self._polling:
            self._changed = True
            return replace(annotation,
                           at_literal=self._polling[literal.index])
        return annotation


# ---------------------------------------------------------------------------
# Pass 2: time-range strategy selection (the cross-time rewrite)
# ---------------------------------------------------------------------------

class TimeRangeStrategy(RewriteRule):
    """Rewrite cross-time chains into range scans with a chosen strategy.

    Recognizes the same linear root-anchored chain shape as the index
    rules, but ending in a *range-family* annotation: ``<changed>`` /
    ``<last-change>`` (node position scans ``cre``/``upd`` events, arc
    position ``add``/``rem``), a real annotation restricted by
    ``in [a..b]``, or the version-enumerating ``<at [a..b]>``.  The
    whole chain becomes a :class:`~repro.plan.ir.DeltaProject` (or
    :class:`~repro.plan.ir.VersionJoin` for versions) over a
    :class:`~repro.plan.ir.TimeRangeScan`.

    The single-time annotation path is *not* a sibling of this rewrite:
    the ``AnnotationFilter`` kernel executes as the degenerate ``[t, t]``
    single-kind case of the same range machinery
    (:func:`~repro.plan.physical.execute_index_plan`).

    Strategy selection: ranges spanning at most
    :data:`RANGE_REPLAY_THRESHOLD_DAYS` days scan the timestamp index;
    wider or open-ended ranges replay the change history from the
    nearest checkpoint.  Cardinality feedback closes the loop: when a
    previous EXPLAIN ANALYZE of the same plan fingerprint recorded the
    scan's actual event count, that count overrides the width heuristic
    (``> RANGE_FEEDBACK_WIDE_EVENTS`` events flips a narrow range to
    replay, ``< RANGE_FEEDBACK_NARROW_EVENTS`` flips a wide one to the
    index).
    """

    name = "time-range-strategy"

    def apply(self, root, ctx):
        if ctx.view is None or ctx.root_node is None:
            return root, False
        if not (ctx.has_index and ctx.allow_index):
            # The range operators verify against the engine's path and
            # timestamp indexes; engines without them keep the general
            # evaluator (which serves every cross-time form directly).
            return root, False
        chain = linear_chain(root)
        if chain is None:
            return root, False
        project, items, condition = chain
        walked = _chain_labels_annotation(items, ctx)
        if walked is None:
            return root, False
        labels, annotation, on_arc = walked
        kinds = self._event_kinds(annotation, on_arc)
        if kinds is None or annotation.at_literal is not None:
            return root, False
        versions = annotation.kind == "at"
        plan = RangePlan(
            kinds=kinds,
            labels=labels,
            root_name=items[0].path.start,
            at_var=annotation.at_var or "__anon_T",
            from_var=annotation.from_var,
            to_var=annotation.to_var,
            object_var=items[-1].var,
            last_only=annotation.kind == "last-change",
            select=project.select,
            object_label=labels[-1],
            time_label=_RANGE_TIME_LABELS.get(annotation.kind,
                                              TIME_LABELS.get(annotation.kind,
                                                              "change-time")),
        )
        if not self._seed_range(plan, annotation.in_range, ctx):
            return root, False
        if condition is not None:
            # Interval folding filters per event, which does not commute
            # with last-only selection or with the version anchor --
            # those shapes keep the general engine when a where clause
            # remains.
            if plan.last_only or versions:
                return root, False
            if not fold_interval(condition, plan, ctx.polling_times):
                return root, False
        if not _select_supported(plan):
            return root, False
        why = self._choose_strategy(plan, ctx, versions)
        scan = TimeRangeScan(plan)
        terminal = VersionJoin(plan, scan) if versions \
            else DeltaProject(plan, scan)
        ctx.notes[self.name] = f"{plan.describe()} ({why})"
        return terminal, True

    @staticmethod
    def _event_kinds(annotation: AnnotationExpr,
                     on_arc: bool) -> tuple[str, ...] | None:
        kind = annotation.kind
        if kind in ("changed", "last-change"):
            return ("add", "rem") if on_arc else ("cre", "upd")
        if annotation.in_range is None:
            return None  # single-time annotations: the index rules' job
        if kind == "at":
            # Version enumeration; the parser only allows the range-
            # restricted <at> in node position.
            return ("cre", "upd")
        if kind in TIME_LABELS:
            return (kind,)
        return None

    @staticmethod
    def _seed_range(plan: RangePlan, rng, ctx) -> bool:
        """Resolve the annotation's ``[a..b]`` bounds into the plan."""
        if rng is None:
            return True  # unrestricted <changed>: the full time axis
        for bound, attr in ((rng.low, "low"), (rng.high, "high")):
            if bound is None:
                continue
            operand = bound if isinstance(bound, TimeVar) else Literal(bound)
            when = literal_time(operand, ctx.polling_times)
            if when is None:
                return False  # unresolvable bound: keep the general engine
            setattr(plan, attr, when)
        return True

    def _choose_strategy(self, plan: RangePlan, ctx,
                         versions: bool) -> str:
        if plan.low.is_finite and plan.high.is_finite:
            width = (plan.high - plan.low) / 86400
            if width <= RANGE_REPLAY_THRESHOLD_DAYS:
                strategy = "index-scan"
                why = (f"width {width:g}d <= "
                       f"{RANGE_REPLAY_THRESHOLD_DAYS}d")
            else:
                strategy = "checkpoint-replay"
                why = f"width {width:g}d > {RANGE_REPLAY_THRESHOLD_DAYS}d"
        else:
            strategy = "checkpoint-replay"
            why = "open-ended range"
        events = self._feedback_events(plan, ctx, strategy, versions)
        if events is not None:
            if strategy == "index-scan" \
                    and events > RANGE_FEEDBACK_WIDE_EVENTS:
                strategy = "checkpoint-replay"
                why = (f"feedback: {events} events > "
                       f"{RANGE_FEEDBACK_WIDE_EVENTS}")
            elif strategy == "checkpoint-replay" \
                    and events < RANGE_FEEDBACK_NARROW_EVENTS:
                strategy = "index-scan"
                why = (f"feedback: {events} events < "
                       f"{RANGE_FEEDBACK_NARROW_EVENTS}")
        plan.strategy = strategy
        return why

    @staticmethod
    def _feedback_events(plan: RangePlan, ctx, strategy: str,
                         versions: bool) -> int | None:
        """The scan's recorded event count for this fingerprint, if any.

        Looks up the shape the plan would execute as under the tentative
        strategy -- the shape a previous analyzed run of the identical
        query recorded -- and returns the ``TimeRangeScan``'s actual
        rows out (preorder position 1, after the terminal).
        """
        if not ctx.fingerprint:
            return None
        from .analyze import cardinality_feedback
        previous, plan.strategy = plan.strategy, strategy
        try:
            scan = TimeRangeScan(plan)
            terminal = VersionJoin(plan, scan) if versions \
                else DeltaProject(plan, scan)
            shape = (terminal.describe(), scan.describe())
            actuals = cardinality_feedback().lookup(ctx.fingerprint, shape)
        finally:
            plan.strategy = previous
        if actuals is None or len(actuals) < 2:
            return None
        return actuals[1]


# ---------------------------------------------------------------------------
# Pass 3: annotation-literal pushdown (candidate construction + pinning)
# ---------------------------------------------------------------------------

class AnnotationLiteralPushdown(RewriteRule):
    """Recognize the index-servable chain and push pinned literals down.

    A candidate chain is a linear walk from a database name that resolves
    to the root, through plain labels only, ending in exactly one real
    (non-``at``) annotation.  A pinned time on that annotation
    (``<add at 5Jan97>``) collapses the candidate's scan interval to the
    degenerate ``[t, t]`` -- the naive engine's equality filter, pushed
    into the index scan.  The candidate is recorded on the context for
    ``index-selection``; the pass *fires* only when it narrowed an
    interval.
    """

    name = "annotation-literal-pushdown"

    def apply(self, root, ctx):
        ctx.candidate = None
        if ctx.view is None or ctx.root_node is None:
            return root, False
        chain = linear_chain(root)
        if chain is None:
            return root, False
        project, items, _ = chain
        candidate = self._candidate(project, items, ctx)
        if candidate is None:
            return root, False
        plan, annotation = candidate
        fired = False
        if annotation.at_literal is not None:
            pinned = literal_time(
                annotation.at_literal if isinstance(annotation.at_literal,
                                                    TimeVar)
                else Literal(annotation.at_literal), ctx.polling_times)
            if pinned is None:
                return root, False
            plan.low = plan.high = pinned
            plan.include_low = plan.include_high = True
            fired = True
            ctx.notes[self.name] = f"pinned {plan.kind} at {pinned}"
        ctx.candidate = plan
        return root, fired

    def _candidate(self, project: Project, items, ctx):
        walked = _chain_labels_annotation(items, ctx)
        if walked is None:
            return None
        labels, annotation, _on_arc = walked
        if annotation.kind not in TIME_LABELS \
                or annotation.in_range is not None:
            # Virtual <at> and the cross-time family (changed,
            # last-change, range-restricted real kinds) are the
            # time-range strategy's shapes, not the index scan's.
            return None
        # Anonymous annotations (<add>) index-scan the full time axis.
        at_var = annotation.at_var or "__anon_T"
        plan = IndexPlan(
            kind=annotation.kind,
            labels=labels,
            root_name=items[0].path.start,
            at_var=at_var,
            from_var=annotation.from_var,
            to_var=annotation.to_var,
            select=project.select,
            object_label=labels[-1],
            object_var=items[-1].var,
        )
        return plan, annotation


# ---------------------------------------------------------------------------
# Pass 4: index selection
# ---------------------------------------------------------------------------

class IndexSelection(RewriteRule):
    """Replace the chain with an ``AnnotationFilter`` when the index fits.

    Requires an attached annotation index, no trigger pre-bindings, a
    candidate from the pushdown pass, a where clause that folds entirely
    into one interval on the annotation's time variable, and a select
    list the row builder supports.
    """

    name = "index-selection"

    def apply(self, root, ctx):
        plan = ctx.candidate
        if plan is None or not (ctx.has_index and ctx.allow_index):
            return root, False
        chain = linear_chain(root)
        if chain is None:
            return root, False
        _, _, condition = chain
        if condition is not None:
            if not fold_interval(condition, plan, ctx.polling_times):
                return root, False
        if not _select_supported(plan):
            return root, False
        ctx.notes[self.name] = plan.describe()
        return AnnotationFilter(plan), True


# ---------------------------------------------------------------------------
# Pass 5: predicate reordering
# ---------------------------------------------------------------------------

class PredicateReorder(RewriteRule):
    """Evaluate cheap pure filters before path-walking conjuncts.

    A conjunct is *pure* when every operand is a literal, a polling-time
    variable, or a variable the from clause (or a trigger pre-binding)
    is guaranteed to have bound -- so hoisting it can only prune earlier,
    never change bindings.  Conjuncts keep their relative order within
    the pure and non-pure classes, preserving the evaluator's
    deterministic enumeration.
    """

    name = "predicate-reorder"

    def apply(self, root, ctx):
        chain = linear_chain(root)
        if chain is None:
            return root, False
        project, items, condition = chain
        if condition is None:
            return root, False
        bound = self._bound_names(items) | set(ctx.bound_names)
        conjuncts = self._conjuncts(condition)
        if len(conjuncts) < 2:
            return root, False
        pure = [c for c in conjuncts if self._is_pure(c, bound)]
        rest = [c for c in conjuncts if not self._is_pure(c, bound)]
        reordered = pure + rest
        if reordered == conjuncts:
            return root, False
        rebuilt = reordered[0]
        for part in reordered[1:]:
            rebuilt = And(rebuilt, part)
        predicate = root.child
        new_root = replace(project,
                           child=replace(predicate, condition=rebuilt))
        ctx.notes[self.name] = f"hoisted {len(pure)} pure filter(s)"
        return new_root, True

    def _bound_names(self, items) -> set[str]:
        bound: set[str] = set()
        for item in items:
            if item.var:
                bound.add(item.var)
            for step in item.path.steps:
                for annotation in (step.arc_annotation,
                                   step.node_annotation):
                    if annotation is None:
                        continue
                    for name in (annotation.at_var, annotation.from_var,
                                 annotation.to_var):
                        if name:
                            bound.add(name)
        return bound

    def _conjuncts(self, condition) -> list:
        if isinstance(condition, And):
            return self._conjuncts(condition.left) + \
                self._conjuncts(condition.right)
        return [condition]

    def _is_pure(self, condition, bound: set[str]) -> bool:
        if isinstance(condition, Comparison):
            return self._pure_expr(condition.left, bound) and \
                self._pure_expr(condition.right, bound)
        if isinstance(condition, LikeCond):
            return self._pure_expr(condition.expr, bound)
        if isinstance(condition, Not):
            return self._is_pure(condition.operand, bound)
        if isinstance(condition, Or):
            return self._is_pure(condition.left, bound) and \
                self._is_pure(condition.right, bound)
        return False  # ExistsCond and anything unknown walks data

    @staticmethod
    def _pure_expr(expr, bound: set[str]) -> bool:
        if isinstance(expr, VarRef):
            return expr.name in bound
        return isinstance(expr, (Literal, TimeVar))
