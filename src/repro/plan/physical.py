"""Physical operators: batched and iterator execution over logical plans.

The primary execution model is **batched**: each logical node maps to a
transformer over :class:`~repro.plan.batch.EnvBatch` lists of environment
dicts.  ``PathExpand`` advances a whole batch with the evaluator's
frontier kernel (:meth:`~repro.lorel.eval.Evaluator.bind_from_item_batch`),
``Predicate`` compiles its condition once and filters vectorized
(:func:`~repro.plan.batch.compile_predicate`), and ``Exchange`` ships
whole row lists to pool workers -- thread or process -- so sharding
amortizes per-task overhead over hundreds of rows instead of paying
generator plumbing per environment.

The original environment-streaming iterator model is retained
(``batch_size=0``): each node maps to a small generator composed exactly
like the legacy evaluator's ``from_envs`` recursion.  Both models replay
the same depth-first, data-ordered enumeration -- a batched frontier
expands its rows in frontier order, producing the concatenation of the
per-row depth-first enumerations -- which is what keeps all three paths
(legacy, iterator, batched) row- and order-identical for any batch size
or shard count (``tests/plan/test_batched_equivalence.py`` proves it).

The operators delegate single-binding work to the evaluator's staged API
(:meth:`~repro.lorel.eval.Evaluator.bind_from_item`,
:meth:`~repro.lorel.eval.Evaluator.solve`,
:meth:`~repro.lorel.eval.Evaluator.project_row`) -- those staging steps
*are* the physical kernels; this module is the plumbing between them.

Two operators do more than plumb:

* :func:`execute_index_plan` -- the ``AnnotationFilter`` kernel: a
  timestamp-index range scan with backward path verification (absorbed
  from the pre-planner ``IndexedChorelEngine``).
* the ``Exchange`` operator -- binds its source chain serially,
  shards the environments contiguously, runs the detached stages on
  pool workers, and concatenates in shard order.  Under a process pool
  the shard task is the module-level :func:`run_stages_on_rows` driven by
  the worker-global evaluator installed by the pool initializer
  (:func:`repro.parallel.pool.worker_evaluator`), so nothing unpicklable
  crosses the process boundary.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter
from typing import Iterator, Optional

from ..lorel.ast import PathExpr
from ..lorel.result import ObjectRef, QueryResult, Row
from ..obs.events import emit_event
from ..obs.propagation import (
    attach_stage_stats,
    capture_task_telemetry,
    merge_task_telemetry,
    pop_stage_stats,
)
from ..obs.trace import Span, get_tracer, span
from ..timestamps import POS_INF, Timestamp
from .analyze import StageRecorder
from .batch import (
    DEFAULT_BATCH_SIZE,
    EnvBatch,
    batch_rows_histogram,
    compile_predicate,
    filter_rows,
)
from .ir import (
    AnnotationFilter,
    DeltaProject,
    Exchange,
    LogicalNode,
    PathExpand,
    Predicate,
    Project,
    Scan,
    TimeRangeScan,
    VersionJoin,
)
from .stats import TIME_LABELS, IndexPlan, RangePlan

__all__ = ["ExecutionContext", "execute_plan", "execute_index_plan",
           "execute_range_plan", "insert_exchange", "iter_envs",
           "iter_batches", "run_stages_on_rows", "run_compiled"]


@dataclass
class ExecutionContext:
    """Everything the operators need from the engine at execution time.

    ``index``/``paths``/``doem`` are only set by the indexed engine (the
    ``AnnotationFilter`` kernel needs them); ``pool`` and the parallel
    knobs are only set when the :class:`~repro.parallel.executor.
    ParallelExecutor` drives execution.  ``batch_size`` selects the
    execution model: positive widths run the batched operators (the
    default), ``0`` the per-environment iterator model.  ``stats`` is an
    optional :class:`~repro.plan.analyze.PlanStats` collector (EXPLAIN
    ANALYZE); when ``None`` -- the default -- every operator takes its
    original uninstrumented path.  ``observed`` collects execution facts
    the engine reads back afterwards (currently the shard fan-out).
    """

    evaluator: object
    base_env: dict = field(default_factory=dict)
    index: object = None
    paths: object = None
    doem: object = None
    log: object = None  # HistoryLog for checkpoint-replay, if attached
    pool: object = None
    min_shard_size: int = 1
    parallel_metrics: object = None
    batch_size: int = DEFAULT_BATCH_SIZE
    stats: object = None
    observed: dict = field(default_factory=dict)


# ---------------------------------------------------------------------------
# Environment-streaming operators
# ---------------------------------------------------------------------------

def iter_envs(node: LogicalNode, ctx: ExecutionContext) -> Iterator[dict]:
    """The environment stream a logical (sub)chain produces.

    A thin dispatcher: when ``ctx.stats`` is attached (ANALYZE), the
    node's output stream is wrapped so rows out and inclusive wall time
    land in its :class:`~repro.plan.analyze.OpStats`; otherwise the raw
    generator runs untouched.
    """
    stream = _node_envs(node, ctx)
    if ctx.stats is not None:
        stream = ctx.stats.observe_envs(node, stream)
    return stream


def _child_envs(parent: LogicalNode, ctx: ExecutionContext) -> Iterator[dict]:
    """A node's input stream -- its child's output, counted as rows in."""
    stream = iter_envs(parent.child, ctx)
    if ctx.stats is not None:
        stream = ctx.stats.observe_input_envs(parent, stream)
    return stream


def _node_envs(node: LogicalNode, ctx: ExecutionContext) -> Iterator[dict]:
    if isinstance(node, Scan):
        yield dict(ctx.base_env)
    elif isinstance(node, PathExpand):
        for env in _child_envs(node, ctx):
            yield from ctx.evaluator.bind_from_item(node.item, env)
    elif isinstance(node, Predicate):
        evaluator = ctx.evaluator
        # The iterator model never vectorizes: every judged row is a
        # solver fallback in the ANALYZE accounting.
        counts = (ctx.stats.predicate_counts(node)
                  if ctx.stats is not None else None)
        for env in _child_envs(node, ctx):
            if counts is not None:
                counts["fallback"] += 1
            if next(evaluator.solve(node.condition, env), None) is not None:
                yield env
    elif isinstance(node, Exchange):
        yield from _exchange_envs(node, ctx)
    else:  # pragma: no cover - lowering only builds the nodes above
        raise TypeError(f"cannot stream environments from {node!r}")


def _apply_stages(stages, envs: Iterator[dict],
                  ctx: ExecutionContext) -> Iterator[dict]:
    """Run detached Exchange stages over an environment stream, in order."""
    for stage in stages:
        envs = _apply_stage(stage, envs, ctx)
    return envs


def _apply_stage(stage, envs, ctx):
    if isinstance(stage, PathExpand):
        def expand(source=envs, item=stage.item):
            for env in source:
                yield from ctx.evaluator.bind_from_item(item, env)
        return expand()
    if isinstance(stage, Predicate):
        def keep(source=envs, condition=stage.condition):
            evaluator = ctx.evaluator
            for env in source:
                if next(evaluator.solve(condition, env), None) is not None:
                    yield env
        return keep()
    raise TypeError(f"unsupported exchange stage {stage!r}")


def _exchange_envs(node: Exchange, ctx: ExecutionContext) -> Iterator[dict]:
    """Bind the source serially, shard, fan out, merge in shard order."""
    from ..parallel.sharding import chunk_evenly, shard_count

    stats = ctx.stats
    with span("parallel.bind_first"):
        first_envs = list(_child_envs(node, ctx))
    metrics = ctx.parallel_metrics
    workers = ctx.pool.max_workers if ctx.pool is not None else 1
    shards = shard_count(len(first_envs), workers,
                         min_shard_size=ctx.min_shard_size)
    if ctx.pool is None or shards <= 1:
        if metrics is not None:
            metrics["serial_queries"].inc()
        if stats is not None:
            # Materialize through the recorder-aware shard kernel so the
            # detached stage nodes account even on the serial path (row
            # and order identical to the lazy generators -- the batched
            # equivalence suite pins filter_rows against the solver).
            recorder = StageRecorder(len(node.stages))
            rows = run_stages_on_rows(node.stages, first_envs,
                                      ctx.evaluator, recorder)
            stats.merge_stage_payload(node, recorder.stages)
            yield from rows
            return
        yield from _apply_stages(node.stages, iter(first_envs), ctx)
        return
    if metrics is not None:
        metrics["sharded_queries"].inc()
        metrics["shards"].inc(shards)
    ctx.observed["shards"] = shards
    if stats is not None:
        stats.op_for(node).shards = shards
    chunks = chunk_evenly(first_envs, shards)
    emit_event("shard_dispatched", level="debug", mode="thread-iter",
               shards=shards, rows=len(first_envs))
    with span("parallel.fanout", shards=shards):
        if stats is not None:
            evaluator = ctx.evaluator

            def task(chunk, stages=node.stages):
                recorder = StageRecorder(len(stages))
                return (run_stages_on_rows(stages, chunk, evaluator,
                                           recorder),
                        recorder)
            env_lists = []
            for envs, recorder in ctx.pool.map_ordered(task, chunks):
                stats.merge_stage_payload(node, recorder.stages)
                env_lists.append(envs)
        else:
            env_lists = ctx.pool.map_ordered(
                lambda chunk: list(_apply_stages(node.stages, iter(chunk),
                                                 ctx)),
                chunks)
    for envs in env_lists:
        yield from envs


# ---------------------------------------------------------------------------
# Batched operators
# ---------------------------------------------------------------------------

def iter_batches(node: LogicalNode,
                 ctx: ExecutionContext) -> Iterator[EnvBatch]:
    """The batch stream a logical (sub)chain produces.

    Batch boundaries are re-established at ``ctx.batch_size`` after each
    expansion (an expansion can multiply rows); row order across the
    stream is identical to :func:`iter_envs` for any width.

    Like :func:`iter_envs` this is a dispatcher: with ``ctx.stats``
    attached the output stream is wrapped for per-operator accounting,
    without it the raw generator runs untouched.
    """
    stream = _node_batches(node, ctx)
    if ctx.stats is not None:
        stream = ctx.stats.observe_batches(node, stream)
    return stream


def _child_batches(parent: LogicalNode,
                   ctx: ExecutionContext) -> Iterator[EnvBatch]:
    """A node's input stream -- its child's output, counted as rows in."""
    stream = iter_batches(parent.child, ctx)
    if ctx.stats is not None:
        stream = ctx.stats.observe_input(parent, stream)
    return stream


def _node_batches(node: LogicalNode,
                  ctx: ExecutionContext) -> Iterator[EnvBatch]:
    size = ctx.batch_size
    if isinstance(node, Scan):
        yield EnvBatch([dict(ctx.base_env)])
    elif isinstance(node, PathExpand):
        kernel = ctx.evaluator.bind_from_item_batch
        for batch in _child_batches(node, ctx):
            rows = kernel(node.item, batch.rows)
            if rows:
                yield from EnvBatch(rows).split(size)
    elif isinstance(node, Predicate):
        evaluator = ctx.evaluator
        pred = compile_predicate(node.condition, evaluator)
        counts = (ctx.stats.predicate_counts(node)
                  if ctx.stats is not None else None)
        for batch in _child_batches(node, ctx):
            kept = filter_rows(evaluator, node.condition, batch.rows, pred,
                               counts=counts)
            if kept:
                yield EnvBatch(kept)
    elif isinstance(node, Exchange):
        yield from _exchange_batches(node, ctx)
    else:  # pragma: no cover - lowering only builds the nodes above
        raise TypeError(f"cannot stream batches from {node!r}")


def run_stages_on_rows(stages, rows: list, evaluator,
                       recorder: StageRecorder | None = None) -> list:
    """Run detached Exchange stages over one shard's rows, in order.

    Module-level and driven by explicit arguments so a process-pool
    worker can execute it by reference: ``stages`` are frozen AST-bearing
    dataclasses and ``rows`` plain environment dicts, both picklable; the
    evaluator is the worker-global replica, never shipped per task.

    ``recorder`` (ANALYZE only) tallies one dict per stage -- rows
    in/out, wall seconds, predicate vectorized/fallback split -- that the
    coordinator folds into the stage nodes' :class:`~repro.plan.analyze.
    OpStats` across shards.
    """
    for idx, stage in enumerate(stages):
        rec = recorder.stages[idx] if recorder is not None else None
        if rec is not None:
            rec["rows_in"] += len(rows)
            started = perf_counter()
        if isinstance(stage, PathExpand):
            rows = evaluator.bind_from_item_batch(stage.item, rows)
        elif isinstance(stage, Predicate):
            pred = compile_predicate(stage.condition, evaluator)
            rows = filter_rows(evaluator, stage.condition, rows, pred,
                               counts=rec)
        else:
            raise TypeError(f"unsupported exchange stage {stage!r}")
        if rec is not None:
            rec["wall_seconds"] += perf_counter() - started
            rec["rows_out"] += len(rows)
    return rows


def _stage_task(task):
    """Process-pool entry point: one ``(stages, rows, trace, collect)``
    shard.

    Returns ``(rows, telemetry)``: the worker's registry delta (and,
    when the parent had tracing on at dispatch, its span subtree) ride
    back beside the result so the parent can merge them -- the counters
    a forked worker bumps would otherwise die with the fork.  With
    ``collect`` (the parent is running ANALYZE) the per-stage row/time
    recorder rides in the same payload
    (:func:`~repro.obs.propagation.attach_stage_stats`).
    """
    from ..parallel.pool import worker_evaluator
    stages, rows, trace, collect = task
    telemetry: dict = {}
    recorder = StageRecorder(len(stages)) if collect else None
    with capture_task_telemetry(telemetry, trace=trace):
        with span("parallel.shard", rows=len(rows)):
            rows = run_stages_on_rows(stages, rows, worker_evaluator(),
                                      recorder)
    if recorder is not None:
        attach_stage_stats(telemetry, recorder.stages)
    return rows, telemetry


def _exchange_batches(node: Exchange,
                      ctx: ExecutionContext) -> Iterator[EnvBatch]:
    """Bind the source serially, shard whole batches out, merge in order."""
    from ..parallel.sharding import chunk_evenly, shard_count

    stats = ctx.stats
    with span("parallel.bind_first"):
        first_rows: list = []
        for batch in _child_batches(node, ctx):
            first_rows.extend(batch.rows)
    metrics = ctx.parallel_metrics
    pool = ctx.pool
    workers = pool.max_workers if pool is not None else 1
    shards = shard_count(len(first_rows), workers,
                         min_shard_size=ctx.min_shard_size)
    if pool is None or shards <= 1:
        if metrics is not None:
            metrics["serial_queries"].inc()
        recorder = StageRecorder(len(node.stages)) if stats is not None \
            else None
        rows = run_stages_on_rows(node.stages, first_rows, ctx.evaluator,
                                  recorder)
        if recorder is not None:
            stats.merge_stage_payload(node, recorder.stages)
        if rows:
            yield from EnvBatch(rows).split(ctx.batch_size)
        return
    if metrics is not None:
        metrics["sharded_queries"].inc()
        metrics["shards"].inc(shards)
    ctx.observed["shards"] = shards
    if stats is not None:
        stats.op_for(node).shards = shards
    chunks = chunk_evenly(first_rows, shards)
    process_pool = getattr(pool, "kind", "thread") == "process"
    emit_event("shard_dispatched", level="debug",
               mode="process" if process_pool else "thread",
               shards=shards, rows=len(first_rows))
    with span("parallel.fanout", shards=shards) as fanout:
        if process_pool:
            trace = get_tracer().enabled
            collect = stats is not None
            outcomes = pool.map_ordered(
                _stage_task,
                [(node.stages, chunk, trace, collect) for chunk in chunks])
            # Merge each shard's telemetry before yielding its rows:
            # counters sum, histograms bucket-merge, worker span
            # subtrees re-parent under this dispatching fanout span,
            # and (ANALYZE) stage recorders fold into the plan tree.
            row_lists = []
            for rows, telemetry in outcomes:
                if stats is not None:
                    stats.merge_stage_payload(node,
                                              pop_stage_stats(telemetry))
                merge_task_telemetry(
                    telemetry,
                    parent_span=fanout if isinstance(fanout, Span) else None)
                row_lists.append(rows)
        elif stats is not None:
            evaluator = ctx.evaluator

            def task(chunk, stages=node.stages):
                recorder = StageRecorder(len(stages))
                return (run_stages_on_rows(stages, chunk, evaluator,
                                           recorder),
                        recorder)
            row_lists = []
            for rows, recorder in pool.map_ordered(task, chunks):
                stats.merge_stage_payload(node, recorder.stages)
                row_lists.append(rows)
        else:
            evaluator = ctx.evaluator
            row_lists = pool.map_ordered(
                lambda chunk: run_stages_on_rows(node.stages, chunk,
                                                 evaluator),
                chunks)
    for rows in row_lists:
        if rows:
            yield EnvBatch(rows)


def insert_exchange(root: LogicalNode) -> Optional[LogicalNode]:
    """Rewrite a chain for sharded execution, or ``None`` if unshardable.

    The innermost ``PathExpand`` (the first from-item) plus the ``Scan``
    become the Exchange's serially-bound source; everything above it
    (later expansions, the predicate) becomes the detached shard stages.
    Plans without a from clause -- or already-indexed plans -- stay
    serial.
    """
    if not isinstance(root, Project):
        return None
    chain: list[LogicalNode] = []
    node = root.child
    while isinstance(node, (Predicate, PathExpand)):
        chain.append(node)
        node = node.child
    if not isinstance(node, Scan):
        return None
    expands = [n for n in chain if isinstance(n, PathExpand)]
    if not expands:
        return None
    first = expands[-1]  # innermost = the first from-item
    source = PathExpand(item=first.item, child=Scan())
    stages = tuple(
        PathExpand(item=n.item) if isinstance(n, PathExpand)
        else Predicate(condition=n.condition)
        for n in reversed(chain[:-1]))  # application order, minus the source
    exchange = Exchange(child=source, stages=stages)
    return Project(select=root.select, labels=root.labels, child=exchange)


# ---------------------------------------------------------------------------
# Plan execution
# ---------------------------------------------------------------------------

def execute_plan(root: LogicalNode, ctx: ExecutionContext) -> QueryResult:
    """Run a logical plan to a :class:`~repro.lorel.result.QueryResult`."""
    if isinstance(root, AnnotationFilter):
        return execute_index_plan(root.plan, ctx, node=root)
    if isinstance(root, (DeltaProject, VersionJoin)):
        return execute_range_plan(root.plan, ctx, node=root,
                                  versions=isinstance(root, VersionJoin))
    if not isinstance(root, Project):
        raise TypeError(f"plan root must be Project, AnnotationFilter, "
                        f"DeltaProject, or VersionJoin, "
                        f"got {type(root).__name__}")
    evaluator = ctx.evaluator
    stats = ctx.stats
    op = stats.op_for(root) if stats is not None else None
    started = perf_counter() if op is not None else 0.0
    result = QueryResult()
    if ctx.batch_size > 0:
        project = evaluator.project_row
        add = result.add
        observe = batch_rows_histogram().observe
        source = _child_batches(root, ctx)
        for batch in source:
            observe(len(batch))
            for env in batch.rows:
                add(project(root.select, env, root.labels))
    else:
        for env in _child_envs(root, ctx):
            result.add(evaluator.project_row(root.select, env, root.labels))
    if op is not None:
        # Inclusive: the loop pulls the whole child pipeline, so the
        # root's time is the query's end-to-end execute time.
        op.wall_seconds += perf_counter() - started
        op.rows_out = len(result)
    return result


def run_compiled(compiled, root: LogicalNode, ctx: ExecutionContext,
                 engine, *, analyze: bool = False) -> QueryResult:
    """Execute a plan root and record the run in the query log.

    The one post-compile execution path every engine facade shares:
    with ``analyze=True`` a :class:`~repro.plan.analyze.PlanStats`
    collector is attached over ``root`` (the *executed* tree -- pass the
    Exchange-rewritten root when sharding), finalized into
    ``compiled.runtime``, and its actuals fed to the cardinality
    feedback store; either way the execution lands one record in the
    :mod:`repro.obs.querylog`.
    """
    from ..obs.querylog import record_engine_query
    from .analyze import PlanStats

    stats = None
    if analyze:
        stats = PlanStats(root, fingerprint=compiled.fingerprint)
        ctx.stats = stats
    started = perf_counter()
    result = execute_plan(root, ctx)
    elapsed = perf_counter() - started
    if stats is not None:
        stats.finalize(len(result), elapsed)
        compiled.runtime = stats
    record_engine_query(engine, compiled, result, elapsed,
                        shards=ctx.observed.get("shards", 0),
                        plan_stats=stats)
    return result


# ---------------------------------------------------------------------------
# The range kernel (TimeRangeScan + DeltaProject / VersionJoin)
# ---------------------------------------------------------------------------
#
# One executor serves every time-travel shape.  A *scan* enumerates
# `(when, kind, subject)` change events -- from merged per-kind
# timestamp-index range scans or from a replay of the change history --
# in one global deterministic order, and the terminal verifies each
# event backward along the plan's path before building its row.  The
# single-time annotation path (`AnnotationFilter`) is the degenerate
# case: `execute_index_plan` wraps its `IndexPlan` as a one-kind
# `RangePlan` and runs the same kernel.

_KIND_RANK = {"cre": 0, "upd": 1, "add": 2, "rem": 3}


def execute_index_plan(plan: IndexPlan, ctx: ExecutionContext,
                       node: AnnotationFilter | None = None) -> QueryResult:
    """Serve an index-servable query entirely from the annotation index.

    Since the cross-time refactor this is the degenerate single-kind
    case of the range machinery: the ``IndexPlan``'s interval (usually
    pinned to ``[t, t]``) becomes a :class:`~repro.plan.stats.RangePlan`
    scanned with the index strategy -- there is no separate single-time
    code path.
    """
    range_plan = RangePlan(
        kinds=(plan.kind,),
        labels=plan.labels,
        root_name=plan.root_name,
        at_var=plan.at_var,
        from_var=plan.from_var,
        to_var=plan.to_var,
        object_var=plan.object_var,
        low=plan.low,
        high=plan.high,
        include_low=plan.include_low,
        include_high=plan.include_high,
        strategy="index-scan",
        select=plan.select,
        object_label=plan.object_label,
        time_label=TIME_LABELS[plan.kind],
    )
    return execute_range_plan(range_plan, ctx, node=node)


def execute_range_plan(plan: RangePlan, ctx: ExecutionContext,
                       node: LogicalNode | None = None, *,
                       versions: bool = False) -> QueryResult:
    """Run a range plan: scan events, verify backward, build rows.

    ``node`` (the terminal IR node, when executing a compiled tree)
    routes ANALYZE accounting: the terminal counts events in and rows
    out, and its ``TimeRangeScan`` child -- when present -- counts the
    events the scan emitted.
    """
    op = scan_op = None
    if ctx.stats is not None and node is not None:
        op = ctx.stats.op_for(node)
        children = node.children()
        if children:
            scan_op = ctx.stats.op_for(children[0])
    started = perf_counter() if op is not None else 0.0
    events = _range_events(plan, ctx)
    if scan_op is not None:
        scan_op.rows_out = len(events)
        scan_op.wall_seconds += perf_counter() - started
    result = QueryResult()
    if versions:
        _version_join(plan, events, ctx, result, op)
    else:
        if plan.last_only:
            events = _last_events(events)
        for when, kind, subject in events:
            if op is not None:
                op.rows_in += 1  # one candidate event verified per row
            row = _verify_and_build(plan, kind, when, subject, ctx)
            if row is not None:
                result.add(row)
    if op is not None:
        op.wall_seconds += perf_counter() - started
        op.rows_out = len(result)
    return result


def _range_events(plan: RangePlan, ctx: ExecutionContext) -> list:
    """All in-range ``(when, kind, subject)`` events, globally ordered.

    The order -- time, then kind (cre, upd, add, rem), then subject --
    is strategy-independent: the index scan and the history replay
    produce identical streams, which is what makes the two strategies
    interchangeable (the cross-time equivalence suite pins it).
    """
    if plan.strategy == "checkpoint-replay":
        events = _replay_events(plan, ctx)
    else:
        events = _index_events(plan, ctx)
    events.sort(key=lambda event: (event[0]._order_key(),
                                   _KIND_RANK[event[1]],
                                   _subject_key(event[2])))
    return events


def _subject_key(subject) -> tuple[str, str, str]:
    if isinstance(subject, str):
        return ("", "", subject)
    return (subject.source, subject.label, subject.target)


def _index_events(plan: RangePlan, ctx: ExecutionContext) -> list:
    """One timestamp-index range scan per event kind, merged."""
    events = []
    for kind in plan.kinds:
        # Arc kinds narrow the scan to the final step's label via the
        # index's label partition; node kinds scan the kind list.
        label = plan.labels[-1] if kind in ("add", "rem") else None
        for when, subject in ctx.index.between(
                kind, plan.low, plan.high,
                include_low=plan.include_low,
                include_high=plan.include_high,
                label=label):
            events.append((when, kind, subject))
    return events


def _replay_events(plan: RangePlan, ctx: ExecutionContext) -> list:
    """Replay the change history, keeping the in-range wanted events."""
    from ..oem.changes import AddArc, CreNode, RemArc
    from ..oem.model import Arc

    wanted = set(plan.kinds)
    final_label = plan.labels[-1]
    events = []
    for when, change_set in _replay_entries(plan, ctx):
        if not _within_range(plan, when):
            continue
        for operation in change_set:
            if isinstance(operation, CreNode):
                kind, subject = "cre", operation.node
            elif isinstance(operation, AddArc):
                kind, subject = "add", Arc(*operation.arc)
            elif isinstance(operation, RemArc):
                kind, subject = "rem", Arc(*operation.arc)
            else:  # UpdNode
                kind, subject = "upd", operation.node
            if kind not in wanted:
                continue
            if kind in ("add", "rem") and subject.label != final_label:
                continue
            events.append((when, kind, subject))
    return events


def _replay_entries(plan: RangePlan, ctx: ExecutionContext):
    """The ``(timestamp, change set)`` pairs to replay, range-pruned.

    With a store log attached (``ctx.log``) the scan starts after the
    newest durable checkpoint strictly below the range -- everything at
    or before it is guaranteed out of range -- which is the
    nearest-checkpoint seek that makes wide-range replay cheaper than a
    from-origin scan.  Without a log the history is re-encoded from the
    DOEM annotations (Section 3.2) and pruned by timestamp alone.
    """
    if ctx.log is not None:
        entries = ctx.log.entries()
        floor = None
        if plan.low.is_finite:
            for ref in ctx.log.checkpoints():
                if ref.at < plan.low and (floor is None or ref.at > floor):
                    floor = ref.at
        if floor is not None:
            entries = tuple(entry for entry in entries
                            if entry[0] > floor)
        return entries
    from ..doem.extract import encoded_history
    return tuple(encoded_history(ctx.doem))


def _within_range(plan: RangePlan, when: Timestamp) -> bool:
    if when < plan.low or (when == plan.low and not plan.include_low):
        return False
    if when > plan.high or (when == plan.high and not plan.include_high):
        return False
    return True


def _last_events(events: list) -> list:
    """Keep the newest event per subject (``<last-change>`` semantics).

    Node events group per node across ``cre``/``upd``; arc events group
    per ``(source, label, target)`` arc, matching the evaluator's
    per-child latest-event selection.
    """
    latest: dict = {}
    for event in events:  # already globally ordered ascending
        latest[_subject_key(event[2])] = event
    kept = list(latest.values())
    kept.sort(key=lambda event: (event[0]._order_key(),
                                 _KIND_RANK[event[1]],
                                 _subject_key(event[2])))
    return kept


def _version_join(plan: RangePlan, events: list, ctx: ExecutionContext,
                  result: QueryResult, op) -> None:
    """Enumerate versions of the live path's nodes over the range.

    Mirrors the evaluator's ``<at [a..b]>`` semantics: every node on the
    live label path contributes one anchor version at the range's lower
    bound when it already existed there (no creation, or created at or
    before the bound), plus one version per in-range ``cre``/``upd``
    event.  The bound time context rides on the :class:`ObjectRef`, so
    value reads happen "as of" each version.
    """
    view = getattr(ctx.evaluator, "view", None)
    times_by_node: dict[str, list] = {}
    for when, _kind, subject in events:
        bucket = times_by_node.setdefault(subject, [])
        if bucket and bucket[-1] == when:
            continue  # cre and upd at the same instant are one version
        bucket.append(when)
    low = plan.low if plan.low.is_finite else None
    for node in sorted(ctx.paths.nodes(plan.labels)):
        if op is not None:
            op.rows_in += 1
        times: list = []
        if low is not None:
            creations = list(view.cre_fun(node)) if view is not None else []
            if not creations or min(creations) <= low:
                times.append(low)
        for when in times_by_node.get(node, ()):
            if times and when == times[-1]:
                continue  # the anchor coincides with the first event
            times.append(when)
        for when in times:
            result.add(_build_row(plan, "at", when, node, None, at=when))


def _verify_and_build(plan: RangePlan, kind: str, when: Timestamp,
                      subject, ctx: ExecutionContext) -> Row | None:
    graph = ctx.doem.graph
    if kind in ("add", "rem"):
        arc = subject
        if arc.label != plan.labels[-1]:
            return None
        if not _connects_backward(arc.source, plan.labels[:-1], ctx):
            return None
        return _build_row(plan, kind, when, arc.target, None)
    # cre / upd: subject is a node; the final arc must be live now.
    node = subject
    final_label = plan.labels[-1]
    for in_arc in graph.in_arcs(node):
        if in_arc.label != final_label:
            continue
        if not ctx.doem.arc_live_at(*in_arc, POS_INF):
            continue
        if _connects_backward(in_arc.source, plan.labels[:-1], ctx):
            if kind == "upd":
                triple = _upd_triple_at(node, when, ctx)
                if triple is None:
                    return None
                return _build_row(plan, kind, when, node, triple)
            return _build_row(plan, kind, when, node, None)
    return None


def _connects_backward(node: str, labels: tuple[str, ...],
                       ctx: ExecutionContext) -> bool:
    """Is there a live path root -labels-> node?

    Served by the memoized :class:`~repro.lore.indexes.PathIndex`: one
    forward expansion per distinct label prefix instead of a backward
    BFS per hit.
    """
    return ctx.paths.contains(node, labels)


def _upd_triple_at(node: str, when: Timestamp, ctx: ExecutionContext):
    for at, old, new in ctx.doem.upd_triples(node):
        if at == when:
            return (old, new)
    return None


def _build_row(plan: RangePlan, kind: str, when: Timestamp, node: str,
               upd_values, at: Timestamp | None = None) -> Row:
    items: list[tuple[str, object]] = []
    for item in plan.select:
        expr = item.expr
        if isinstance(expr, PathExpr) and expr.steps:
            label = item.label or plan.object_label
            items.append((label, ObjectRef(node, at)))
            continue
        name = expr.start if isinstance(expr, PathExpr) else expr.name
        if name == plan.object_var:
            items.append((item.label or plan.object_label,
                          ObjectRef(node, at)))
        elif name == plan.at_var:
            items.append((item.label or plan.time_label, when))
        elif name == plan.from_var:
            items.append((item.label or "old-value", upd_values[0]))
        elif name == plan.to_var:
            items.append((item.label or "new-value", upd_values[1]))
    return Row(tuple(items))
