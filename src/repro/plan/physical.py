"""Physical operators: batched and iterator execution over logical plans.

The primary execution model is **batched**: each logical node maps to a
transformer over :class:`~repro.plan.batch.EnvBatch` lists of environment
dicts.  ``PathExpand`` advances a whole batch with the evaluator's
frontier kernel (:meth:`~repro.lorel.eval.Evaluator.bind_from_item_batch`),
``Predicate`` compiles its condition once and filters vectorized
(:func:`~repro.plan.batch.compile_predicate`), and ``Exchange`` ships
whole row lists to pool workers -- thread or process -- so sharding
amortizes per-task overhead over hundreds of rows instead of paying
generator plumbing per environment.

The original environment-streaming iterator model is retained
(``batch_size=0``): each node maps to a small generator composed exactly
like the legacy evaluator's ``from_envs`` recursion.  Both models replay
the same depth-first, data-ordered enumeration -- a batched frontier
expands its rows in frontier order, producing the concatenation of the
per-row depth-first enumerations -- which is what keeps all three paths
(legacy, iterator, batched) row- and order-identical for any batch size
or shard count (``tests/plan/test_batched_equivalence.py`` proves it).

The operators delegate single-binding work to the evaluator's staged API
(:meth:`~repro.lorel.eval.Evaluator.bind_from_item`,
:meth:`~repro.lorel.eval.Evaluator.solve`,
:meth:`~repro.lorel.eval.Evaluator.project_row`) -- those staging steps
*are* the physical kernels; this module is the plumbing between them.

Two operators do more than plumb:

* :func:`execute_index_plan` -- the ``AnnotationFilter`` kernel: a
  timestamp-index range scan with backward path verification (absorbed
  from the pre-planner ``IndexedChorelEngine``).
* the ``Exchange`` operator -- binds its source chain serially,
  shards the environments contiguously, runs the detached stages on
  pool workers, and concatenates in shard order.  Under a process pool
  the shard task is the module-level :func:`run_stages_on_rows` driven by
  the worker-global evaluator installed by the pool initializer
  (:func:`repro.parallel.pool.worker_evaluator`), so nothing unpicklable
  crosses the process boundary.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional

from ..lorel.ast import PathExpr
from ..lorel.result import ObjectRef, QueryResult, Row
from ..obs.events import emit_event
from ..obs.propagation import capture_task_telemetry, merge_task_telemetry
from ..obs.trace import Span, get_tracer, span
from ..timestamps import POS_INF, Timestamp
from .batch import (
    DEFAULT_BATCH_SIZE,
    EnvBatch,
    batch_rows_histogram,
    compile_predicate,
    filter_rows,
)
from .ir import (
    AnnotationFilter,
    Exchange,
    LogicalNode,
    PathExpand,
    Predicate,
    Project,
    Scan,
)
from .stats import TIME_LABELS, IndexPlan

__all__ = ["ExecutionContext", "execute_plan", "execute_index_plan",
           "insert_exchange", "iter_envs", "iter_batches",
           "run_stages_on_rows"]


@dataclass
class ExecutionContext:
    """Everything the operators need from the engine at execution time.

    ``index``/``paths``/``doem`` are only set by the indexed engine (the
    ``AnnotationFilter`` kernel needs them); ``pool`` and the parallel
    knobs are only set when the :class:`~repro.parallel.executor.
    ParallelExecutor` drives execution.  ``batch_size`` selects the
    execution model: positive widths run the batched operators (the
    default), ``0`` the per-environment iterator model.
    """

    evaluator: object
    base_env: dict = field(default_factory=dict)
    index: object = None
    paths: object = None
    doem: object = None
    pool: object = None
    min_shard_size: int = 1
    parallel_metrics: object = None
    batch_size: int = DEFAULT_BATCH_SIZE


# ---------------------------------------------------------------------------
# Environment-streaming operators
# ---------------------------------------------------------------------------

def iter_envs(node: LogicalNode, ctx: ExecutionContext) -> Iterator[dict]:
    """The environment stream a logical (sub)chain produces."""
    if isinstance(node, Scan):
        yield dict(ctx.base_env)
    elif isinstance(node, PathExpand):
        for env in iter_envs(node.child, ctx):
            yield from ctx.evaluator.bind_from_item(node.item, env)
    elif isinstance(node, Predicate):
        evaluator = ctx.evaluator
        for env in iter_envs(node.child, ctx):
            if next(evaluator.solve(node.condition, env), None) is not None:
                yield env
    elif isinstance(node, Exchange):
        yield from _exchange_envs(node, ctx)
    else:  # pragma: no cover - lowering only builds the nodes above
        raise TypeError(f"cannot stream environments from {node!r}")


def _apply_stages(stages, envs: Iterator[dict],
                  ctx: ExecutionContext) -> Iterator[dict]:
    """Run detached Exchange stages over an environment stream, in order."""
    for stage in stages:
        envs = _apply_stage(stage, envs, ctx)
    return envs


def _apply_stage(stage, envs, ctx):
    if isinstance(stage, PathExpand):
        def expand(source=envs, item=stage.item):
            for env in source:
                yield from ctx.evaluator.bind_from_item(item, env)
        return expand()
    if isinstance(stage, Predicate):
        def keep(source=envs, condition=stage.condition):
            evaluator = ctx.evaluator
            for env in source:
                if next(evaluator.solve(condition, env), None) is not None:
                    yield env
        return keep()
    raise TypeError(f"unsupported exchange stage {stage!r}")


def _exchange_envs(node: Exchange, ctx: ExecutionContext) -> Iterator[dict]:
    """Bind the source serially, shard, fan out, merge in shard order."""
    from ..parallel.sharding import chunk_evenly, shard_count

    with span("parallel.bind_first"):
        first_envs = list(iter_envs(node.child, ctx))
    metrics = ctx.parallel_metrics
    workers = ctx.pool.max_workers if ctx.pool is not None else 1
    shards = shard_count(len(first_envs), workers,
                         min_shard_size=ctx.min_shard_size)
    if ctx.pool is None or shards <= 1:
        if metrics is not None:
            metrics["serial_queries"].inc()
        yield from _apply_stages(node.stages, iter(first_envs), ctx)
        return
    if metrics is not None:
        metrics["sharded_queries"].inc()
        metrics["shards"].inc(shards)
    chunks = chunk_evenly(first_envs, shards)
    emit_event("shard_dispatched", level="debug", mode="thread-iter",
               shards=shards, rows=len(first_envs))
    with span("parallel.fanout", shards=shards):
        env_lists = ctx.pool.map_ordered(
            lambda chunk: list(_apply_stages(node.stages, iter(chunk), ctx)),
            chunks)
    for envs in env_lists:
        yield from envs


# ---------------------------------------------------------------------------
# Batched operators
# ---------------------------------------------------------------------------

def iter_batches(node: LogicalNode,
                 ctx: ExecutionContext) -> Iterator[EnvBatch]:
    """The batch stream a logical (sub)chain produces.

    Batch boundaries are re-established at ``ctx.batch_size`` after each
    expansion (an expansion can multiply rows); row order across the
    stream is identical to :func:`iter_envs` for any width.
    """
    size = ctx.batch_size
    if isinstance(node, Scan):
        yield EnvBatch([dict(ctx.base_env)])
    elif isinstance(node, PathExpand):
        kernel = ctx.evaluator.bind_from_item_batch
        for batch in iter_batches(node.child, ctx):
            rows = kernel(node.item, batch.rows)
            if rows:
                yield from EnvBatch(rows).split(size)
    elif isinstance(node, Predicate):
        evaluator = ctx.evaluator
        pred = compile_predicate(node.condition, evaluator)
        for batch in iter_batches(node.child, ctx):
            kept = filter_rows(evaluator, node.condition, batch.rows, pred)
            if kept:
                yield EnvBatch(kept)
    elif isinstance(node, Exchange):
        yield from _exchange_batches(node, ctx)
    else:  # pragma: no cover - lowering only builds the nodes above
        raise TypeError(f"cannot stream batches from {node!r}")


def run_stages_on_rows(stages, rows: list, evaluator) -> list:
    """Run detached Exchange stages over one shard's rows, in order.

    Module-level and driven by explicit arguments so a process-pool
    worker can execute it by reference: ``stages`` are frozen AST-bearing
    dataclasses and ``rows`` plain environment dicts, both picklable; the
    evaluator is the worker-global replica, never shipped per task.
    """
    for stage in stages:
        if isinstance(stage, PathExpand):
            rows = evaluator.bind_from_item_batch(stage.item, rows)
        elif isinstance(stage, Predicate):
            pred = compile_predicate(stage.condition, evaluator)
            rows = filter_rows(evaluator, stage.condition, rows, pred)
        else:
            raise TypeError(f"unsupported exchange stage {stage!r}")
    return rows


def _stage_task(task):
    """Process-pool entry point: one ``(stages, rows, trace)`` shard.

    Returns ``(rows, telemetry)``: the worker's registry delta (and,
    when the parent had tracing on at dispatch, its span subtree) ride
    back beside the result so the parent can merge them -- the counters
    a forked worker bumps would otherwise die with the fork.
    """
    from ..parallel.pool import worker_evaluator
    stages, rows, trace = task
    telemetry: dict = {}
    with capture_task_telemetry(telemetry, trace=trace):
        with span("parallel.shard", rows=len(rows)):
            rows = run_stages_on_rows(stages, rows, worker_evaluator())
    return rows, telemetry


def _exchange_batches(node: Exchange,
                      ctx: ExecutionContext) -> Iterator[EnvBatch]:
    """Bind the source serially, shard whole batches out, merge in order."""
    from ..parallel.sharding import chunk_evenly, shard_count

    with span("parallel.bind_first"):
        first_rows: list = []
        for batch in iter_batches(node.child, ctx):
            first_rows.extend(batch.rows)
    metrics = ctx.parallel_metrics
    pool = ctx.pool
    workers = pool.max_workers if pool is not None else 1
    shards = shard_count(len(first_rows), workers,
                         min_shard_size=ctx.min_shard_size)
    if pool is None or shards <= 1:
        if metrics is not None:
            metrics["serial_queries"].inc()
        rows = run_stages_on_rows(node.stages, first_rows, ctx.evaluator)
        if rows:
            yield from EnvBatch(rows).split(ctx.batch_size)
        return
    if metrics is not None:
        metrics["sharded_queries"].inc()
        metrics["shards"].inc(shards)
    chunks = chunk_evenly(first_rows, shards)
    process_pool = getattr(pool, "kind", "thread") == "process"
    emit_event("shard_dispatched", level="debug",
               mode="process" if process_pool else "thread",
               shards=shards, rows=len(first_rows))
    with span("parallel.fanout", shards=shards) as fanout:
        if process_pool:
            trace = get_tracer().enabled
            outcomes = pool.map_ordered(
                _stage_task,
                [(node.stages, chunk, trace) for chunk in chunks])
            # Merge each shard's telemetry before yielding its rows:
            # counters sum, histograms bucket-merge, and worker span
            # subtrees re-parent under this dispatching fanout span.
            row_lists = []
            for rows, telemetry in outcomes:
                merge_task_telemetry(
                    telemetry,
                    parent_span=fanout if isinstance(fanout, Span) else None)
                row_lists.append(rows)
        else:
            evaluator = ctx.evaluator
            row_lists = pool.map_ordered(
                lambda chunk: run_stages_on_rows(node.stages, chunk,
                                                 evaluator),
                chunks)
    for rows in row_lists:
        if rows:
            yield EnvBatch(rows)


def insert_exchange(root: LogicalNode) -> Optional[LogicalNode]:
    """Rewrite a chain for sharded execution, or ``None`` if unshardable.

    The innermost ``PathExpand`` (the first from-item) plus the ``Scan``
    become the Exchange's serially-bound source; everything above it
    (later expansions, the predicate) becomes the detached shard stages.
    Plans without a from clause -- or already-indexed plans -- stay
    serial.
    """
    if not isinstance(root, Project):
        return None
    chain: list[LogicalNode] = []
    node = root.child
    while isinstance(node, (Predicate, PathExpand)):
        chain.append(node)
        node = node.child
    if not isinstance(node, Scan):
        return None
    expands = [n for n in chain if isinstance(n, PathExpand)]
    if not expands:
        return None
    first = expands[-1]  # innermost = the first from-item
    source = PathExpand(item=first.item, child=Scan())
    stages = tuple(
        PathExpand(item=n.item) if isinstance(n, PathExpand)
        else Predicate(condition=n.condition)
        for n in reversed(chain[:-1]))  # application order, minus the source
    exchange = Exchange(child=source, stages=stages)
    return Project(select=root.select, labels=root.labels, child=exchange)


# ---------------------------------------------------------------------------
# Plan execution
# ---------------------------------------------------------------------------

def execute_plan(root: LogicalNode, ctx: ExecutionContext) -> QueryResult:
    """Run a logical plan to a :class:`~repro.lorel.result.QueryResult`."""
    if isinstance(root, AnnotationFilter):
        return execute_index_plan(root.plan, ctx)
    if not isinstance(root, Project):
        raise TypeError(f"plan root must be Project or AnnotationFilter, "
                        f"got {type(root).__name__}")
    evaluator = ctx.evaluator
    result = QueryResult()
    if ctx.batch_size > 0:
        project = evaluator.project_row
        add = result.add
        observe = batch_rows_histogram().observe
        for batch in iter_batches(root.child, ctx):
            observe(len(batch))
            for env in batch.rows:
                add(project(root.select, env, root.labels))
        return result
    for env in iter_envs(root.child, ctx):
        result.add(evaluator.project_row(root.select, env, root.labels))
    return result


# ---------------------------------------------------------------------------
# The AnnotationFilter kernel (timestamp-index scan + backward verify)
# ---------------------------------------------------------------------------

def execute_index_plan(plan: IndexPlan, ctx: ExecutionContext) -> QueryResult:
    """Serve an index-servable query entirely from the annotation index."""
    # Arc-annotation plans narrow the scan to the final step's label via
    # the index's label partition; node kinds scan the kind list.
    label = plan.labels[-1] if plan.kind in ("add", "rem") else None
    hits = ctx.index.between(plan.kind, plan.low, plan.high,
                             include_low=plan.include_low,
                             include_high=plan.include_high,
                             label=label)
    result = QueryResult()
    for when, subject in hits:
        row = _verify_and_build(plan, when, subject, ctx)
        if row is not None:
            result.add(row)
    return result


def _verify_and_build(plan: IndexPlan, when: Timestamp, subject,
                      ctx: ExecutionContext) -> Row | None:
    graph = ctx.doem.graph
    if plan.kind in ("add", "rem"):
        arc = subject
        if arc.label != plan.labels[-1]:
            return None
        if not _connects_backward(arc.source, plan.labels[:-1], ctx):
            return None
        return _build_row(plan, when, arc.target, None)
    # cre / upd: subject is a node; the final arc must be live now.
    node = subject
    final_label = plan.labels[-1]
    for in_arc in graph.in_arcs(node):
        if in_arc.label != final_label:
            continue
        if not ctx.doem.arc_live_at(*in_arc, POS_INF):
            continue
        if _connects_backward(in_arc.source, plan.labels[:-1], ctx):
            if plan.kind == "upd":
                triple = _upd_triple_at(node, when, ctx)
                if triple is None:
                    return None
                return _build_row(plan, when, node, triple)
            return _build_row(plan, when, node, None)
    return None


def _connects_backward(node: str, labels: tuple[str, ...],
                       ctx: ExecutionContext) -> bool:
    """Is there a live path root -labels-> node?

    Served by the memoized :class:`~repro.lore.indexes.PathIndex`: one
    forward expansion per distinct label prefix instead of a backward
    BFS per hit.
    """
    return ctx.paths.contains(node, labels)


def _upd_triple_at(node: str, when: Timestamp, ctx: ExecutionContext):
    for at, old, new in ctx.doem.upd_triples(node):
        if at == when:
            return (old, new)
    return None


def _build_row(plan: IndexPlan, when: Timestamp, node: str,
               upd_values) -> Row:
    object_var = getattr(plan, "object_var", None)
    items: list[tuple[str, object]] = []
    for item in plan.select:
        expr = item.expr
        if isinstance(expr, PathExpr) and expr.steps:
            label = item.label or plan.object_label
            items.append((label, ObjectRef(node)))
            continue
        name = expr.start if isinstance(expr, PathExpr) else expr.name
        if name == object_var:
            items.append((item.label or plan.object_label, ObjectRef(node)))
        elif name == plan.at_var:
            items.append((item.label or TIME_LABELS[plan.kind], when))
        elif name == plan.from_var:
            items.append((item.label or "old-value", upd_values[0]))
        elif name == plan.to_var:
            items.append((item.label or "new-value", upd_values[1]))
    return Row(tuple(items))
