"""The logical plan IR: a small algebra lowered from the Lorel/Chorel AST.

Nine node kinds cover every query the engines accept:

* :class:`Scan` -- the ambient environment (database names, polling
  times, trigger pre-bindings); the leaf every chain starts from.
* :class:`PathExpand` -- one normalized from-item: extend each incoming
  environment with every data-ordered binding of the item's path.
* :class:`Predicate` -- the where clause: keep the environments with at
  least one solution.
* :class:`Project` -- the select clause: emit one labeled row per
  surviving environment (set semantics apply downstream).
* :class:`AnnotationFilter` -- the index-selection rewrite's terminal
  node: answer the whole query from a timestamp-index scan described by
  an :class:`~repro.plan.stats.IndexPlan`.
* :class:`Exchange` -- the parallel boundary: materialize the source
  chain's environments, cut them into contiguous shards, and run the
  detached ``stages`` on pool workers, concatenating in shard order (the
  merge discipline that keeps sharded results order-identical to serial).
* :class:`TimeRangeScan` -- the cross-time source leaf: enumerate the
  change events of a :class:`~repro.plan.stats.RangePlan`'s interval,
  either by merged timestamp-index scans or by checkpoint-anchored
  history replay (the plan's ``strategy``), in one global deterministic
  order.
* :class:`DeltaProject` -- the range rewrite's terminal for change
  queries (``<changed>``, ``<last-change>``, range-restricted real
  annotations): verify each scanned event backward along the plan's
  path and project it into a result row.
* :class:`VersionJoin` -- the range rewrite's terminal for version
  enumeration (``<at [a..b]>``): join the live path's node set against
  the scanned events, anchoring each node's in-range version sequence
  at the range's lower bound.

Nodes are frozen dataclasses; rewrite passes build new trees rather than
mutating.  ``render(root)`` is the EXPLAIN tree dump -- deterministic for
a given query, which is what the golden files in ``tests/plan/goldens``
pin down.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..lorel.ast import Condition, FromItem, Literal, SelectItem, TimeVar, VarRef
from .stats import IndexPlan, RangePlan

__all__ = ["LogicalNode", "Scan", "PathExpand", "Predicate", "Project",
           "AnnotationFilter", "TimeRangeScan", "DeltaProject",
           "VersionJoin", "Exchange", "render"]


class LogicalNode:
    """Base class for logical plan nodes."""

    def children(self) -> tuple["LogicalNode", ...]:
        return ()

    def describe(self) -> str:  # pragma: no cover - subclasses override
        return type(self).__name__


@dataclass(frozen=True)
class Scan(LogicalNode):
    """The ambient environment: where every evaluation chain starts."""

    def describe(self) -> str:
        return "Scan"


@dataclass(frozen=True)
class PathExpand(LogicalNode):
    """Extend each incoming environment along one from-item's path.

    ``child`` is ``None`` when the node rides inside an
    :class:`Exchange` as a detached shard stage.
    """

    item: FromItem
    child: Optional[LogicalNode] = None

    def children(self) -> tuple[LogicalNode, ...]:
        return (self.child,) if self.child is not None else ()

    def describe(self) -> str:
        return f"PathExpand {self.item}"


@dataclass(frozen=True)
class Predicate(LogicalNode):
    """Keep environments with at least one solution to the condition."""

    condition: Condition
    child: Optional[LogicalNode] = None

    def children(self) -> tuple[LogicalNode, ...]:
        return (self.child,) if self.child is not None else ()

    def describe(self) -> str:
        return f"Predicate {self.condition}"


@dataclass(frozen=True)
class Project(LogicalNode):
    """Emit one labeled row per surviving environment."""

    select: tuple[SelectItem, ...]
    labels: dict = field(default_factory=dict)
    child: LogicalNode = None  # type: ignore[assignment]

    def children(self) -> tuple[LogicalNode, ...]:
        return (self.child,) if self.child is not None else ()

    def describe(self) -> str:
        shown = []
        for item in self.select:
            expr = item.expr
            if isinstance(expr, VarRef):
                shown.append(item.label or self.labels.get(expr.name,
                                                           expr.name))
            elif isinstance(expr, Literal):
                shown.append(item.label or "value")
            elif isinstance(expr, TimeVar):
                shown.append(item.label or "time")
            else:
                shown.append(item.label or str(expr))
        return "Project [" + ", ".join(shown) + "]"


@dataclass(frozen=True)
class AnnotationFilter(LogicalNode):
    """Answer the whole query from an annotation-index scan.

    Index selection replaces the entire ``Project`` chain with this
    terminal node: the :class:`~repro.plan.stats.IndexPlan` carries the
    interval, the path to verify backward, and the select list.
    """

    plan: IndexPlan

    def describe(self) -> str:
        return f"AnnotationFilter {self.plan.describe()}"


@dataclass(frozen=True)
class TimeRangeScan(LogicalNode):
    """Enumerate change events inside a time range (the range source leaf).

    The :class:`~repro.plan.stats.RangePlan` names the event kinds, the
    interval, and the physical ``strategy``: ``index-scan`` merges one
    timestamp-index range scan per kind, ``checkpoint-replay`` rescans
    the change history (seeking past the newest durable checkpoint below
    the range when a store log is attached).  Either way the emitted
    stream is globally ordered by ``(time, kind, subject)``, so the two
    strategies are row- and order-interchangeable.
    """

    plan: RangePlan

    def describe(self) -> str:
        return f"TimeRangeScan {self.plan.describe()}"


@dataclass(frozen=True)
class DeltaProject(LogicalNode):
    """Verify and project scanned change events into result rows.

    The range rewrite's terminal for change queries: each event from the
    child :class:`TimeRangeScan` is verified backward along the plan's
    path (the same discipline as the ``AnnotationFilter`` kernel) and
    built into a row; ``last-only`` plans keep the newest in-range event
    per subject first.
    """

    plan: RangePlan
    child: Optional[LogicalNode] = None

    def children(self) -> tuple[LogicalNode, ...]:
        return (self.child,) if self.child is not None else ()

    def describe(self) -> str:
        tail = " last-only" if self.plan.last_only else ""
        return f"DeltaProject {'+'.join(self.plan.kinds)}{tail}"


@dataclass(frozen=True)
class VersionJoin(LogicalNode):
    """Enumerate the versions of the path's nodes over the plan's range.

    The range rewrite's terminal for ``<at [a..b]>``: the live path's
    node set is joined against the child :class:`TimeRangeScan`'s
    ``cre``/``upd`` events; a node that predates the range anchors one
    version at the lower bound, and each in-range event adds another.
    """

    plan: RangePlan
    child: Optional[LogicalNode] = None

    def children(self) -> tuple[LogicalNode, ...]:
        return (self.child,) if self.child is not None else ()

    def describe(self) -> str:
        path = ".".join((self.plan.root_name,) + self.plan.labels)
        return f"VersionJoin {path}"


@dataclass(frozen=True)
class Exchange(LogicalNode):
    """The parallel boundary between serial binding and sharded stages.

    ``child`` is the source chain (the first :class:`PathExpand` over
    :class:`Scan`), bound serially on the coordinating thread; ``stages``
    are detached :class:`PathExpand`/:class:`Predicate` nodes each shard
    applies in order on a pool worker.
    """

    child: LogicalNode
    stages: tuple[LogicalNode, ...] = ()

    def children(self) -> tuple[LogicalNode, ...]:
        return (self.child,) + self.stages

    def describe(self) -> str:
        return f"Exchange stages={len(self.stages)}"


def render(root: LogicalNode, indent: str = "") -> str:
    """The indented EXPLAIN tree for a (sub)plan, one node per line."""
    lines = [f"{indent}{root.describe()}"]
    for child in root.children():
        lines.append(render(child, indent + "  "))
    return "\n".join(lines)
