"""repro.plan -- the staged query planner all four engines share.

Three stages (see ``docs/query-planner.md``):

1. **Logical IR** (:mod:`repro.plan.ir`): ``Scan`` / ``PathExpand`` /
   ``AnnotationFilter`` / ``Predicate`` / ``Project`` / ``Exchange``
   plus the cross-time trio ``TimeRangeScan`` / ``DeltaProject`` /
   ``VersionJoin``, lowered from the normalized Lorel/Chorel AST
   (:mod:`repro.plan.lowering`).
2. **Rewrite passes** (:mod:`repro.plan.rules`): a rule-based
   :class:`PassManager` running virtual-``<at T>`` expansion,
   time-range strategy selection, annotation-literal pushdown, index
   selection, and predicate reordering -- each with its own trace span
   and fired counter.
3. **Physical operators** (:mod:`repro.plan.physical`): a batched
   operator model (:mod:`repro.plan.batch`) whose kernels are the
   evaluator's staged methods -- with a per-environment iterator model
   retained at ``batch_size=0`` -- plus the annotation-index scan, the
   range kernel (merged index scans or checkpoint-anchored history
   replay), and the sharding ``Exchange``.

Engines call :func:`compile_query` then :func:`execute_plan`; the
:class:`CompiledPlan` in between is what ``repro explain`` renders.
"""

from .analyze import (
    CardinalityFeedback,
    OpStats,
    PlanStats,
    cardinality_feedback,
    plan_fingerprint,
)
from .batch import DEFAULT_BATCH_SIZE, EnvBatch, compile_predicate
from .compiler import CompiledPlan, compile_query
from .ir import (
    AnnotationFilter,
    DeltaProject,
    Exchange,
    LogicalNode,
    PathExpand,
    Predicate,
    Project,
    Scan,
    TimeRangeScan,
    VersionJoin,
    render,
)
from .lowering import lower
from .physical import (
    ExecutionContext,
    execute_index_plan,
    execute_plan,
    execute_range_plan,
    insert_exchange,
    run_compiled,
)
from .rules import (
    AnnotationLiteralPushdown,
    CompileContext,
    IndexSelection,
    PassManager,
    PassReport,
    PredicateReorder,
    RewriteRule,
    TimeRangeStrategy,
    VirtualAtExpansion,
    default_rules,
)
from .stats import EngineStats, IndexPlan, RangePlan

__all__ = [
    "AnnotationFilter",
    "AnnotationLiteralPushdown",
    "CardinalityFeedback",
    "CompileContext",
    "CompiledPlan",
    "DeltaProject",
    "DEFAULT_BATCH_SIZE",
    "EnvBatch",
    "compile_predicate",
    "EngineStats",
    "Exchange",
    "ExecutionContext",
    "IndexPlan",
    "IndexSelection",
    "LogicalNode",
    "OpStats",
    "PassManager",
    "PassReport",
    "PathExpand",
    "PlanStats",
    "Predicate",
    "PredicateReorder",
    "Project",
    "RangePlan",
    "RewriteRule",
    "Scan",
    "TimeRangeScan",
    "TimeRangeStrategy",
    "VersionJoin",
    "VirtualAtExpansion",
    "cardinality_feedback",
    "compile_query",
    "default_rules",
    "execute_index_plan",
    "execute_plan",
    "execute_range_plan",
    "insert_exchange",
    "lower",
    "plan_fingerprint",
    "render",
    "run_compiled",
]
