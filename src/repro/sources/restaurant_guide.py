"""The Palo Alto Weekly restaurant guide, simulated.

The paper's running example and its first motivating application
(Section 1.1) observe an evolving restaurant guide.  The real guide is a
long-gone web page, so this module provides a deterministic synthetic
equivalent with the same observable behaviour:

* the data is irregular on purpose, like Figure 2: prices are sometimes
  integers, sometimes strings ("moderate"); addresses are sometimes flat
  strings, sometimes street/city objects; some entries lack fields;
  parking objects are shared between restaurants and ``nearby-eats`` arcs
  cycle back;
* :meth:`RestaurantGuideSource.advance` evolves the guide with seeded
  pseudo-random events -- openings, closings, price changes, review
  edits, comment additions -- at a configurable daily rate;
* :meth:`RestaurantGuideSource.export` emits the current OEM database
  (identifiers scrambled per poll, as autonomous sources do);
* :meth:`RestaurantGuideSource.render_html` renders the guide page, which
  is what the htmldiff example (Figure 1) consumes.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..oem.model import OEMDatabase
from ..oem.values import COMPLEX
from ..timestamps import Timestamp, parse_timestamp
from .base import scramble_ids

__all__ = ["Restaurant", "RestaurantGuideSource"]

_CUISINES = ["Thai", "Indian", "Italian", "Mexican", "Chinese", "French",
             "Japanese", "Greek", "Ethiopian", "Vietnamese", "American"]
_STREETS = ["Lytton", "University", "Hamilton", "Emerson", "Ramona",
            "Forest", "Alma", "Bryant", "Waverley", "Homer"]
_NAME_FIRST = ["Golden", "Blue", "Royal", "Little", "Grand", "Spicy",
               "Green", "Silver", "Happy", "Old"]
_NAME_SECOND = ["Lotus", "Dragon", "Garden", "Palace", "Kitchen", "Table",
                "Corner", "Harvest", "Terrace", "Spoon"]
_COMMENTS = ["usually full", "quiet on weekdays", "great patio",
             "cash only", "popular with students", "live music fridays",
             "need info", "renovated recently"]
_PRICE_WORDS = ["cheap", "moderate", "expensive"]


@dataclass
class Restaurant:
    """One guide entry in the source's internal (pre-OEM) representation."""

    key: int
    name: str
    cuisine: str | None
    price: object            # int dollars or a descriptive string
    street: str
    street_number: int
    flat_address: bool       # render address as one string vs. sub-object
    comments: list[str] = field(default_factory=list)
    parking_lot: int | None = None
    rating: int | None = None


class RestaurantGuideSource:
    """A deterministic, evolving restaurant guide source.

    ``seed`` fixes the entire trajectory; ``events_per_day`` sets the
    expected number of change events applied per simulated day of
    :meth:`advance`; ``stable_ids`` (default False) controls identifier
    scrambling on export.
    """

    def __init__(self, seed: int = 1997, initial_restaurants: int = 8,
                 events_per_day: float = 2.0, stable_ids: bool = False) -> None:
        self._rng = random.Random(seed)
        self.events_per_day = events_per_day
        self.stable_ids = stable_ids
        self.now: Timestamp = parse_timestamp("1Dec96")
        self._next_key = 1
        self._export_count = 0
        self.restaurants: dict[int, Restaurant] = {}
        self.parking_lots: dict[int, str] = {}
        self.event_log: list[tuple[Timestamp, str]] = []
        for _ in range(initial_restaurants):
            self._open_restaurant(log=False)

    # ------------------------------------------------------------------
    # Evolution
    # ------------------------------------------------------------------

    def _new_name(self) -> str:
        while True:
            name = (f"{self._rng.choice(_NAME_FIRST)} "
                    f"{self._rng.choice(_NAME_SECOND)}")
            if all(r.name != name for r in self.restaurants.values()):
                return name
            # Disambiguate crowded name space deterministically.
            name = f"{name} {self._rng.randint(2, 99)}"
            if all(r.name != name for r in self.restaurants.values()):
                return name

    def _open_restaurant(self, log: bool = True) -> Restaurant:
        key = self._next_key
        self._next_key += 1
        rng = self._rng
        if rng.random() < 0.4 and self.parking_lots:
            lot = rng.choice(sorted(self.parking_lots))
        elif rng.random() < 0.5:
            lot = len(self.parking_lots) + 1
            self.parking_lots[lot] = (f"{rng.choice(_STREETS)} lot "
                                      f"{rng.randint(1, 9)}")
        else:
            lot = None
        restaurant = Restaurant(
            key=key,
            name=self._new_name(),
            cuisine=rng.choice(_CUISINES) if rng.random() < 0.85 else None,
            price=(rng.randrange(5, 60)
                   if rng.random() < 0.6 else rng.choice(_PRICE_WORDS)),
            street=rng.choice(_STREETS),
            street_number=rng.randrange(100, 999),
            flat_address=rng.random() < 0.5,
            comments=[rng.choice(_COMMENTS)] if rng.random() < 0.5 else [],
            parking_lot=lot,
            rating=rng.randint(1, 5) if rng.random() < 0.7 else None,
        )
        self.restaurants[key] = restaurant
        if log:
            self.event_log.append((self.now, f"open {restaurant.name}"))
        return restaurant

    def _apply_event(self) -> None:
        rng = self._rng
        roll = rng.random()
        live = sorted(self.restaurants)
        if roll < 0.22 or not live:
            self._open_restaurant()
            return
        key = rng.choice(live)
        restaurant = self.restaurants[key]
        if roll < 0.32 and len(live) > 3:
            del self.restaurants[key]
            self.event_log.append((self.now, f"close {restaurant.name}"))
        elif roll < 0.55:
            old = restaurant.price
            if isinstance(old, int):
                restaurant.price = max(5, old + rng.choice([-10, -5, 5, 10, 15]))
            else:
                restaurant.price = rng.choice(
                    [word for word in _PRICE_WORDS if word != old]
                    + [rng.randrange(5, 60)])
            self.event_log.append(
                (self.now, f"price {restaurant.name} {old}->{restaurant.price}"))
        elif roll < 0.72:
            comment = rng.choice(_COMMENTS)
            if comment not in restaurant.comments:
                restaurant.comments.append(comment)
                self.event_log.append(
                    (self.now, f"comment {restaurant.name} +{comment!r}"))
        elif roll < 0.86:
            old = restaurant.rating
            restaurant.rating = rng.randint(1, 5)
            self.event_log.append(
                (self.now, f"rating {restaurant.name} {old}->{restaurant.rating}"))
        else:
            old = restaurant.cuisine
            restaurant.cuisine = rng.choice(_CUISINES)
            self.event_log.append(
                (self.now, f"cuisine {restaurant.name} {old}->{restaurant.cuisine}"))

    def advance(self, when: object) -> None:
        """Evolve the guide up to simulated time ``when``.

        The number of events is ``events_per_day`` scaled by the elapsed
        simulated days (deterministic given the seed and call sequence).
        """
        target = parse_timestamp(when)
        if target <= self.now:
            self.now = max(self.now, target)
            return
        elapsed_days = (target - self.now) / 86400
        events = int(round(elapsed_days * self.events_per_day))
        self.now = target
        for _ in range(events):
            self._apply_event()

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------

    def export(self) -> OEMDatabase:
        """The guide as an OEM database shaped like Figure 2."""
        db = OEMDatabase(root="guide")
        lot_nodes: dict[int, str] = {}
        restaurant_nodes: dict[int, str] = {}

        def atom(value: object) -> str:
            return db.create_node(db.new_node_id(), value)  # type: ignore[arg-type]

        for key in sorted(self.restaurants):
            restaurant = self.restaurants[key]
            node = db.create_node(f"r{key}", COMPLEX)
            restaurant_nodes[key] = node
            db.add_arc(db.root, "restaurant", node)
            db.add_arc(node, "name", atom(restaurant.name))
            if restaurant.cuisine is not None:
                db.add_arc(node, "cuisine", atom(restaurant.cuisine))
            db.add_arc(node, "price", atom(restaurant.price))
            if restaurant.flat_address:
                db.add_arc(node, "address",
                           atom(f"{restaurant.street_number} {restaurant.street}"))
            else:
                address = db.create_node(db.new_node_id(), COMPLEX)
                db.add_arc(node, "address", address)
                db.add_arc(address, "street", atom(restaurant.street))
                db.add_arc(address, "number", atom(restaurant.street_number))
                db.add_arc(address, "city", atom("Palo Alto"))
            for comment in restaurant.comments:
                db.add_arc(node, "comment", atom(comment))
            if restaurant.rating is not None:
                db.add_arc(node, "rating", atom(restaurant.rating))

        # Shared parking objects with nearby-eats back-arcs (cycles).
        for key in sorted(self.restaurants):
            restaurant = self.restaurants[key]
            if restaurant.parking_lot is None:
                continue
            lot = restaurant.parking_lot
            if lot not in lot_nodes:
                lot_node = db.create_node(f"lot{lot}", COMPLEX)
                lot_nodes[lot] = lot_node
                db.add_arc(lot_node, "address",
                           atom(self.parking_lots.get(lot, f"lot {lot}")))
            db.add_arc(restaurant_nodes[key], "parking", lot_nodes[lot])
            db.add_arc(lot_nodes[lot], "nearby-eats", restaurant_nodes[key])

        self._export_count += 1
        if self.stable_ids:
            return db
        return scramble_ids(db, salt=self._export_count)

    def render_html(self) -> str:
        """The guide as an HTML page (the htmldiff input of Figure 1)."""
        rows: list[str] = []
        for key in sorted(self.restaurants,
                          key=lambda k: self.restaurants[k].name):
            restaurant = self.restaurants[key]
            price = (f"${restaurant.price}" if isinstance(restaurant.price, int)
                     else restaurant.price)
            details = [price]
            if restaurant.cuisine:
                details.append(restaurant.cuisine)
            if restaurant.rating is not None:
                details.append("*" * restaurant.rating)
            body = f"<b>{restaurant.name}</b> ({', '.join(details)})"
            address = (f"{restaurant.street_number} {restaurant.street}"
                       if restaurant.flat_address
                       else f"{restaurant.street_number} {restaurant.street}, "
                            f"Palo Alto")
            rows.append(f"<li>{body} <i>{address}</i>"
                        + "".join(f" <em>{comment}</em>"
                                  for comment in restaurant.comments)
                        + "</li>")
        return ("<html><head><title>Palo Alto Weekly Restaurant Guide"
                "</title></head><body><h1>Restaurant Guide</h1><ul>"
                + "".join(rows) + "</ul></body></html>")
