"""Simulated autonomous information sources.

The paper's motivating sources -- the Palo Alto Weekly restaurant guide
and a legacy library circulation system -- are autonomous: no triggers,
no history, observable only through snapshots (Section 1.1, Section 6).
This package provides faithful synthetic stand-ins:

* :class:`~repro.sources.base.Source` -- the protocol: advance simulated
  time, export the current state as OEM;
* :class:`~repro.sources.restaurant_guide.RestaurantGuideSource` -- an
  evolving restaurant guide with an HTML renderer (feeds htmldiff and the
  QSS examples);
* :class:`~repro.sources.library.LibrarySource` -- circulating books for
  the "notify me when a popular book comes back" scenario;
* :mod:`~repro.sources.generators` -- random OEM graphs and random valid
  change streams for property tests and benchmarks.
"""

from .base import Source, StaticSource
from .restaurant_guide import RestaurantGuideSource
from .library import LibrarySource
from .generators import (
    large_database,
    large_history,
    large_world,
    random_change_set,
    random_database,
    random_history,
)

__all__ = ["Source", "StaticSource", "RestaurantGuideSource",
           "LibrarySource", "random_database", "random_change_set",
           "random_history", "large_database", "large_history",
           "large_world"]
