"""Random OEM graphs and random valid change streams.

The property tests and the scaling benchmarks need arbitrary-but-valid
inputs: graphs with sharing and cycles like Figure 2, and histories whose
every change set is valid for the evolving database.  Everything here is
seeded and deterministic.
"""

from __future__ import annotations

import random
from typing import Iterable

from ..oem.changes import AddArc, ChangeOp, CreNode, RemArc, UpdNode
from ..oem.history import ChangeSet, OEMHistory
from ..oem.model import OEMDatabase
from ..oem.values import COMPLEX
from ..timestamps import Timestamp, parse_timestamp

__all__ = ["random_database", "random_change_set", "random_history",
           "large_database", "large_history", "large_world", "demo_world",
           "LABELS"]

LABELS = ["a", "b", "c", "item", "name", "price", "link", "ref"]
_WORDS = ["alpha", "beta", "gamma", "delta", "epsilon", "zeta", "eta",
          "theta", "moderate", "cheap"]


def _random_value(rng: random.Random) -> object:
    roll = rng.random()
    if roll < 0.4:
        return rng.randrange(0, 1000)
    if roll < 0.6:
        return round(rng.uniform(0, 100), 2)
    if roll < 0.95:
        return rng.choice(_WORDS)
    return rng.random() < 0.5


def random_database(seed: int = 0, nodes: int = 30,
                    extra_arc_ratio: float = 0.3,
                    root: str = "root") -> OEMDatabase:
    """A random rooted OEM database with ``nodes`` total nodes.

    Roughly 60% of nodes are complex.  Every node is attached under some
    already-created complex node (guaranteeing reachability), after which
    ``extra_arc_ratio * nodes`` additional arcs are sprinkled between
    random complex sources and random targets -- these create sharing and
    cycles, like Figure 2's parking/nearby-eats arcs.
    """
    rng = random.Random(seed)
    db = OEMDatabase(root=root)
    complexes = [root]
    for index in range(nodes - 1):
        node = f"n{index + 1}"
        if rng.random() < 0.6:
            db.create_node(node, COMPLEX)
        else:
            db.create_node(node, _random_value(rng))
        parent = rng.choice(complexes)
        db.add_arc(parent, rng.choice(LABELS), node)
        if db.is_complex(node):
            complexes.append(node)
    all_nodes = list(db.nodes())
    for _ in range(int(extra_arc_ratio * nodes)):
        source = rng.choice(complexes)
        target = rng.choice(all_nodes)
        label = rng.choice(LABELS)
        if not db.has_arc(source, label, target):
            db.add_arc(source, label, target)
    db.check()
    return db


def random_change_set(db: OEMDatabase, seed: int = 0, size: int = 6,
                      id_prefix: str = "g",
                      reserved_ids: Iterable[str] = ()) -> ChangeSet:
    """A random change set that is valid for ``db``.

    The set is built by *simulating* its application on a copy, so each
    candidate operation is checked against the conceptual state the
    canonical order (cre -> rem -> upd -> add) will see.  Node identifiers
    for creations avoid ``db``'s ids and ``reserved_ids`` (QSS-style "ids
    are never reused").
    """
    rng = random.Random(seed)
    reserved = set(reserved_ids)
    ops: list[ChangeOp] = []

    # The simulation applies candidates in canonical-phase order, so we
    # accumulate per-phase and validate against a staged copy.
    work = db.copy()
    created: list[str] = []
    updated: set[str] = set()
    counter = 0

    def fresh_id() -> str:
        nonlocal counter
        while True:
            counter += 1
            candidate = f"{id_prefix}{counter}"
            if candidate not in reserved and not work.has_node(candidate):
                return candidate

    attempts = 0
    while len(ops) < size and attempts < size * 30:
        attempts += 1
        roll = rng.random()
        nodes = list(work.nodes())
        complexes = [node for node in nodes if work.is_complex(node)]
        if roll < 0.3:
            # creNode + addArc linking it in (kept paired so the new node
            # survives the post-set garbage collection).
            if len(ops) + 2 > size + 1:
                continue
            parent = rng.choice(complexes)
            node = fresh_id()
            value = COMPLEX if rng.random() < 0.4 else _random_value(rng)
            label = rng.choice(LABELS)
            ops.append(CreNode(node, value))
            ops.append(AddArc(parent, label, node))
            work.create_node(node, value)
            work.add_arc(parent, label, node)
            created.append(node)
        elif roll < 0.55:
            # updNode on an atomic node not yet updated in this set.
            atoms = [node for node in nodes
                     if not work.is_complex(node) and node not in updated
                     and node not in created]
            if not atoms:
                continue
            node = rng.choice(atoms)
            value = _random_value(rng)
            ops.append(UpdNode(node, value))
            work.update_value(node, value)
            updated.add(node)
        elif roll < 0.8:
            # addArc between existing nodes.
            source = rng.choice(complexes)
            target = rng.choice(nodes)
            label = rng.choice(LABELS)
            if work.has_arc(source, label, target):
                continue
            if any(isinstance(op, RemArc) and op.arc == (source, label, target)
                   for op in ops):
                continue
            ops.append(AddArc(source, label, target))
            work.add_arc(source, label, target)
        else:
            # remArc -- but keep the graph connected enough to stay
            # interesting: avoid removing a node's last incoming arc with
            # probability 1/2.
            arcs = [arc for arc in work.arcs()]
            if not arcs:
                continue
            arc = rng.choice(arcs)
            if any(isinstance(op, AddArc) and op.arc == tuple(arc)
                   for op in ops):
                continue
            in_degree = sum(1 for _ in work.in_arcs(arc.target))
            if in_degree <= 1 and rng.random() < 0.5:
                continue
            ops.append(RemArc(*arc))
            work.remove_arc(*arc)
    return ChangeSet(ops)


def random_history(db: OEMDatabase, seed: int = 0, steps: int = 5,
                   set_size: int = 6,
                   start: object = "1Jan97") -> OEMHistory:
    """A random valid history for ``db``: ``steps`` change sets, one day apart.

    The database itself is not modified; the history is validated by
    construction (each set is generated against the replayed state).
    """
    rng = random.Random(seed)
    history = OEMHistory()
    current = db.copy()
    when = parse_timestamp(start)
    reserved: set[str] = set(db.nodes())
    for step in range(steps):
        change_set = random_change_set(
            current, seed=rng.randrange(1 << 30), size=set_size,
            id_prefix=f"g{step}_", reserved_ids=reserved)
        if change_set:
            history.append(when, change_set)
            change_set.apply_to(current)
            reserved.update(change_set.created_nodes())
        when = when.plus(days=1)
    return history


# ---------------------------------------------------------------------------
# Benchmark-scale worlds
# ---------------------------------------------------------------------------
#
# random_change_set validates every candidate op by simulating it on a
# database copy -- O(nodes) of list materialization per op, fine for
# property-test worlds but quadratic pain at benchmark scale.  The large
# generators instead build a *regular* shape whose validity is known by
# construction, with incremental bookkeeping (live-arc set, price list)
# so generation stays O(total ops).  The shape is chosen for sharding:
# the root fans out into many ``item`` subtrees, so a query's first
# from-item binds thousands of environments cheaply and the per-shard
# stages (inner expansions, predicates, annotation walks) carry the real
# work.

def large_database(seed: int = 0, items: int = 1000, extra_links: int = 200,
                   root: str = "root") -> OEMDatabase:
    """A benchmark-scale OEM database: ``root`` fanning into ``items``
    item subtrees.

    Each item carries a ``name`` atom, a ``price`` atom, and a nested
    ``info`` complex with an ``a`` atom (two levels of depth for
    wildcard and multi-step paths); ``extra_links`` additional ``link``
    arcs between random items add the sharing the wildcard closure has
    to deduplicate.  Deterministic in ``seed``.
    """
    rng = random.Random(seed)
    db = OEMDatabase(root=root)
    item_ids: list[str] = []
    for index in range(items):
        item = f"i{index}"
        db.create_node(item, COMPLEX)
        db.add_arc(root, "item", item)
        item_ids.append(item)
        db.create_node(f"{item}_nm", rng.choice(_WORDS))
        db.add_arc(item, "name", f"{item}_nm")
        db.create_node(f"{item}_pr", rng.randrange(0, 1000))
        db.add_arc(item, "price", f"{item}_pr")
        db.create_node(f"{item}_in", COMPLEX)
        db.add_arc(item, "info", f"{item}_in")
        db.create_node(f"{item}_ia", rng.randrange(0, 100))
        db.add_arc(f"{item}_in", "a", f"{item}_ia")
    for _ in range(extra_links):
        source, target = rng.choice(item_ids), rng.choice(item_ids)
        if not db.has_arc(source, "link", target):
            db.add_arc(source, "link", target)
    db.check()
    return db


def large_history(db: OEMDatabase, seed: int = 0, steps: int = 6,
                  churn: int = 200,
                  start: object = "1Jan97") -> OEMHistory:
    """A benchmark-scale valid history: ``steps`` change sets of about
    ``churn`` operations each, one day apart.

    Each set mixes price updates (``upd``), fresh item subtrees (``cre``
    + ``add``), new ``link`` arcs between items (``add``), and removals
    of previously-added links (``rem``) -- all four annotation kinds land
    in the DOEM build.  Ops are validated by construction against
    incrementally-maintained bookkeeping, then replayed onto a working
    copy as a cross-check; ``db`` itself is untouched.  Deterministic in
    ``seed``.
    """
    rng = random.Random(seed)
    history = OEMHistory()
    current = db.copy()
    when = parse_timestamp(start)
    items = list(db.children(db.root, "item"))
    prices = {item: f"{item}_pr" for item in items
              if db.has_node(f"{item}_pr")}
    spare_links: list[tuple[str, str, str]] = []
    fresh = 0
    for _ in range(steps):
        ops: list[ChangeOp] = []
        updated: set[str] = set()
        born: list[str] = []
        added_links: list[tuple[str, str, str]] = []
        while len(ops) < churn:
            roll = rng.random()
            if roll < 0.5 and prices:
                item = rng.choice(items)
                price = prices.get(item)
                if price is None or price in updated:
                    continue
                ops.append(UpdNode(price, rng.randrange(0, 1000)))
                updated.add(price)
            elif roll < 0.7:
                fresh += 1
                item, price = f"x{fresh}", f"x{fresh}_pr"
                ops.append(CreNode(item, COMPLEX))
                ops.append(AddArc(db.root, "item", item))
                ops.append(CreNode(price, rng.randrange(0, 1000)))
                ops.append(AddArc(item, "price", price))
                born.append(item)
            elif roll < 0.85:
                source, target = rng.choice(items), rng.choice(items)
                arc = (source, "link", target)
                if current.has_arc(*arc) or arc in added_links:
                    continue
                ops.append(AddArc(*arc))
                added_links.append(arc)
            elif spare_links:
                ops.append(RemArc(*spare_links.pop()))
        history.append(when, ChangeSet(ops))
        ChangeSet(ops).apply_to(current)
        for item in born:
            items.append(item)
            prices[item] = f"{item}_pr"
        # Links added this step become removal candidates next step.
        spare_links.extend(added_links)
        when = when.plus(days=1)
    return history


def large_world(seed: int = 0, items: int = 1000, extra_links: int = 200,
                steps: int = 6, churn: int = 200):
    """``(db, history, doem)`` at benchmark scale, all from one seed."""
    from ..doem.build import build_doem
    db = large_database(seed=seed, items=items, extra_links=extra_links)
    history = large_history(db, seed=seed, steps=steps, churn=churn)
    return db, history, build_doem(db, history)


def demo_world(days: int = 30) -> tuple[OEMDatabase, OEMHistory]:
    """``(origin, history)``: the CLI's built-in demo workload.

    An append-only feed plus price churn: one ``item`` arc added under
    the root per day starting 1Jan97, with every third item's value
    later updated -- the workload the annotation indexes and snapshot
    cache are built for.  ``repro explain`` profiles it out of the box,
    ``repro store demo`` persists it, and the crash-recovery round-trip
    script replays it through a kill.
    """
    db = OEMDatabase(root="root")
    history = OEMHistory()
    when = parse_timestamp("1Jan97")
    for index in range(days):
        ops: list[ChangeOp] = [CreNode(f"i{index}", index),
                               AddArc("root", "item", f"i{index}")]
        if index >= 3 and index % 3 == 0:
            ops.append(UpdNode(f"i{index - 3}", 1000 + index))
        history.append(when, ChangeSet(ops))
        when = when.plus(days=1)
    return db, history
