"""A legacy library circulation system, simulated.

The paper's second motivating example (Section 1.1): "Suppose we wish to
be notified whenever any 'popular' book becomes available where, say, we
define a book as popular if it has been checked out two or more times in
the past month."  The legacy system offers no triggers and no history --
only the current catalog state -- so QSS must infer circulation events
from snapshots and answer the popularity question from its *own* DOEM
history.

:class:`LibrarySource` maintains books with ``status`` (``in`` / ``out``),
evolves by seeded checkout/return events, and exports the catalog as OEM.
The QSS filter query for the scenario lives in
``examples/library_notifications.py``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..oem.model import OEMDatabase
from ..oem.values import COMPLEX
from ..timestamps import Timestamp, parse_timestamp
from .base import scramble_ids

__all__ = ["Book", "LibrarySource"]

_TITLES = [
    "A Guide to OEM", "Semistructured Data", "Temporal Databases",
    "The Lorel Language", "Active Databases", "Query Optimization",
    "Mediators and Wrappers", "Change Detection", "Graph Theory",
    "Information Integration", "Database Systems", "Tree Matching",
]
_AUTHORS = ["Codd", "Ullman", "Widom", "Abiteboul", "Chawathe",
            "Garcia-Molina", "Papakonstantinou", "Snodgrass"]


@dataclass
class Book:
    """One catalog entry in the source's internal representation."""

    key: int
    title: str
    author: str
    checked_out: bool = False
    checkout_count: int = 0
    history: list[tuple[Timestamp, str]] = field(default_factory=list)


class LibrarySource:
    """A deterministic, evolving library circulation source.

    The catalog is fixed (legacy systems rarely gain books mid-scenario by
    default; set ``acquisitions=True`` to allow them); circulation events
    -- checkouts and returns -- fire at ``events_per_day``.
    """

    def __init__(self, seed: int = 42, books: int = 12,
                 events_per_day: float = 3.0, stable_ids: bool = False,
                 acquisitions: bool = False) -> None:
        self._rng = random.Random(seed)
        self.events_per_day = events_per_day
        self.stable_ids = stable_ids
        self.acquisitions = acquisitions
        self.now: Timestamp = parse_timestamp("1Dec96")
        self._export_count = 0
        self.books: dict[int, Book] = {}
        for index in range(books):
            self.books[index + 1] = Book(
                key=index + 1,
                title=_TITLES[index % len(_TITLES)]
                + ("" if index < len(_TITLES) else f" vol. {index // len(_TITLES) + 1}"),
                author=self._rng.choice(_AUTHORS),
            )

    def _apply_event(self) -> None:
        rng = self._rng
        if self.acquisitions and rng.random() < 0.05:
            key = max(self.books) + 1
            self.books[key] = Book(key=key,
                                   title=f"New Arrival {key}",
                                   author=rng.choice(_AUTHORS))
            return
        keys = sorted(self.books)
        key = rng.choice(keys)
        book = self.books[key]
        if book.checked_out:
            if rng.random() < 0.6:
                book.checked_out = False
                book.history.append((self.now, "return"))
        else:
            if rng.random() < 0.7:
                book.checked_out = True
                book.checkout_count += 1
                book.history.append((self.now, "checkout"))

    def advance(self, when: object) -> None:
        """Evolve circulation up to simulated time ``when``."""
        target = parse_timestamp(when)
        if target <= self.now:
            self.now = max(self.now, target)
            return
        elapsed_days = (target - self.now) / 86400
        events = int(round(elapsed_days * self.events_per_day))
        self.now = target
        for _ in range(events):
            self._apply_event()

    def export(self) -> OEMDatabase:
        """The catalog as OEM: the *current* state only, like the legacy
        system -- no checkout counts, no history (QSS must infer both)."""
        db = OEMDatabase(root="library")

        def atom(value: object) -> str:
            return db.create_node(db.new_node_id(), value)  # type: ignore[arg-type]

        for key in sorted(self.books):
            book = self.books[key]
            node = db.create_node(f"b{key}", COMPLEX)
            db.add_arc(db.root, "book", node)
            db.add_arc(node, "title", atom(book.title))
            db.add_arc(node, "author", atom(book.author))
            db.add_arc(node, "status",
                       atom("out" if book.checked_out else "in"))
        self._export_count += 1
        if self.stable_ids:
            return db
        return scramble_ids(db, salt=self._export_count)
