"""The autonomous-source protocol.

QSS can only *observe* its sources: "these information sources typically
do not keep track of historical information in a format that is
accessible to the outside user.  Thus, a subscription service based on
changes must monitor and keep track of the changes on its own, and often
must do so based only on sequences of snapshots" (Section 6).

A :class:`Source` therefore exposes exactly two capabilities: advance its
internal simulated clock (the world changes), and export the current
state as an OEM database.  Critically, :meth:`Source.export` may
*scramble node identifiers* on every call (the default), modeling sources
without stable object identity -- this is what forces OEMdiff to do real
matching work, as in the paper's deployment.
"""

from __future__ import annotations

import itertools
from typing import Protocol, runtime_checkable

from ..oem.model import OEMDatabase
from ..timestamps import Timestamp, parse_timestamp

__all__ = ["Source", "StaticSource", "scramble_ids"]


def scramble_ids(db: OEMDatabase, salt: int = 0) -> OEMDatabase:
    """A copy of ``db`` with fresh, deterministic node identifiers.

    Node identity is erased (the root keeps its id, since it names the
    database); structure and values are preserved.  ``salt`` varies the
    renaming between polls so QSS can never rely on identifier equality.
    """
    fresh = OEMDatabase(root=db.root, root_value=db.value(db.root))
    mapping = {db.root: fresh.root}
    counter = itertools.count(1)
    for node in db.nodes():
        if node == db.root:
            continue
        mapping[node] = fresh.create_node(f"s{salt}_{next(counter)}",
                                          db.value(node))
    for arc in db.arcs():
        fresh.add_arc(mapping[arc.source], arc.label, mapping[arc.target])
    return fresh


@runtime_checkable
class Source(Protocol):
    """What QSS wrappers require of an information source."""

    def advance(self, when: object) -> None:
        """Evolve the source's state up to simulated time ``when``."""

    def export(self) -> OEMDatabase:
        """The current state as an OEM database (identifiers unstable)."""


class StaticSource:
    """A source that never changes -- QSS's base case, also handy in tests.

    ``stable_ids=False`` (default) scrambles identifiers on every export,
    like a real autonomous source.
    """

    def __init__(self, db: OEMDatabase, stable_ids: bool = False) -> None:
        self._db = db
        self._stable_ids = stable_ids
        self._export_count = 0
        self.now: Timestamp | None = None

    def advance(self, when: object) -> None:
        """Record the simulated time (the data itself never changes)."""
        self.now = parse_timestamp(when)

    def export(self) -> OEMDatabase:
        """A copy of the wrapped database, ids scrambled unless stable."""
        self._export_count += 1
        if self._stable_ids:
            return self._db.copy()
        return scramble_ids(self._db, salt=self._export_count)
