"""The ``repro`` command line: query, diff, and inspect OEM/DOEM files.

Subcommands (``python -m repro <cmd> --help`` for details):

* ``validate FILE``            -- parse a textual OEM file and check it;
* ``show FILE``                -- pretty-print a textual OEM file;
* ``query FILE QUERY``         -- run a Lorel query over an OEM file;
* ``diff OLD NEW``             -- infer the change set between snapshots;
* ``htmldiff OLD NEW``         -- marked-up HTML diff (Figure 1);
* ``history STORE NAME``       -- show the encoded history of a stored
  DOEM database (from a Lore store directory);
* ``timeline STORE NAME NODE`` -- one object's full change history;
* ``chorel STORE NAME QUERY``  -- run a Chorel query over a stored DOEM
  database (native engine; ``--translate`` shows/uses the Lorel
  translation instead);
* ``explain QUERY``            -- run a Chorel query under the profiler
  and print an EXPLAIN-style report (per-phase timings, index/cache hit
  rates, rows); uses a built-in demo history unless ``--store``/``--db``
  point at a stored DOEM database;
* ``profile QUERY``            -- the same observation as JSON (phase
  timings, counters, and the full span trace), for dashboards and CI
  artifacts;
* ``analyze QUERY``            -- EXPLAIN ANALYZE: execute the query and
  print the physical plan tree with per-operator runtime stats (rows
  in/out, batches, wall time, estimated-vs-actual cardinality, shard
  fan-out, vectorized/fallback predicate counts); same ``--store`` /
  ``--db`` / ``--backend`` selection as ``explain``;
* ``store init|demo|info|fsck|checkpoint|compact`` -- manage a durable
  change-log store (:mod:`repro.store`): create one, persist the demo
  history, describe it, verify/repair segment and checkpoint integrity,
  force a checkpoint, or compact a history's delta chain;
* ``serve-metrics``            -- expose the process metrics registry
  over HTTP (``/metrics`` Prometheus text, ``/metrics.json``,
  ``/queries`` fingerprint-keyed query-log aggregates, ``/health``);
* ``top``                      -- a live (or ``--once``) view of the
  metrics registry, local or scraped from a ``serve-metrics`` URL; the
  table view appends per-fingerprint query-log aggregates when this
  process has executed planner queries, and ``--store PATH`` adds a
  change-log store section.

``history``, ``timeline``, ``chorel``, and the ``--store`` flag of
``explain``/``profile``/``analyze`` accept either a Lore store directory
or a change-log store (detected by its ``.doemstore`` marker); a
change-log store is opened read-only through the process-shared handle,
so the tools observe the same live history a QSS server in this process
is serving.

The global ``--events PATH`` flag (or the ``REPRO_EVENTS`` environment
variable) turns on the structured JSONL event log for any subcommand.

Everything prints to stdout; exit code 0 on success, 1 on any
:class:`~repro.errors.ReproError`.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from .chorel import ChorelEngine, TranslatingChorelEngine
from .diff import html_diff, oem_diff
from .doem.extract import encoded_history
from .errors import ReproError
from .lore.storage import LoreStore
from .lorel import LorelEngine
from .oem.serialize import dumps, loads

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The argument parser for the ``repro`` CLI."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="DOEM/Chorel tools: query, diff, and inspect "
                    "semistructured data and its changes.")
    parser.add_argument("--events", type=Path, default=None,
                        metavar="PATH",
                        help="append structured JSONL events here "
                             "('-' for stderr); REPRO_EVENTS also works")
    parser.add_argument("--events-level", default="info",
                        choices=["debug", "info", "warning", "error"],
                        help="minimum event level for --events "
                             "(default: info)")
    commands = parser.add_subparsers(dest="command", required=True)

    validate = commands.add_parser(
        "validate", help="parse and check a textual OEM file")
    validate.add_argument("file", type=Path)

    show = commands.add_parser("show", help="pretty-print an OEM file")
    show.add_argument("file", type=Path)
    show.add_argument("--depth", type=int, default=6,
                      help="maximum rendering depth (default 6)")

    query = commands.add_parser(
        "query", help="run a Lorel query over an OEM file")
    query.add_argument("file", type=Path)
    query.add_argument("text", help="the Lorel query")
    query.add_argument("--name", default=None,
                       help="database name for root paths "
                            "(default: the root node id)")

    diff = commands.add_parser(
        "diff", help="infer the change set between two OEM snapshots")
    diff.add_argument("old", type=Path)
    diff.add_argument("new", type=Path)

    hdiff = commands.add_parser(
        "htmldiff", help="marked-up HTML diff of two HTML files (Fig. 1)")
    hdiff.add_argument("old", type=Path)
    hdiff.add_argument("new", type=Path)
    hdiff.add_argument("-o", "--output", type=Path, default=None,
                       help="write markup here instead of stdout")

    history = commands.add_parser(
        "history", help="show the encoded history H(D) of a stored DOEM db")
    history.add_argument("store", type=Path, help="Lore store directory")
    history.add_argument("name", help="stored DOEM database name")

    timeline = commands.add_parser(
        "timeline", help="show one object's full change history")
    timeline.add_argument("store", type=Path, help="Lore store directory")
    timeline.add_argument("name", help="stored DOEM database name")
    timeline.add_argument("node", help="object identifier")

    chorel = commands.add_parser(
        "chorel", help="run a Chorel query over a stored DOEM database")
    chorel.add_argument("store", type=Path, help="Lore store directory")
    chorel.add_argument("name", help="stored DOEM database name")
    chorel.add_argument("text", help="the Chorel query")
    chorel.add_argument("--db-name", default=None,
                        help="database name for root paths")
    chorel.add_argument("--translate", action="store_true",
                        help="use the Lorel-translation backend and print "
                             "the translated query first")

    for command, summary in (("explain", "profile a Chorel query and print "
                                         "an EXPLAIN-style report"),
                             ("profile", "profile a Chorel query and emit "
                                         "the observation as JSON"),
                             ("analyze", "execute a Chorel query with "
                                         "EXPLAIN ANALYZE: the plan tree "
                                         "with per-operator runtime stats")):
        sub = commands.add_parser(command, help=summary)
        sub.add_argument("text", help="the Chorel query")
        sub.add_argument("--store", type=Path, default=None,
                         help="Lore store directory (default: a built-in "
                              "demo history)")
        sub.add_argument("--db", default=None,
                         help="stored DOEM database name (with --store)")
        sub.add_argument("--db-name", default=None,
                         help="database name for root paths")
        sub.add_argument("--backend",
                         choices=["indexed", "native", "translate"],
                         default="indexed",
                         help="engine to profile (default: indexed)")
        sub.add_argument("--json", type=Path, default=None, dest="json_path",
                         help="also write the JSON observation here"
                         if command in ("explain", "analyze") else
                         "write the JSON here instead of stdout")

    store = commands.add_parser(
        "store", help="manage a durable change-log store (repro.store)")
    store_cmds = store.add_subparsers(dest="store_command", required=True)

    s_init = store_cmds.add_parser(
        "init", help="create an empty change-log store")
    s_init.add_argument("path", type=Path)

    s_demo = store_cmds.add_parser(
        "demo", help="persist the built-in demo history into a store")
    s_demo.add_argument("path", type=Path)
    s_demo.add_argument("--name", default="demo",
                        help="history name (default: demo)")
    s_demo.add_argument("--days", type=int, default=30,
                        help="length of the demo history (default: 30)")

    s_info = store_cmds.add_parser(
        "info", help="describe a store's histories and checkpoints")
    s_info.add_argument("path", type=Path)
    s_info.add_argument("--json", action="store_true", dest="as_json",
                        help="emit the description as JSON")

    s_fsck = store_cmds.add_parser(
        "fsck", help="verify segment and checkpoint integrity")
    s_fsck.add_argument("path", type=Path)
    s_fsck.add_argument("--repair", action="store_true",
                        help="truncate torn tails and drop unreadable "
                             "checkpoints")
    s_fsck.add_argument("--json", action="store_true", dest="as_json",
                        help="emit the report as JSON")

    s_ckpt = store_cmds.add_parser(
        "checkpoint", help="materialize a snapshot checkpoint now")
    s_ckpt.add_argument("path", type=Path)
    s_ckpt.add_argument("name", help="history name")

    s_compact = store_cmds.add_parser(
        "compact", help="consolidate a history's segments")
    s_compact.add_argument("path", type=Path)
    s_compact.add_argument("name", help="history name")
    s_compact.add_argument("--before", default=None, metavar="TIME",
                           help="retention horizon: promote the state at "
                                "TIME to the new origin and drop older "
                                "records (default: keep everything)")

    serve = commands.add_parser(
        "serve-metrics",
        help="serve /metrics, /metrics.json, and /health over HTTP")
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default: 127.0.0.1)")
    serve.add_argument("--port", type=int, default=0,
                       help="bind port (default: 0 = ephemeral; the "
                            "bound port is printed)")
    serve.add_argument("--duration", type=float, default=None,
                       help="serve for this many seconds then exit "
                            "(default: until interrupted)")

    top = commands.add_parser(
        "top", help="live view of the metrics registry")
    top.add_argument("--once", action="store_true",
                     help="print one snapshot and exit")
    top.add_argument("--json", action="store_true", dest="as_json",
                     help="emit raw JSON instead of the table")
    top.add_argument("--prefix", default=None,
                     help="only show metrics under this prefix")
    top.add_argument("--interval", type=float, default=2.0,
                     help="refresh interval in seconds (default: 2)")
    top.add_argument("--url", default=None,
                     help="scrape a serve-metrics endpoint instead of "
                          "this process's registry")
    top.add_argument("--store", type=Path, default=None,
                     help="also show a change-log store's histories "
                          "(read-only, refreshed every interval)")
    return parser


def _demo_doem():
    """The built-in demo history (see ``demo_world``), as a DOEM db."""
    from .doem.build import build_doem
    from .sources.generators import demo_world
    from .timestamps import parse_timestamp

    db, history = demo_world()
    doem = build_doem(db, history)
    # Warm the snapshot cache so profiles report its hit rates too.
    from .doem.snapshot import cached_snapshot_at
    for probe in ("10Jan97", "15Jan97", "15Jan97"):
        cached_snapshot_at(doem, parse_timestamp(probe))
    return doem


def _open_doem(store_path: Path, name: str | None):
    """A DOEM database from ``--store``: change-log store or Lore store.

    A change-log store (``.doemstore`` marker) is opened read-only
    through the process-shared handle, so a CLI invocation in the same
    process as a serving :class:`~repro.qss.server.QSSServer` observes
    the *served* history rather than constructing an independent copy;
    the rebuilt DOEM's snapshot cache reads through the store's durable
    checkpoints.  Any other directory is treated as a Lore store.
    """
    from .store import is_store, open_store

    if name is None:
        raise ReproError("--store requires --db NAME")
    if is_store(store_path):
        store = open_store(store_path, "ro")
        log = store.log(name)
        doem = log.get_doem()
        from .doem.snapshot import snapshot_cache
        snapshot_cache(doem).attach_store(log)
        return doem
    return LoreStore(store_path).get_doem(name)


def _load_oem(path: Path):
    return loads(path.read_text(encoding="utf-8"))


def _run(args: argparse.Namespace, out) -> int:
    if args.command == "validate":
        db = _load_oem(args.file)
        db.check()
        print(f"OK: {len(db)} node(s), {db.arc_count()} arc(s), "
              f"root &{db.root}", file=out)

    elif args.command == "show":
        db = _load_oem(args.file)
        print(db.describe(max_depth=args.depth), file=out)

    elif args.command == "query":
        db = _load_oem(args.file)
        engine = LorelEngine(db, name=args.name or db.root)
        result = engine.run(args.text)
        print(result if result else "(empty result)", file=out)

    elif args.command == "diff":
        old_db, new_db = _load_oem(args.old), _load_oem(args.new)
        changes = oem_diff(old_db, new_db)
        if not changes:
            print("(no changes)", file=out)
        for op in changes.canonical_order():
            print(op, file=out)

    elif args.command == "htmldiff":
        result = html_diff(args.old.read_text(encoding="utf-8"),
                           args.new.read_text(encoding="utf-8"))
        if args.output is not None:
            args.output.write_text(result.markup, encoding="utf-8")
            print(f"{result.stats} -> {args.output}", file=out)
        else:
            print(result.markup, file=out)

    elif args.command == "history":
        doem = _open_doem(args.store, args.name)
        history = encoded_history(doem)
        if not len(history):
            print("(empty history)", file=out)
        for when, changes in history:
            print(f"{when}:", file=out)
            for op in changes.canonical_order():
                print(f"  {op}", file=out)

    elif args.command == "timeline":
        doem = _open_doem(args.store, args.name)
        events = doem.timeline(args.node)
        if not events:
            print(f"&{args.node}: no recorded changes", file=out)
        for when, text in events:
            print(f"{when}: {text}", file=out)

    elif args.command == "chorel":
        doem = _open_doem(args.store, args.name)
        db_name = args.db_name or doem.graph.root
        if args.translate:
            engine = TranslatingChorelEngine(doem, name=db_name)
            translation = engine.translate(args.text)
            print("-- translated Lorel:", file=out)
            for line in translation.text().splitlines():
                print(f"--   {line}", file=out)
            result = engine.run(args.text)
        else:
            result = ChorelEngine(doem, name=db_name).run(args.text)
        print(result if result else "(empty result)", file=out)

    elif args.command in ("explain", "profile", "analyze"):
        if args.store is not None:
            doem = _open_doem(args.store, args.db)
        else:
            doem = _demo_doem()
        db_name = args.db_name or doem.graph.root
        if args.backend == "native":
            engine = ChorelEngine(doem, name=db_name)
        elif args.backend == "translate":
            engine = TranslatingChorelEngine(doem, name=db_name)
        else:
            from .chorel.optimize import IndexedChorelEngine
            engine = IndexedChorelEngine(doem, name=db_name)
        if args.command == "analyze":
            import json
            result = engine.run(args.text, analyze=True)
            compiled = engine.last_compiled
            print(f"-- EXPLAIN ANALYZE ({args.backend}):", file=out)
            print(compiled.explain(analyze=True), file=out)
            print(f"-- {len(result)} row(s)", file=out)
            if args.json_path is not None:
                payload = {"query": args.text,
                           "backend": args.backend,
                           "rows": len(result),
                           "fingerprint": compiled.fingerprint,
                           "plan": compiled.runtime.to_dict()}
                args.json_path.write_text(
                    json.dumps(payload, indent=2) + "\n", encoding="utf-8")
                print(f"-- JSON observation -> {args.json_path}", file=out)
            return 0
        engine.run(args.text, profile=True)
        profile = engine.last_profile
        if args.command == "explain":
            print(profile.render(), file=out)
            if args.json_path is not None:
                args.json_path.write_text(profile.to_json() + "\n",
                                          encoding="utf-8")
                print(f"-- JSON observation -> {args.json_path}", file=out)
        else:
            if args.json_path is not None:
                args.json_path.write_text(profile.to_json() + "\n",
                                          encoding="utf-8")
                print(f"{profile.backend}: {profile.rows} row(s) in "
                      f"{profile.total_seconds * 1000:.3f} ms "
                      f"-> {args.json_path}", file=out)
            else:
                print(profile.to_json(), file=out)

    elif args.command == "store":
        import json as _json
        from .store import ChangeLogStore, open_store

        if args.store_command == "init":
            open_store(args.path, "rw").flush()
            print(f"initialized change-log store at {args.path}", file=out)

        elif args.store_command == "demo":
            from .sources.generators import demo_world
            origin, history = demo_world(days=args.days)
            store = open_store(args.path, "rw")
            log = store.put_history(args.name, origin, history)
            log.write_checkpoint()
            store.flush()
            info = log.info()
            print(f"persisted {info['change_sets']} change set(s) "
                  f"({info['operations']} op(s)) as {args.name!r}; "
                  f"{info['checkpoints']} checkpoint(s)", file=out)

        elif args.store_command == "info":
            with ChangeLogStore(args.path, "ro") as store:
                info = store.info()
            if args.as_json:
                print(_json.dumps(info, indent=2), file=out)
            else:
                print(_render_store(info), file=out)

        elif args.store_command == "fsck":
            mode = "rw" if args.repair else "ro"
            with ChangeLogStore(args.path, mode) as store:
                report = store.fsck(repair=args.repair)
            if args.as_json:
                print(_json.dumps(report, indent=2), file=out)
            else:
                for history in report["histories"]:
                    status = "ok" if history["ok"] else "CORRUPT"
                    print(f"{history['name']}: {status} "
                          f"(generation {history.get('generation', '?')}, "
                          f"{len(history['segments'])} segment(s), "
                          f"{history.get('checkpoints', 0)} checkpoint(s))",
                          file=out)
                    for problem in history["problems"]:
                        print(f"  problem: {problem}", file=out)
                    for fixed in history["repaired"]:
                        print(f"  repaired: {fixed}", file=out)
                print("store: ok" if report["ok"]
                      else "store: PROBLEMS FOUND", file=out)
            return 0 if report["ok"] else 1

        elif args.store_command == "checkpoint":
            store = open_store(args.path, "rw")
            ref = store.checkpoint(args.name)
            if ref is None:
                print(f"{args.name}: empty history, origin is the tip "
                      f"(no checkpoint needed)", file=out)
            else:
                print(f"{args.name}: checkpoint {ref.name} at {ref.at}",
                      file=out)

        elif args.store_command == "compact":
            store = open_store(args.path, "rw")
            summary = store.compact(args.name, before=args.before)
            print(f"{args.name}: generation {summary['generation']}, "
                  f"dropped {summary['dropped_sets']} change set(s), "
                  f"{summary['dropped_segments']} segment(s), "
                  f"{summary['dropped_checkpoints']} checkpoint(s)",
                  file=out)

    elif args.command == "serve-metrics":
        from .obs.http import serve_metrics
        server = serve_metrics(args.host, args.port)
        host, port = server.address
        print(f"serving metrics on http://{host}:{port} "
              f"(/metrics, /metrics.json, /health)", file=out, flush=True)
        try:
            if args.duration is not None:
                time.sleep(args.duration)
            else:  # pragma: no cover - interactive mode
                while True:
                    time.sleep(3600)
        except KeyboardInterrupt:  # pragma: no cover - interactive mode
            pass
        finally:
            server.stop()

    elif args.command == "top":
        import json

        def _snapshot() -> dict:
            if args.url:
                from urllib.request import urlopen
                query = f"?prefix={args.prefix}" if args.prefix else ""
                url = args.url.rstrip("/") + "/metrics.json" + query
                with urlopen(url) as response:
                    return json.loads(response.read().decode("utf-8"))
            from .obs.metrics import registry as metrics_registry
            return metrics_registry().snapshot(args.prefix)

        while True:
            snapshot = _snapshot()
            if args.as_json:
                print(json.dumps(snapshot, indent=2), file=out, flush=True)
            else:
                if not args.once:  # pragma: no cover - interactive mode
                    print("\x1b[2J\x1b[H", end="", file=out)
                print(_render_top(snapshot), file=out, flush=True)
                if not args.url:
                    from .obs.querylog import query_log
                    aggregates = query_log().aggregates()
                    if aggregates:
                        print(_render_queries(aggregates), file=out,
                              flush=True)
                if args.store is not None:
                    from .store import ChangeLogStore
                    with ChangeLogStore(args.store, "ro") as store:
                        info = store.info()
                    print(_render_store(info), file=out, flush=True)
            if args.once:
                break
            time.sleep(args.interval)  # pragma: no cover - interactive

    else:  # pragma: no cover - argparse enforces the choices
        raise ReproError(f"unknown command {args.command!r}")
    return 0


def _render_top(snapshot: dict) -> str:
    """The ``repro top`` table: one line per series, histograms reduced
    to count/mean so the view stays one terminal page."""
    lines = [f"{'metric':<56} value",
             "-" * 72]
    for name, value in snapshot.items():
        if isinstance(value, dict):  # histogram snapshot
            count = value.get("count", 0)
            mean = (value.get("sum", 0.0) / count) if count else 0.0
            lines.append(f"{name:<56} count={count} "
                         f"mean={mean * 1000:.3f}ms")
        else:
            lines.append(f"{name:<56} {value}")
    if len(lines) == 2:
        lines.append("(no metrics recorded)")
    return "\n".join(lines)


def _render_store(info: dict) -> str:
    """The store section (``repro store info`` / ``repro top --store``):
    one line per history, durable shape at a glance."""
    lines = [f"store {info['path']}: {len(info['histories'])} history(ies), "
             f"{info['change_sets']} change set(s), "
             f"{info['checkpoints']} checkpoint(s)",
             f"{'history':<24} {'gen':>4} {'segs':>5} {'sets':>6} "
             f"{'ops':>7} {'ckpts':>5} {'nodes':>7}  span",
             "-" * 78]
    for name, h in sorted(info["histories"].items()):
        span = "(empty)" if h["first_timestamp"] is None \
            else f"{h['first_timestamp']} .. {h['last_timestamp']}"
        lines.append(
            f"{name:<24} {h['generation']:>4} {h['segments']:>5} "
            f"{h['change_sets']:>6} {h['operations']:>7} "
            f"{h['checkpoints']:>5} {h['tip_nodes']:>7}  {span}")
        if h["recovered_tail"]:
            lines.append(f"  (recovered torn tail: {h['recovered_tail']})")
    if not info["histories"]:
        lines.append("(no histories)")
    return "\n".join(lines)


def _render_queries(aggregates: dict) -> str:
    """The ``repro top`` query-log section: one line per plan
    fingerprint, busiest queries first."""
    lines = ["",
             f"{'fingerprint':<14} {'count':>5} {'rows':>7} "
             f"{'mean':>9} {'max':>9} {'slow':>4}  query",
             "-" * 72]
    ranked = sorted(aggregates.items(),
                    key=lambda item: item[1]["count"], reverse=True)
    for fingerprint, agg in ranked:
        query = " ".join(agg.get("query", "").split())
        if len(query) > 40:
            query = query[:37] + "..."
        lines.append(
            f"{fingerprint:<14} {agg['count']:>5} {agg['rows']:>7} "
            f"{agg['mean_seconds'] * 1000:>7.2f}ms "
            f"{agg['max_seconds'] * 1000:>7.2f}ms "
            f"{agg.get('slow', 0):>4}  {query}")
    return "\n".join(lines)


def main(argv: list[str] | None = None, out=None) -> int:
    """CLI entry point; returns the process exit code."""
    out = out if out is not None else sys.stdout
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.events is not None:
        from .obs.events import configure_events
        configure_events(str(args.events), level=args.events_level)
    try:
        return _run(args, out)
    except (ReproError, FileNotFoundError, KeyError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
