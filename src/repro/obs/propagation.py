"""Cross-process telemetry propagation for pool workers.

A process-pool worker is a *fork*: it carries a copy of the process-global
:class:`~repro.obs.metrics.MetricsRegistry` and
:class:`~repro.obs.trace.Tracer`, so every counter increment, histogram
observation, and span recorded inside a shard task would otherwise be
silently lost when the task result crosses back to the parent.  This
module is the courier:

* on the **worker**, :func:`capture_task_telemetry` wraps one task --
  it snapshots the worker's registry at task start, runs the task, and
  fills a plain picklable dict with the registry *delta* (counters /
  histograms / gauges changed by this task, via
  :meth:`~repro.obs.metrics.MetricsRegistry.delta_since`) plus the span
  subtree the task produced (``Span.to_dict`` forests);
* on the **parent**, :func:`merge_task_telemetry` folds that payload
  back in -- counters summed, histograms bucket-merged, gauges merged by
  max (:meth:`~repro.obs.metrics.MetricsRegistry.merge_delta`), spans
  rebuilt and re-parented under the dispatching span (the ``Exchange``'s
  ``parallel.fanout``).

The same payload also carries **EXPLAIN ANALYZE stage stats**: when the
parent is analyzing, the shard task attaches its per-stage row/time
recorder (:func:`attach_stage_stats`) and the coordinator pops it
(:func:`pop_stage_stats`) to fold into the plan tree's ``OpStats`` --
:func:`merge_task_telemetry` itself ignores the key, so the two streams
never interfere.

The contract the equivalence suite (``tests/parallel/
test_telemetry_propagation.py``) proves: for any query, the parent's
merged counter totals after a process-sharded run equal the totals of a
serial run -- sharding changes where work happens, never how much of it
is accounted.
"""

from __future__ import annotations

from contextlib import contextmanager

from .metrics import registry as metrics_registry
from .trace import Span, get_tracer

__all__ = ["capture_task_telemetry", "merge_task_telemetry",
           "attach_stage_stats", "pop_stage_stats"]

STAGE_STATS_KEY = "stage_stats"


def attach_stage_stats(telemetry: dict, stages: list[dict]) -> None:
    """Ship one shard's per-stage ANALYZE recorder in the payload.

    ``stages`` is a plain list of dicts (rows in/out, wall seconds,
    predicate split) -- picklable by construction, so it crosses the
    process boundary beside the metrics delta.
    """
    telemetry[STAGE_STATS_KEY] = stages


def pop_stage_stats(telemetry: dict | None) -> list[dict] | None:
    """Take the per-stage recorder out of a payload, if one rode along."""
    if not telemetry:
        return None
    return telemetry.pop(STAGE_STATS_KEY, None)


@contextmanager
def capture_task_telemetry(sink: dict, trace: bool = False):
    """Capture this process's telemetry delta for one task into ``sink``.

    ``sink`` gains ``"metrics"`` (a registry delta dict) and, when
    ``trace`` is true, ``"spans"`` (a list of span dicts) once the block
    exits -- including on error, so a task that raises after doing half
    its work still accounts for that half.  ``trace`` is shipped from
    the parent (its tracer's enabled flag at dispatch time) because the
    worker's forked tracer state reflects pool creation, not this task.
    """
    reg = metrics_registry()
    baseline = reg.typed_snapshot()
    if trace:
        tracer = get_tracer()
        # A forked worker inherits the parent's thread-local span stack
        # (the fork happens mid-query, under the parent's open fanout
        # span).  Those inherited spans are dead copies -- their __exit__
        # runs in the parent -- so drop them: otherwise the task's spans
        # nest under a ghost and never surface as capturable roots.
        tracer._stack.clear()
        try:
            with tracer.capture() as captured:
                try:
                    yield sink
                finally:
                    sink["metrics"] = reg.delta_since(baseline)
        finally:
            sink["spans"] = [span.to_dict() for span in captured.spans]
    else:
        try:
            yield sink
        finally:
            sink["metrics"] = reg.delta_since(baseline)


def merge_task_telemetry(telemetry: dict | None,
                         parent_span: Span | None = None) -> None:
    """Fold a worker task's telemetry payload into this process.

    Metrics merge unconditionally; spans are rebuilt and adopted under
    ``parent_span`` (or the calling thread's current span) only when the
    parent tracer is enabled *now*.  ``None`` / empty payloads -- a
    crashed worker shipped nothing -- merge nothing and never raise.
    """
    if not telemetry:
        return
    metrics_registry().merge_delta(telemetry.get("metrics"))
    span_dicts = telemetry.get("spans")
    if span_dicts:
        tracer = get_tracer()
        if tracer.enabled:
            tracer.adopt([Span.from_dict(payload) for payload in span_dicts],
                         parent=parent_span)
