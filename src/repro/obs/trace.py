"""Hierarchical wall-time spans with a process-global, opt-in tracer.

The tracing layer is deliberately tiny and dependency-free: a
:class:`Span` is a name, a wall-clock duration, optional attributes, and
children; a :class:`Tracer` turns ``with span("chorel.translate"):``
blocks into a span tree.  The process-global tracer is **disabled by
default**, and a disabled tracer's :func:`span` returns one shared no-op
context manager -- hot paths pay a single boolean check and allocate
nothing (a tested invariant).

Typical use::

    from repro.obs import enable_tracing, get_tracer, span

    enable_tracing()
    with span("my.phase"):
        ...
    print(get_tracer().export_json())

The query profiler (:mod:`repro.obs.profile`) uses :meth:`Tracer.capture`
to collect the spans of a single query without leaving tracing enabled.
"""

from __future__ import annotations

import json
import threading
from contextlib import contextmanager
from time import perf_counter

__all__ = ["Span", "Tracer", "TraceCapture", "get_tracer", "enable_tracing",
           "disable_tracing", "span"]


class Span:
    """One timed phase: name, duration, attributes, and child spans."""

    __slots__ = ("name", "attrs", "start", "end", "children")

    def __init__(self, name: str, attrs: dict | None = None) -> None:
        self.name = name
        self.attrs = attrs or {}
        self.start = 0.0
        self.end = 0.0
        self.children: list[Span] = []

    @property
    def duration(self) -> float:
        """Wall-clock seconds spent in the span (0.0 while still open)."""
        return max(self.end - self.start, 0.0)

    @property
    def self_time(self) -> float:
        """Duration minus the time spent in child spans."""
        return max(self.duration - sum(c.duration for c in self.children), 0.0)

    def walk(self):
        """Yield ``(depth, span)`` pairs over the subtree, preorder."""
        stack = [(0, self)]
        while stack:
            depth, node = stack.pop()
            yield depth, node
            for child in reversed(node.children):
                stack.append((depth + 1, child))

    def find(self, name: str) -> "Span | None":
        """The first descendant (or self) with the given name."""
        for _, node in self.walk():
            if node.name == name:
                return node
        return None

    def to_dict(self) -> dict:
        """A JSON-serializable form (durations in seconds)."""
        payload: dict = {"name": self.name, "duration": self.duration}
        if self.attrs:
            payload["attrs"] = dict(self.attrs)
        if self.children:
            payload["children"] = [c.to_dict() for c in self.children]
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "Span":
        """Rebuild a span tree from :meth:`to_dict` output (round-trips)."""
        node = cls(payload["name"], dict(payload.get("attrs", {})) or None)
        node.end = float(payload.get("duration", 0.0))
        node.children = [cls.from_dict(c) for c in payload.get("children", ())]
        return node

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Span({self.name!r}, {self.duration * 1000:.3f}ms, "
                f"{len(self.children)} child(ren))")


class _NoopSpan:
    """The shared do-nothing context manager for disabled tracers."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False


_NOOP = _NoopSpan()


class _ActiveSpan:
    """Context manager recording one span on a live tracer."""

    __slots__ = ("_tracer", "span")

    def __init__(self, tracer: "Tracer", name: str, attrs: dict) -> None:
        self._tracer = tracer
        self.span = Span(name, attrs or None)

    def __enter__(self) -> Span:
        self._tracer._stack.append(self.span)
        self.span.start = perf_counter()
        return self.span

    def __exit__(self, *exc) -> bool:
        self.span.end = perf_counter()
        tracer = self._tracer
        stack = tracer._stack
        if stack and stack[-1] is self.span:
            stack.pop()
        parent = stack[-1] if stack else None
        if parent is not None:
            parent.children.append(self.span)
        else:
            tracer.roots.append(self.span)
        return False


class TraceCapture:
    """The spans collected by one :meth:`Tracer.capture` block."""

    def __init__(self) -> None:
        self.spans: list[Span] = []

    def find(self, name: str) -> Span | None:
        """The first span with the given name across captured roots."""
        for root in self.spans:
            found = root.find(name)
            if found is not None:
                return found
        return None


class Tracer:
    """A span collector.  ``enabled`` gates all recording.

    The open-span stack is **thread-local**: spans opened on a worker
    thread nest among themselves and land in ``roots`` as their own
    trees, never splicing into another thread's hierarchy.  ``roots`` is
    appended to under the GIL's list-append atomicity, so concurrent
    workers (the parallel query executor, the QSS poll pool) can trace
    safely; ``clear`` drops the calling thread's open spans only.
    """

    def __init__(self, enabled: bool = False) -> None:
        self.enabled = enabled
        self.roots: list[Span] = []
        self._local = threading.local()

    @property
    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def span(self, name: str, **attrs):
        """A context manager timing ``name`` (no-op when disabled)."""
        if not self.enabled:
            return _NOOP
        return _ActiveSpan(self, name, attrs)

    def current_span(self) -> Span | None:
        """The innermost open span on the *calling* thread, or ``None``.

        This is the handle worker pools capture at submit time so spans
        opened on a worker thread can re-parent under the submitting
        span instead of orphaning as their own roots.
        """
        stack = self._stack
        return stack[-1] if stack else None

    @contextmanager
    def attach_to(self, parent: Span | None):
        """Nest this thread's spans under ``parent`` for the block.

        Seeds the calling thread's (otherwise empty) span stack with
        ``parent``, so spans opened inside the block append to
        ``parent.children`` rather than landing in ``roots``.  Multiple
        worker threads may attach to one parent concurrently -- child
        appends are single list appends, atomic under the GIL.  A
        ``None`` parent (or a disabled tracer) makes this a no-op.
        """
        if not self.enabled or parent is None:
            yield
            return
        stack = self._stack
        stack.append(parent)
        try:
            yield
        finally:
            if stack and stack[-1] is parent:
                stack.pop()

    def adopt(self, children, parent: Span | None = None) -> None:
        """Attach already-built spans (e.g. deserialized from a worker
        process) under ``parent``, the current span, or ``roots``."""
        children = list(children)
        if not children:
            return
        target = parent if parent is not None else self.current_span()
        if target is not None:
            target.children.extend(children)
        else:
            self.roots.extend(children)

    def clear(self) -> None:
        """Drop every recorded span (open spans are abandoned too)."""
        self.roots.clear()
        self._stack.clear()

    @contextmanager
    def capture(self):
        """Enable tracing for a block and collect the spans it produces.

        Yields a :class:`TraceCapture` whose ``spans`` are filled in when
        the block exits.  The tracer's prior ``enabled`` state is
        restored; if tracing was off before, the captured spans are also
        removed from ``roots`` so one-off profiling leaves no residue.
        """
        prior = self.enabled
        mark = len(self.roots)
        self.enabled = True
        cap = TraceCapture()
        try:
            yield cap
        finally:
            self.enabled = prior
            cap.spans = self.roots[mark:]
            if not prior:
                del self.roots[mark:]

    def export(self) -> list[dict]:
        """All recorded root spans as JSON-serializable dicts."""
        return [root.to_dict() for root in self.roots]

    def export_json(self, indent: int | None = 2) -> str:
        """The recorded span forest as a JSON document."""
        return json.dumps(self.export(), indent=indent)


_GLOBAL = Tracer(enabled=False)


def get_tracer() -> Tracer:
    """The process-global tracer (disabled until :func:`enable_tracing`)."""
    return _GLOBAL


def enable_tracing() -> Tracer:
    """Turn the global tracer on and return it."""
    _GLOBAL.enabled = True
    return _GLOBAL


def disable_tracing() -> Tracer:
    """Turn the global tracer off (recorded spans are kept) and return it."""
    _GLOBAL.enabled = False
    return _GLOBAL


def span(name: str, **attrs):
    """Time a block against the global tracer.

    The fast path is one attribute load and a boolean check; when the
    tracer is disabled the shared no-op context manager is returned, so
    instrumented hot paths allocate nothing.
    """
    if not _GLOBAL.enabled:
        return _NOOP
    return _ActiveSpan(_GLOBAL, name, attrs)
