"""A leveled, sampled, rotating JSONL event log.

The third leg of ``repro.obs``: spans answer *where time went*, metrics
answer *how much of everything happened*, and the event log answers
*what happened, in order* -- one JSON object per line, cheap enough to
leave enabled in production, structured enough to grep, join, and load
into a dataframe.  Event types currently emitted:

========================  =======  ==============================================
type                      level    emitted by
========================  =======  ==============================================
``query_compiled``        info     :func:`repro.plan.compiler.compile_query`
``query_completed``       info     :class:`repro.obs.querylog.QueryLog` (one per
                                   executed query: fingerprint, rows, wall
                                   seconds, engine)
``rule_fired``            debug    :class:`repro.plan.rules.PassManager`
``shard_dispatched``      debug    the ``Exchange`` operator (thread or process)
``poll_timeout``          warning  :class:`repro.qss.server.QSSServer`
``slow_poll``             warning  :class:`repro.qss.server.QSSServer`
``cache_eviction``        info     :class:`repro.doem.snapshot.SnapshotCache`
``worker_crash``          error    :class:`repro.parallel.pool.WorkerPool`
``checkpoint_written``    info     :class:`repro.store.HistoryLog` (one per
                                   materialized snapshot checkpoint)
``store_recovered``       warning  :class:`repro.store.HistoryLog` (torn tail
                                   truncated on open)
``store_compacted``       info     :class:`repro.store.HistoryLog`
========================  =======  ==============================================

**Off by default and near-free when off**: :func:`emit_event` is one
global load and a ``None`` check unless a sink is configured.  Activation
is explicit (:func:`configure_events`), via the CLI (``repro --events
PATH ...``), or via the environment::

    REPRO_EVENTS=/var/log/repro/events.jsonl   # path ("-" = stderr)
    REPRO_EVENTS_LEVEL=debug                   # min level (default info)
    REPRO_EVENTS_SAMPLE=rule_fired=10,shard_dispatched=25
    REPRO_EVENTS_MAX_BYTES=8388608             # rotation threshold

**Rotation** is size-based: when the sink file exceeds ``max_bytes``
after a write, it rotates through ``path.1 .. path.<backups>`` (oldest
dropped).  **Sampling** is deterministic and per event type: ``N`` keeps
every N-th event of that type (``0`` drops the type entirely), so two
runs of the same workload log the same lines.

Worker processes forked by a process pool inherit the configured sink;
each line is written in one append-mode ``write`` call, so concurrent
lines from shard workers interleave whole, never torn.  Rotation is left
to the parent process (workers write, but only the configuring process
rotates) to keep the rename race-free.
"""

from __future__ import annotations

import json
import os
import sys
import threading
import time

from .metrics import registry as metrics_registry

__all__ = ["EventLog", "EVENT_LEVELS", "configure_events",
           "configure_events_from_env", "disable_events", "emit_event",
           "event_log", "events_enabled"]

EVENT_LEVELS = {"debug": 10, "info": 20, "warning": 30, "error": 40}

DEFAULT_MAX_BYTES = 8 * 1024 * 1024
DEFAULT_BACKUPS = 3

ENV_PATH = "REPRO_EVENTS"
ENV_LEVEL = "REPRO_EVENTS_LEVEL"
ENV_SAMPLE = "REPRO_EVENTS_SAMPLE"
ENV_MAX_BYTES = "REPRO_EVENTS_MAX_BYTES"


def _parse_sample_spec(spec: str) -> dict[str, int]:
    """``"rule_fired=10,shard_dispatched=0"`` -> ``{type: keep_1_in_n}``."""
    sample: dict[str, int] = {}
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        if "=" not in part:
            raise ValueError(f"bad sample spec {part!r} (want type=N)")
        event_type, _, rate = part.partition("=")
        sample[event_type.strip()] = int(rate)
    return sample


class EventLog:
    """One JSONL sink: level floor, per-type sampling, size rotation.

    ``path`` may be a filesystem path or ``"-"`` for stderr (no
    rotation).  ``sample`` maps event types to keep-1-in-N rates; types
    not listed are always kept, rate ``0`` drops the type.  All methods
    are thread-safe; dropped and written events are counted in the
    ``repro.events`` metrics family so the sink's own behaviour is
    observable.
    """

    def __init__(self, path, *, level: str = "info",
                 max_bytes: int = DEFAULT_MAX_BYTES,
                 backups: int = DEFAULT_BACKUPS,
                 sample: dict[str, int] | None = None) -> None:
        if level not in EVENT_LEVELS:
            raise ValueError(f"unknown event level {level!r} "
                             f"(one of {sorted(EVENT_LEVELS)})")
        if max_bytes < 1:
            raise ValueError("max_bytes must be >= 1")
        if backups < 0:
            raise ValueError("backups must be >= 0")
        self.path = str(path)
        self.level = level
        self.min_level = EVENT_LEVELS[level]
        self.max_bytes = max_bytes
        self.backups = backups
        self.sample = dict(sample or {})
        self._seen: dict[str, int] = {}
        self._lock = threading.Lock()
        self._owner_pid = os.getpid()
        self._metrics = metrics_registry().group(
            "repro.events", ("written", "sampled_out", "level_filtered",
                             "rotations"))
        # The emit hot path touches these counters once per call; bind
        # them here so it skips the group's dict lookup each time.
        self._written = self._metrics["written"]
        self._sampled_out = self._metrics["sampled_out"]
        self._level_filtered = self._metrics["level_filtered"]
        if self.path == "-":
            self._stream = sys.stderr
            self._bytes = 0
        else:
            self._stream = open(self.path, "a", encoding="utf-8")
            try:
                self._bytes = os.path.getsize(self.path)
            except OSError:
                self._bytes = 0

    # -- the write path --------------------------------------------------

    def emit(self, event_type: str, level: str = "info", **fields) -> bool:
        """Write one event line; returns whether it was kept.

        Unknown levels raise (an event with a typo'd level is a bug, not
        data); level-filtered and sampled-out events are counted but not
        written.
        """
        numeric = EVENT_LEVELS[level]
        if numeric < self.min_level:
            self._level_filtered.inc()
            return False
        with self._lock:
            if not self._keep(event_type):
                self._sampled_out.inc()
                return False
            record = {"ts": round(time.time(), 6), "pid": os.getpid(),
                      "level": level, "type": event_type}
            record.update(fields)
            line = json.dumps(record, default=str,
                              separators=(",", ":")) + "\n"
            try:
                self._stream.write(line)
                self._stream.flush()
            except ValueError:  # closed stream: drop silently
                return False
            # Event lines are ASCII (json.dumps default), so character
            # count == byte count; tracking size here keeps the hot path
            # free of a per-emit stat() call.
            self._bytes += len(line)
            self._written.inc()
            self._maybe_rotate()
        return True

    def _keep(self, event_type: str) -> bool:
        rate = self.sample.get(event_type)
        if rate is None:
            return True
        if rate <= 0:
            return False
        seen = self._seen.get(event_type, 0)
        self._seen[event_type] = seen + 1
        return seen % rate == 0

    # -- rotation --------------------------------------------------------

    def _maybe_rotate(self) -> None:
        if self._bytes <= self.max_bytes:
            return
        if self._stream is sys.stderr or os.getpid() != self._owner_pid:
            return  # stderr never rotates; forked workers never rotate
        self._stream.close()
        if self.backups == 0:
            try:
                os.remove(self.path)
            except OSError:
                pass
        else:
            for index in range(self.backups, 1, -1):
                older = f"{self.path}.{index - 1}"
                if os.path.exists(older):
                    os.replace(older, f"{self.path}.{index}")
            os.replace(self.path, f"{self.path}.1")
        self._stream = open(self.path, "a", encoding="utf-8")
        self._bytes = 0
        self._metrics["rotations"].inc()

    def close(self) -> None:
        """Flush and close the sink (stderr is left open)."""
        with self._lock:
            if self._stream is not sys.stderr:
                self._stream.close()


# ---------------------------------------------------------------------------
# The process-global sink
# ---------------------------------------------------------------------------

_LOG: EventLog | None = None
_ENV_CHECKED = False


def configure_events(path, **kwargs) -> EventLog:
    """Install (replacing) the process-global event sink."""
    global _LOG, _ENV_CHECKED
    _ENV_CHECKED = True
    if _LOG is not None:
        _LOG.close()
    _LOG = EventLog(path, **kwargs)
    return _LOG


def configure_events_from_env(environ=None) -> EventLog | None:
    """Configure the sink from ``REPRO_EVENTS*`` variables, if set."""
    global _ENV_CHECKED
    env = os.environ if environ is None else environ
    _ENV_CHECKED = True
    path = env.get(ENV_PATH)
    if not path:
        return None
    kwargs: dict = {"level": env.get(ENV_LEVEL, "info")}
    if env.get(ENV_SAMPLE):
        kwargs["sample"] = _parse_sample_spec(env[ENV_SAMPLE])
    if env.get(ENV_MAX_BYTES):
        kwargs["max_bytes"] = int(env[ENV_MAX_BYTES])
    return configure_events(path, **kwargs)


def disable_events() -> None:
    """Close and remove the process-global sink."""
    global _LOG, _ENV_CHECKED
    _ENV_CHECKED = True
    if _LOG is not None:
        _LOG.close()
        _LOG = None


def event_log() -> EventLog | None:
    """The process-global sink, or ``None`` when events are off."""
    return _LOG


def events_enabled() -> bool:
    """Is a sink configured (explicitly or via the environment)?"""
    if not _ENV_CHECKED:
        configure_events_from_env()
    return _LOG is not None


def emit_event(event_type: str, level: str = "info", **fields) -> bool:
    """Emit one event to the global sink (a fast no-op when disabled).

    The first call checks ``REPRO_EVENTS`` so library users get env-var
    activation without importing anything extra; after that the disabled
    path is one global load and a ``None`` check.
    """
    if _LOG is None:
        if _ENV_CHECKED:
            return False
        configure_events_from_env()
        if _LOG is None:
            return False
    return _LOG.emit(event_type, level, **fields)
