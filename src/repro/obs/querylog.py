"""The plan-fingerprinted query log: ring buffer, aggregates, slow capture.

Every planner-driven execution records one :class:`QueryRecord` here,
keyed by the plan fingerprint (the stable hash of the normalized logical
IR, :func:`repro.plan.analyze.plan_fingerprint`), so "which queries run,
how often, and how slowly" is answerable without tracing:

* a bounded **ring buffer** of recent records (inspect with
  :meth:`QueryLog.recent`);
* cumulative **per-fingerprint aggregates** -- count, row totals,
  total/max wall seconds, engines seen, rules fired -- served at
  ``/queries`` on the obs HTTP server and in ``repro top``;
* optional **JSONL append** (``path=``) for offline analysis;
* **slow-query capture**: records over the threshold keep the full
  analyzed plan text (when the run was ``analyze=True``; the static
  EXPLAIN tree otherwise), so the evidence for "why was this slow" is
  saved at the moment it happened.

One env var drives every slow-query surface -- ``REPRO_SLOW_QUERY_MS``
sets both this log's capture threshold and the QSS server's slow-poll
log (``slow_poll_threshold`` stays as a per-server override).

Attribution: wrap a call site in :func:`query_attribution` and every
query recorded inside the block carries those fields -- the QSS server
tags each subscription's filter run this way, so the query log can
answer "which subscription issues this fingerprint".
"""

from __future__ import annotations

import json
import os
import threading
from collections import OrderedDict, deque
from contextlib import contextmanager
from dataclasses import dataclass, field
from time import time

from .events import emit_event
from .metrics import registry as metrics_registry

__all__ = ["QueryRecord", "QueryLog", "query_log", "configure_query_log",
           "query_attribution", "current_attribution",
           "record_engine_query", "slow_query_threshold_ms",
           "slow_query_threshold_seconds", "ENV_SLOW_QUERY_MS"]

ENV_SLOW_QUERY_MS = "REPRO_SLOW_QUERY_MS"

DEFAULT_CAPACITY = 256
DEFAULT_SLOW_CAPACITY = 32
MAX_AGGREGATES = 512

# Engine class name -> the backend label the profiler already uses.
ENGINE_LABELS = {
    "LorelEngine": "lorel",
    "ChorelEngine": "chorel-native",
    "IndexedChorelEngine": "chorel-indexed",
    "TranslatingChorelEngine": "chorel-translate",
}


def slow_query_threshold_ms(environ=None) -> float | None:
    """The ``REPRO_SLOW_QUERY_MS`` threshold, or ``None`` when unset."""
    env = os.environ if environ is None else environ
    raw = env.get(ENV_SLOW_QUERY_MS)
    if raw is None or raw == "":
        return None
    value = float(raw)
    if value < 0:
        raise ValueError(f"{ENV_SLOW_QUERY_MS} must be >= 0, got {raw!r}")
    return value


def slow_query_threshold_seconds(environ=None) -> float | None:
    """The env threshold in seconds (QSS consumes seconds)."""
    ms = slow_query_threshold_ms(environ)
    return None if ms is None else ms / 1000.0


# ---------------------------------------------------------------------------
# Attribution (thread-local, stackable)
# ---------------------------------------------------------------------------

_ATTRIBUTION = threading.local()


@contextmanager
def query_attribution(**fields):
    """Tag every query recorded in this block with ``fields``.

    Nestable; inner blocks shadow outer keys.  Thread-local, so the QSS
    coordinator can tag each subscription's filter run without races.
    """
    stack = getattr(_ATTRIBUTION, "stack", None)
    if stack is None:
        stack = _ATTRIBUTION.stack = []
    stack.append(fields)
    try:
        yield
    finally:
        stack.pop()


def current_attribution() -> dict:
    """The merged attribution fields active on this thread."""
    stack = getattr(_ATTRIBUTION, "stack", None)
    if not stack:
        return {}
    merged: dict = {}
    for fields in stack:
        merged.update(fields)
    return merged


# ---------------------------------------------------------------------------
# Records and the log
# ---------------------------------------------------------------------------

@dataclass
class QueryRecord:
    """One executed query, as the log stores it."""

    fingerprint: str
    query: str
    engine: str
    rows: int
    compile_seconds: float
    execute_seconds: float
    rules_fired: tuple[str, ...] = ()
    shards: int = 0
    indexed: bool = False
    analyzed: bool = False
    attribution: dict = field(default_factory=dict)
    ts: float = 0.0

    @property
    def wall_seconds(self) -> float:
        return self.compile_seconds + self.execute_seconds

    def to_dict(self) -> dict:
        payload = {
            "ts": round(self.ts, 6),
            "fingerprint": self.fingerprint,
            "query": self.query,
            "engine": self.engine,
            "rows": self.rows,
            "compile_seconds": round(self.compile_seconds, 6),
            "execute_seconds": round(self.execute_seconds, 6),
            "rules_fired": list(self.rules_fired),
            "shards": self.shards,
            "indexed": self.indexed,
            "analyzed": self.analyzed,
        }
        if self.attribution:
            payload["attribution"] = self.attribution
        return payload


class QueryLog:
    """Ring buffer + per-fingerprint aggregates + slow-query capture.

    ``slow_threshold`` is in **seconds**; when ``None`` the
    ``REPRO_SLOW_QUERY_MS`` env var is consulted per record, so an
    operator can turn capture on for a running process's next queries by
    exporting the variable before launch.  All methods are thread-safe.
    """

    def __init__(self, capacity: int = DEFAULT_CAPACITY, *,
                 path=None, slow_threshold: float | None = None,
                 slow_capacity: int = DEFAULT_SLOW_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        if slow_capacity < 1:
            raise ValueError("slow_capacity must be >= 1")
        if slow_threshold is not None and slow_threshold < 0:
            raise ValueError("slow_threshold must be >= 0")
        self.capacity = capacity
        self.path = None if path is None else str(path)
        self.slow_threshold = slow_threshold
        self._recent: deque[QueryRecord] = deque(maxlen=capacity)
        self._slow: deque[dict] = deque(maxlen=slow_capacity)
        self._aggregates: OrderedDict[str, dict] = OrderedDict()
        self._lock = threading.Lock()
        self._metrics = metrics_registry().group(
            "repro.querylog", ("recorded", "slow"))

    # -- recording -------------------------------------------------------

    def record(self, record: QueryRecord, *,
               plan_text: str | None = None) -> QueryRecord:
        """Add one executed query; returns the (attributed) record."""
        if record.ts == 0.0:
            record.ts = time()
        attribution = current_attribution()
        if attribution:
            merged = dict(attribution)
            merged.update(record.attribution)
            record.attribution = merged
        threshold = self.slow_threshold
        if threshold is None:
            threshold = slow_query_threshold_seconds()
        slow = threshold is not None and record.wall_seconds >= threshold
        with self._lock:
            self._recent.append(record)
            agg = self._aggregates.get(record.fingerprint)
            if agg is None:
                agg = {
                    "query": record.query,
                    "count": 0,
                    "rows": 0,
                    "total_seconds": 0.0,
                    "max_seconds": 0.0,
                    "slow": 0,
                    "engines": set(),
                    "rules_fired": set(),
                    "last_ts": 0.0,
                }
                self._aggregates[record.fingerprint] = agg
                while len(self._aggregates) > MAX_AGGREGATES:
                    self._aggregates.popitem(last=False)
            self._aggregates.move_to_end(record.fingerprint)
            agg["count"] += 1
            agg["rows"] += record.rows
            agg["total_seconds"] += record.wall_seconds
            agg["max_seconds"] = max(agg["max_seconds"], record.wall_seconds)
            agg["engines"].add(record.engine)
            agg["rules_fired"].update(record.rules_fired)
            agg["last_ts"] = record.ts
            if slow:
                agg["slow"] += 1
                capture = record.to_dict()
                if plan_text is not None:
                    capture["plan"] = plan_text
                self._slow.append(capture)
        self._metrics["recorded"].inc()
        if slow:
            self._metrics["slow"].inc()
        if self.path is not None:
            self._append_jsonl(record)
        emit_event("query_completed", level="info",
                   fingerprint=record.fingerprint, rows=record.rows,
                   wall_seconds=round(record.wall_seconds, 6),
                   engine=record.engine)
        return record

    def _append_jsonl(self, record: QueryRecord) -> None:
        line = json.dumps(record.to_dict(), default=str,
                          separators=(",", ":")) + "\n"
        try:
            with open(self.path, "a", encoding="utf-8") as stream:
                stream.write(line)
        except OSError:
            pass  # the log is advisory; never fail the query over it

    # -- reading ---------------------------------------------------------

    def recent(self, limit: int | None = None) -> list[QueryRecord]:
        with self._lock:
            records = list(self._recent)
        if limit is not None:
            records = records[-limit:]
        return records

    def slow_queries(self) -> list[dict]:
        """Captured slow queries, oldest first, with their plan text."""
        with self._lock:
            return [dict(capture) for capture in self._slow]

    def aggregates(self) -> dict[str, dict]:
        """Per-fingerprint aggregates, JSON-ready (sets become lists)."""
        with self._lock:
            out: dict[str, dict] = {}
            for fingerprint, agg in self._aggregates.items():
                mean = agg["total_seconds"] / agg["count"]
                out[fingerprint] = {
                    "query": agg["query"],
                    "count": agg["count"],
                    "rows": agg["rows"],
                    "total_seconds": round(agg["total_seconds"], 6),
                    "mean_seconds": round(mean, 6),
                    "max_seconds": round(agg["max_seconds"], 6),
                    "slow": agg["slow"],
                    "engines": sorted(agg["engines"]),
                    "rules_fired": sorted(agg["rules_fired"]),
                    "last_ts": round(agg["last_ts"], 6),
                }
            return out

    def snapshot(self) -> dict:
        """The ``/queries`` payload: aggregates + recent slow captures."""
        return {"queries": self.aggregates(), "slow": self.slow_queries()}

    def __len__(self) -> int:
        with self._lock:
            return len(self._recent)

    def reset(self) -> None:
        with self._lock:
            self._recent.clear()
            self._slow.clear()
            self._aggregates.clear()


# ---------------------------------------------------------------------------
# The process-global log
# ---------------------------------------------------------------------------

_LOG = QueryLog()


def query_log() -> QueryLog:
    """The process-global query log (always on; bounded memory)."""
    return _LOG


def configure_query_log(capacity: int = DEFAULT_CAPACITY, *,
                        path=None, slow_threshold: float | None = None,
                        slow_capacity: int = DEFAULT_SLOW_CAPACITY
                        ) -> QueryLog:
    """Replace the process-global log (e.g. to add a JSONL path)."""
    global _LOG
    _LOG = QueryLog(capacity, path=path, slow_threshold=slow_threshold,
                    slow_capacity=slow_capacity)
    return _LOG


def record_engine_query(engine, compiled, result, execute_seconds: float, *,
                        shards: int = 0, plan_stats=None) -> QueryRecord:
    """Build and record the :class:`QueryRecord` for one engine execution.

    Called by every engine facade after ``execute_plan``; ``plan_stats``
    is the ANALYZE collector when one ran -- a slow query then captures
    the annotated runtime tree rather than the static EXPLAIN.
    """
    from ..lorel.pretty import format_query

    try:
        query_text = format_query(compiled.source)
    except Exception:
        query_text = str(compiled.source)
    record = QueryRecord(
        fingerprint=compiled.fingerprint,
        query=query_text,
        engine=ENGINE_LABELS.get(type(engine).__name__,
                                 type(engine).__name__),
        rows=len(result),
        compile_seconds=compiled.compile_seconds,
        execute_seconds=execute_seconds,
        rules_fired=tuple(r.name for r in compiled.passes if r.fired),
        shards=shards,
        indexed=compiled.is_indexed,
        analyzed=plan_stats is not None,
    )
    plan_text = None
    log = query_log()
    threshold = log.slow_threshold
    if threshold is None:
        threshold = slow_query_threshold_seconds()
    if threshold is not None and record.wall_seconds >= threshold:
        # Render lazily: plan text is only built when it will be kept.
        plan_text = (plan_stats.render() if plan_stats is not None
                     else compiled.explain())
    return log.record(record, plan_text=plan_text)
