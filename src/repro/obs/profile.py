"""EXPLAIN-style query profiling over any of the query engines.

:func:`profile_query` runs a query under a one-off trace capture while
snapshotting every counter the engine exposes (annotation visits, index
hit rates, snapshot-cache activity, pushdown accounting), and packages
the result as a :class:`QueryProfile`: phase timings from the span tree,
counter *deltas* attributable to this query, the chosen plan, and the row
count.  The profiled run returns exactly the rows an unprofiled run
would -- a tested invariant -- because profiling only observes.

Engines expose this as ``engine.run(query, profile=True)`` (the profile
lands on ``engine.last_profile``); the CLI surfaces it as
``repro explain`` (rendered report) and ``repro profile`` (JSON).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from .trace import Span, get_tracer

__all__ = ["QueryProfile", "profile_query"]


@dataclass
class QueryProfile:
    """The observable footprint of one query evaluation."""

    query: str
    backend: str
    plan: str | None
    rows: int
    spans: list[Span] = field(default_factory=list)
    counters: dict[str, object] = field(default_factory=dict)
    plan_tree: str | None = None

    @property
    def total_seconds(self) -> float:
        """Wall time across the captured root spans."""
        return sum(root.duration for root in self.spans)

    def phase_times(self) -> dict[str, float]:
        """Total seconds per span name, summed across the span forest."""
        totals: dict[str, float] = {}
        for root in self.spans:
            for _, node in root.walk():
                totals[node.name] = totals.get(node.name, 0.0) + node.duration
        return totals

    @property
    def compile_seconds(self) -> float:
        """Planning cost: parse-to-plan time, separate from execution.

        ``chorel.optimize`` encloses the indexed engine's ``plan.compile``
        span, so it is preferred when present (counting both would double
        bill); the translate backend adds its ``chorel.translate`` phase.
        """
        phases = self.phase_times()
        seconds = phases.get("chorel.translate", 0.0)
        if "chorel.optimize" in phases:
            return seconds + phases["chorel.optimize"]
        return seconds + phases.get("plan.compile", 0.0)

    @property
    def execute_seconds(self) -> float:
        """Execution cost: operator/index-scan time, separate from planning."""
        phases = self.phase_times()
        return phases.get("chorel.index_scan", 0.0) + \
            phases.get("lorel.eval", 0.0)

    def to_dict(self) -> dict:
        return {
            "query": self.query,
            "backend": self.backend,
            "plan": self.plan,
            "plan_tree": self.plan_tree,
            "rows": self.rows,
            "total_seconds": self.total_seconds,
            "compile_seconds": self.compile_seconds,
            "execute_seconds": self.execute_seconds,
            "phases": self.phase_times(),
            "counters": dict(self.counters),
            "trace": [root.to_dict() for root in self.spans],
        }

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    def render(self) -> str:
        """The human-facing EXPLAIN report."""
        lines = [f"EXPLAIN {self.query}",
                 f"backend: {self.backend}",
                 f"plan:    {self.plan or '(full evaluation)'}",
                 f"rows:    {self.rows}",
                 f"total:   {self.total_seconds * 1000:.3f} ms "
                 f"(compile {self.compile_seconds * 1000:.3f} ms, "
                 f"execute {self.execute_seconds * 1000:.3f} ms)"]
        if self.plan_tree:
            lines.append("optimized plan:")
            lines.extend("  " + line for line in self.plan_tree.splitlines())
        lines.append("phase timings:")
        if not self.spans:
            lines.append("  (tracing produced no spans)")
        for root in self.spans:
            for depth, node in root.walk():
                indent = "  " * (depth + 1)
                lines.append(f"{indent}{node.name:<24} "
                             f"{node.duration * 1000:9.3f} ms")
        lines.append("counters:")
        if not self.counters:
            lines.append("  (none)")
        for name, value in sorted(self.counters.items()):
            shown = f"{value:.2f}" if isinstance(value, float) else value
            lines.append(f"  {name:<32} {shown}")
        return "\n".join(lines)


def _backend_name(engine) -> str:
    return {
        "LorelEngine": "lorel",
        "ChorelEngine": "chorel-native",
        "IndexedChorelEngine": "chorel-indexed",
        "TranslatingChorelEngine": "chorel-translate",
    }.get(type(engine).__name__, type(engine).__name__)


def _counter_sources(engine) -> list[tuple[str, object]]:
    """(prefix, stats-like) pairs the engine exposes, best effort."""
    sources: list[tuple[str, object]] = []
    view = getattr(engine, "view", None)
    if view is not None and hasattr(view, "annotation_visits"):
        sources.append(("view", view))
    for attr, prefix in (("stats", "engine"), ("index", "index"),
                         ("paths", "path_index")):
        holder = getattr(engine, attr, None)
        if holder is None:
            continue
        stats = getattr(holder, "stats", holder if attr == "stats" else None)
        if stats is not None and hasattr(stats, "as_dict"):
            sources.append((prefix, stats))
    doem = getattr(engine, "doem", None)
    if doem is not None:
        from ..doem.snapshot import peek_snapshot_cache
        cache = peek_snapshot_cache(doem)
        if cache is not None:
            sources.append(("snapshot_cache", cache.stats))
    return sources


def _snapshot(sources) -> dict[str, object]:
    values: dict[str, object] = {}
    for prefix, stats in sources:
        if hasattr(stats, "as_dict"):
            for name, value in stats.as_dict().items():
                values[f"{prefix}.{name}"] = value
        else:  # a view exposing the bare annotation_visits counter
            values[f"{prefix}.annotation_visits"] = stats.annotation_visits
    return values


def profile_query(engine, query, **run_kwargs):
    """Run ``query`` on ``engine`` under observation.

    Returns ``(result, profile)``; ``result`` is exactly what
    ``engine.run(query)`` returns.  Counter values in the profile are
    deltas across the run (rates recompute from the deltas); the global
    tracer's enabled state is restored afterwards, so profiling a query
    in a production process leaves tracing exactly as it found it.
    """
    sources = _counter_sources(engine)
    before = _snapshot(sources)
    tracer = get_tracer()
    with tracer.capture() as capture:
        result = engine.run(query, **run_kwargs)
    after = _snapshot(sources)

    counters: dict[str, object] = {}
    for name, value in after.items():
        if name.endswith(("_rate", ".hit_rate")):
            counters[name] = value  # rates are not subtractable; keep current
        else:
            counters[name] = value - before.get(name, 0)

    plan = getattr(engine, "last_plan", None)
    plan_text = plan.describe() if plan is not None else None
    translation = getattr(engine, "last_translation", None)
    if plan_text is None and translation is not None:
        plan_text = "translate-to-lorel: " + " ".join(
            translation.text().split())
    compiled = getattr(engine, "last_compiled", None)
    plan_tree = compiled.explain() if compiled is not None else None

    profile = QueryProfile(
        query=query if isinstance(query, str) else str(query),
        backend=_backend_name(engine),
        plan=plan_text,
        rows=len(result),
        spans=capture.spans,
        counters=counters,
        plan_tree=plan_tree,
    )
    return result, profile
