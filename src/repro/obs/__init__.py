"""repro.obs: unified tracing, metrics, and query profiling.

Three zero-dependency layers every query-serving component threads
through:

* :mod:`repro.obs.trace` -- hierarchical wall-time spans with a
  process-global tracer that is a no-op (one boolean check, zero
  allocation) unless enabled;
* :mod:`repro.obs.metrics` -- a process-global
  :class:`~repro.obs.metrics.MetricsRegistry` of counters, gauges, and
  fixed-bucket histograms; the pre-existing stats classes
  (``EngineStats``, ``IndexStats``, ``SnapshotCacheStats``) register
  themselves here while keeping their original attribute APIs;
* :mod:`repro.obs.profile` -- an EXPLAIN-style per-query profiler
  (``repro explain`` / ``repro profile`` on the CLI, ``profile=True`` on
  the engines).

See ``docs/observability.md`` for the operator's guide.
"""

from .metrics import (
    Counter,
    CounterField,
    Gauge,
    Histogram,
    MetricsGroup,
    MetricsRegistry,
    registry as metrics_registry,
)
from .trace import (
    Span,
    TraceCapture,
    Tracer,
    disable_tracing,
    enable_tracing,
    get_tracer,
    span,
)
from .events import (
    EventLog,
    configure_events,
    configure_events_from_env,
    disable_events,
    emit_event,
    event_log,
    events_enabled,
)
from .propagation import capture_task_telemetry, merge_task_telemetry
from .http import MetricsHTTPServer, serve_metrics
from .profile import QueryProfile, profile_query

__all__ = [
    "Span", "Tracer", "TraceCapture", "get_tracer", "enable_tracing",
    "disable_tracing", "span",
    "Counter", "Gauge", "Histogram", "MetricsGroup", "CounterField",
    "MetricsRegistry", "metrics_registry",
    "EventLog", "configure_events", "configure_events_from_env",
    "disable_events", "emit_event", "event_log", "events_enabled",
    "capture_task_telemetry", "merge_task_telemetry",
    "MetricsHTTPServer", "serve_metrics",
    "QueryProfile", "profile_query",
]
