"""A stdlib-only HTTP surface for metrics and health.

:class:`MetricsHTTPServer` wraps :class:`http.server.ThreadingHTTPServer`
around the process-global :class:`~repro.obs.metrics.MetricsRegistry` and
an optional health source (typically ``QSSServer.health``):

* ``GET /metrics`` -- the Prometheus text exposition
  (:meth:`MetricsRegistry.render_text`, with ``# HELP``/``# TYPE`` lines
  and the ``text/plain; version=0.0.4`` content type scrapers expect);
  ``?prefix=qss`` narrows it;
* ``GET /metrics.json`` -- the JSON snapshot
  (:meth:`MetricsRegistry.export_json`), same ``prefix`` filter;
* ``GET /queries`` -- the plan-fingerprinted query-log snapshot
  (:meth:`repro.obs.querylog.QueryLog.snapshot`): per-fingerprint
  aggregates plus the captured slow queries;
* ``GET /health`` -- the health source's JSON payload, served with HTTP
  503 when its ``status`` is ``"unhealthy"`` (so load-balancer probes
  need no body parsing) and 200 otherwise.

Binding to port 0 picks an ephemeral port; the bound address is exposed
as :attr:`MetricsHTTPServer.address` once :meth:`start` returns, which
is what the CLI (``repro serve-metrics``) prints and the tests poll.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable
from urllib.parse import parse_qs, urlparse

from .metrics import registry as metrics_registry
from .querylog import query_log

__all__ = ["MetricsHTTPServer", "serve_metrics", "PROMETHEUS_CONTENT_TYPE"]

PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def _default_health() -> dict:
    """The health payload when no QSS server is attached: process-level
    liveness only (the endpoint answering *is* the signal)."""
    return {"status": "healthy", "subscriptions": {}}


class _Handler(BaseHTTPRequestHandler):
    """Routes /metrics, /metrics.json, /queries, and /health; 404
    otherwise.

    Routing context (the registry, query source, and health source)
    rides on the underlying ``ThreadingHTTPServer`` instance as
    attributes.
    """

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        parsed = urlparse(self.path)
        prefix = parse_qs(parsed.query).get("prefix", [None])[0]
        if parsed.path == "/metrics":
            body = self.server.registry.render_text(prefix)
            self._reply(200, body, PROMETHEUS_CONTENT_TYPE)
        elif parsed.path == "/metrics.json":
            body = self.server.registry.export_json(prefix)
            self._reply(200, body, "application/json")
        elif parsed.path == "/queries":
            payload = self.server.query_source()
            self._reply(200, json.dumps(payload, indent=2, default=str),
                        "application/json")
        elif parsed.path == "/health":
            payload = self.server.health_source()
            status = 503 if payload.get("status") == "unhealthy" else 200
            self._reply(status, json.dumps(payload, indent=2),
                        "application/json")
        else:
            self._reply(404, json.dumps({"error": "not found",
                                         "path": parsed.path}),
                        "application/json")

    def _reply(self, status: int, body: str, content_type: str) -> None:
        data = body.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(data)))
        self.end_headers()
        self.wfile.write(data)

    def log_message(self, format, *args):  # noqa: A002 - http.server API
        pass  # keep scrapes out of stderr; the event log covers auditing


class MetricsHTTPServer:
    """A background thread serving the registry over HTTP.

    ``health_source`` is any zero-argument callable returning a JSON-able
    dict with a ``"status"`` key (``QSSServer.health`` fits directly);
    without one, ``/health`` reports plain process liveness.
    ``query_source`` backs ``/queries`` and defaults to the process
    query log's snapshot.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0, *,
                 health_source: Callable[[], dict] | None = None,
                 query_source: Callable[[], dict] | None = None) -> None:
        self.registry = metrics_registry()
        self.health_source = health_source or _default_health
        self.query_source = query_source or \
            (lambda: query_log().snapshot())
        self._httpd = ThreadingHTTPServer((host, port), _Handler)
        # Hand the handler our routing context through the server object.
        self._httpd.registry = self.registry
        self._httpd.health_source = self.health_source
        self._httpd.query_source = self.query_source
        self._thread: threading.Thread | None = None

    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)`` -- concrete even when created with
        port 0."""
        return self._httpd.server_address[:2]

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def start(self) -> "MetricsHTTPServer":
        """Serve on a daemon thread; returns immediately."""
        if self._thread is not None:
            raise RuntimeError("MetricsHTTPServer already started")
        self._thread = threading.Thread(target=self._httpd.serve_forever,
                                        name="repro-metrics-http",
                                        daemon=True)
        self._thread.start()
        return self

    def stop(self) -> None:
        """Shut the listener down and join the serving thread."""
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None

    def __enter__(self) -> "MetricsHTTPServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()


def serve_metrics(host: str = "127.0.0.1", port: int = 0, *,
                  health_source: Callable[[], dict] | None = None
                  ) -> MetricsHTTPServer:
    """Start a :class:`MetricsHTTPServer` and return it (already serving)."""
    return MetricsHTTPServer(host, port, health_source=health_source).start()
