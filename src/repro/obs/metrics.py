"""A process-global registry of counters, gauges, and histograms.

The registry unifies the per-component counters PR 1 scattered across the
codebase (``EngineStats``, ``IndexStats``, ``SnapshotCacheStats``,
``annotation_visits``): each stats object now owns a
:class:`MetricsGroup` -- its private counters, registered (weakly) under
a family prefix -- and exposes the same attribute API as before through
:class:`CounterField` descriptors.  A registry snapshot sums every live
instance of a family, so ``repro.index.lookups`` in a metrics dump is the
total across all indexes in the process, while each index's own stats
still read and reset independently.

Direct (non-family) instruments cover process-wide series such as the QSS
server's poll counters and latency histogram.  Everything exports as JSON
(:meth:`MetricsRegistry.export_json`) or as a Prometheus-style text dump
(:meth:`MetricsRegistry.render_text`) -- the format the QSS server's
``metrics_text()`` serves.

Thread safety: instrument mutation (``Counter.inc``, ``Gauge.set``,
``Histogram.observe``, ``reset``) and registry mutation (instrument and
group creation, snapshots, resets) are guarded by locks, so the parallel
query executor and the concurrent QSS poll loop (:mod:`repro.parallel`)
can record metrics from worker threads without corrupting state.  The
:class:`CounterField` attribute views remain plain read/assign
descriptors -- ``stats.lookups += 1`` through a descriptor is a
read-modify-write and is *not* atomic across threads; hot paths that
need atomic increments call ``group["field"].inc()`` directly.
"""

from __future__ import annotations

import bisect
import json
import threading
import weakref

__all__ = ["Counter", "Gauge", "Histogram", "MetricsGroup", "CounterField",
           "MetricsRegistry", "registry"]

DEFAULT_BUCKETS = (0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0)
"""Default histogram bucket upper bounds, in seconds."""


class Counter:
    """A monotonically *intended* counter (resettable for benchmarks).

    ``inc`` and ``reset`` are atomic under the instance lock; direct
    assignment to ``value`` (the :class:`CounterField` compatibility
    path) is a plain store.
    """

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int = 1) -> None:
        with self._lock:
            self.value += amount

    def reset(self) -> None:
        with self._lock:
            self.value = 0


class Gauge:
    """A point-in-time value (set, not accumulated)."""

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0
        self._lock = threading.Lock()

    def set(self, value) -> None:
        with self._lock:
            self.value = value

    def set_max(self, value) -> None:
        """Raise the gauge to ``value`` if larger (high-water marks)."""
        with self._lock:
            if value > self.value:
                self.value = value

    def merge(self, value) -> None:
        """Fold a foreign (worker-side) reading in: gauges merge by max.

        A gauge is a point-in-time reading, so summing across processes
        is meaningless; the high-water mark is the one aggregate that is
        always safe (peak active workers, peak lag, peak queue depth).
        """
        self.set_max(value)

    def reset(self) -> None:
        with self._lock:
            self.value = 0


class Histogram:
    """A fixed-bucket histogram (bucket bounds are upper edges).

    ``observe`` is O(log buckets); the snapshot carries cumulative-style
    per-bucket counts plus ``sum`` and ``count``, enough to reconstruct
    mean latency and coarse percentiles.  ``observe``/``reset``/
    ``snapshot`` are atomic under the instance lock, so concurrent
    observers never leave ``count`` out of step with the bucket counts.
    """

    __slots__ = ("name", "buckets", "counts", "total", "count", "_lock")

    def __init__(self, name: str, buckets=DEFAULT_BUCKETS) -> None:
        self.name = name
        self.buckets = tuple(sorted(buckets))
        self.counts = [0] * (len(self.buckets) + 1)  # + overflow bucket
        self.total = 0.0
        self.count = 0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        with self._lock:
            self.counts[bisect.bisect_left(self.buckets, value)] += 1
            self.total += value
            self.count += 1

    def reset(self) -> None:
        with self._lock:
            self.counts = [0] * (len(self.buckets) + 1)
            self.total = 0.0
            self.count = 0

    def snapshot(self) -> dict:
        """Bucket counts, sum, count, plus the bucket *bounds*.

        The bounds make exported artifacts self-describing: a consumer
        (or :meth:`MetricsRegistry.merge_delta` on the parent side of a
        process pool) can rebuild an identically-bucketed histogram from
        the snapshot alone.
        """
        labels = [f"le_{bound:g}" for bound in self.buckets] + ["le_inf"]
        with self._lock:
            return {"buckets": dict(zip(labels, self.counts)),
                    "sum": self.total, "count": self.count,
                    "bounds": list(self.buckets)}

    def merge(self, other) -> None:
        """Fold another histogram (or a snapshot dict) into this one.

        Bucket counts add elementwise, ``sum`` and ``count`` accumulate.
        The bucket bounds must match -- merging differently-bucketed
        histograms would silently mislabel observations.
        """
        if isinstance(other, Histogram):
            other = other.snapshot()
        bounds = tuple(other.get("bounds", ()))
        if bounds != self.buckets:
            raise ValueError(
                f"cannot merge histogram {self.name!r}: bucket bounds "
                f"{bounds} != {self.buckets}")
        counts = list(other["buckets"].values())
        with self._lock:
            for index, extra in enumerate(counts):
                self.counts[index] += extra
            self.total += other["sum"]
            self.count += other["count"]


class MetricsGroup:
    """One instance of a counter family (e.g. one index's stats).

    Groups hold plain :class:`Counter` objects (and optionally
    :class:`Histogram` objects) named ``<prefix>.<field>``.  The registry
    keeps only a weak reference, so a group dies with the stats object
    that owns it and stops contributing to registry snapshots.
    """

    def __init__(self, prefix: str, fields: tuple[str, ...],
                 histograms: tuple[str, ...] = ()) -> None:
        self.prefix = prefix
        self.fields = tuple(fields)
        self._counters = {name: Counter(f"{prefix}.{name}")
                          for name in self.fields}
        self._histograms = {name: Histogram(f"{prefix}.{name}")
                            for name in histograms}

    def __getitem__(self, field: str) -> Counter:
        return self._counters[field]

    def histogram(self, field: str) -> Histogram:
        return self._histograms[field]

    def reset(self) -> None:
        for counter in self._counters.values():
            counter.reset()
        for histogram in self._histograms.values():
            histogram.reset()

    def snapshot(self) -> dict:
        """Full-name -> value for every instrument in the group."""
        out: dict = {c.name: c.value for c in self._counters.values()}
        out.update({h.name: h.snapshot() for h in self._histograms.values()})
        return out


class CounterField:
    """Descriptor exposing a group counter as a plain int attribute.

    Stats classes declare ``lookups = CounterField()`` and create a
    ``self._metrics`` group in ``__init__``; reads, ``+=``, and direct
    assignment then flow through the registered counter, keeping the
    pre-registry attribute API byte-for-byte compatible.
    """

    __slots__ = ("_name",)

    def __set_name__(self, owner, name: str) -> None:
        self._name = name

    def __get__(self, obj, objtype=None):
        if obj is None:
            return self
        return obj._metrics[self._name].value

    def __set__(self, obj, value) -> None:
        obj._metrics[self._name].value = value


def _merge(a, b):
    """Sum two snapshot values (numbers, or nested histogram dicts).

    Lists (histogram bucket *bounds*) describe shape rather than volume,
    so they pass through unchanged instead of concatenating.
    """
    if isinstance(a, dict) and isinstance(b, dict):
        return {key: _merge(a[key], b.get(key, 0)) for key in a}
    if isinstance(a, list):
        return a
    return a + b


def _diff_histogram(after: dict, before: dict | None) -> dict | None:
    """``after - before`` for histogram snapshots (None when no change)."""
    if before is None:
        before = {"buckets": {}, "sum": 0.0, "count": 0}
    count = after["count"] - before["count"]
    if count == 0:
        return None
    return {"buckets": {label: value - before["buckets"].get(label, 0)
                        for label, value in after["buckets"].items()},
            "sum": after["sum"] - before["sum"],
            "count": count,
            "bounds": list(after.get("bounds", ()))}


class MetricsRegistry:
    """Named instruments plus weakly-held instrument groups.

    Registry mutation (instrument/group creation, snapshot, reset) is
    serialized by an internal lock; returned instruments carry their own
    locks, so reads and increments after lookup proceed without holding
    the registry lock.
    """

    def __init__(self) -> None:
        self._instruments: dict[str, object] = {}
        self._groups: dict[str, weakref.WeakSet] = {}
        self._lock = threading.RLock()

    # -- direct instruments ---------------------------------------------

    def _instrument(self, name: str, factory, kind):
        with self._lock:
            existing = self._instruments.get(name)
            if existing is not None:
                if not isinstance(existing, kind):
                    raise TypeError(
                        f"metric {name!r} is a {type(existing).__name__}, "
                        f"not a {kind.__name__}")
                return existing
            instrument = factory()
            self._instruments[name] = instrument
            return instrument

    def counter(self, name: str) -> Counter:
        """Get or create the named counter."""
        return self._instrument(name, lambda: Counter(name), Counter)

    def gauge(self, name: str) -> Gauge:
        """Get or create the named gauge."""
        return self._instrument(name, lambda: Gauge(name), Gauge)

    def histogram(self, name: str, buckets=DEFAULT_BUCKETS) -> Histogram:
        """Get or create the named histogram (buckets fixed on creation)."""
        return self._instrument(name, lambda: Histogram(name, buckets),
                                Histogram)

    # -- groups ----------------------------------------------------------

    def group(self, prefix: str, fields: tuple[str, ...],
              histograms: tuple[str, ...] = ()) -> MetricsGroup:
        """A fresh family instance, registered weakly under ``prefix``."""
        instance = MetricsGroup(prefix, fields, histograms)
        with self._lock:
            self._groups.setdefault(prefix, weakref.WeakSet()).add(instance)
        return instance

    def _live_groups(self):
        with self._lock:
            members = [list(group) for group in self._groups.values()]
        for group in members:
            yield from group

    # -- export ----------------------------------------------------------

    def snapshot(self, prefix: str | None = None) -> dict:
        """Merged name -> value view: family sums + direct instruments.

        A name that exists both as a family sum and as a direct
        instrument *adds up* -- that is how counters merged back from
        worker processes (held as direct instruments, see
        :meth:`merge_delta`) combine with the parent's own group
        instances of the same family.
        """
        merged: dict = {}
        for group in self._live_groups():
            for name, value in group.snapshot().items():
                merged[name] = _merge(merged[name], value) \
                    if name in merged else value
        with self._lock:
            instruments = dict(self._instruments)
        for name, instrument in instruments.items():
            value = instrument.snapshot() \
                if isinstance(instrument, Histogram) else instrument.value
            merged[name] = _merge(merged[name], value) \
                if name in merged else value
        if prefix is not None:
            merged = {name: value for name, value in merged.items()
                      if name.startswith(prefix)}
        return dict(sorted(merged.items()))

    # -- cross-process propagation ---------------------------------------

    def typed_snapshot(self) -> dict:
        """The snapshot split by instrument kind (the delta baseline).

        Returns ``{"counters": {...}, "gauges": {...}, "histograms":
        {...}}``; group instruments contribute under ``counters`` /
        ``histograms`` with family sums, exactly as :meth:`snapshot`.
        """
        counters: dict = {}
        gauges: dict = {}
        histograms: dict = {}
        for group in self._live_groups():
            for counter in group._counters.values():
                counters[counter.name] = \
                    counters.get(counter.name, 0) + counter.value
            for histogram in group._histograms.values():
                snap = histogram.snapshot()
                if histogram.name in histograms:
                    histograms[histogram.name] = \
                        _merge(histograms[histogram.name], snap)
                else:
                    histograms[histogram.name] = snap
        with self._lock:
            instruments = dict(self._instruments)
        for name, instrument in instruments.items():
            if isinstance(instrument, Histogram):
                snap = instrument.snapshot()
                histograms[name] = _merge(histograms[name], snap) \
                    if name in histograms else snap
            elif isinstance(instrument, Gauge):
                gauges[name] = max(gauges.get(name, instrument.value),
                                   instrument.value)
            else:
                counters[name] = counters.get(name, 0) + instrument.value
        return {"counters": counters, "gauges": gauges,
                "histograms": histograms}

    def delta_since(self, baseline: dict) -> dict:
        """What changed since ``baseline`` (a :meth:`typed_snapshot`).

        The result is a plain, picklable dict -- the payload a process
        shard ships back beside its rows: counter *increments*,
        histogram bucket/sum/count increments (bounds included so the
        parent can rebuild identical buckets), and current gauge
        readings (merged by max on the parent).  Zero-change series are
        omitted, so an idle worker ships an empty delta.
        """
        current = self.typed_snapshot()
        base_counters = baseline.get("counters", {})
        counters = {}
        for name, value in current["counters"].items():
            diff = value - base_counters.get(name, 0)
            if diff:
                counters[name] = diff
        base_hists = baseline.get("histograms", {})
        histograms = {}
        for name, snap in current["histograms"].items():
            diff = _diff_histogram(snap, base_hists.get(name))
            if diff is not None:
                histograms[name] = diff
        base_gauges = baseline.get("gauges", {})
        gauges = {name: value
                  for name, value in current["gauges"].items()
                  if value != base_gauges.get(name)}
        return {"counters": counters, "gauges": gauges,
                "histograms": histograms}

    def merge_delta(self, delta: dict | None) -> None:
        """Fold a worker-captured :meth:`delta_since` into this registry.

        Counter increments sum into direct counters of the same name
        (family sums then combine group + merged values, see
        :meth:`snapshot`), histogram deltas bucket-merge via
        :meth:`Histogram.merge`, and gauges merge by max
        (:meth:`Gauge.merge`).  Safe to call with ``None`` or an empty
        delta -- a crashed worker that shipped nothing merges nothing.
        """
        if not delta:
            return
        for name, diff in delta.get("counters", {}).items():
            self.counter(name).inc(diff)
        for name, snap in delta.get("histograms", {}).items():
            bounds = tuple(snap.get("bounds", DEFAULT_BUCKETS))
            self.histogram(name, buckets=bounds).merge(snap)
        for name, value in delta.get("gauges", {}).items():
            self.gauge(name).merge(value)

    def export_json(self, prefix: str | None = None,
                    indent: int | None = 2) -> str:
        """The snapshot as a JSON document (the benchmark artifact shape)."""
        return json.dumps(self.snapshot(prefix), indent=indent)

    def render_text(self, prefix: str | None = None) -> str:
        """The Prometheus text exposition of the registry.

        Every metric family carries its ``# HELP`` and ``# TYPE`` lines
        (type from the actual instrument kind: counter, gauge, or
        histogram); histograms expand into ``name_bucket{le="..."}``
        lines plus ``name_sum`` and ``name_count``.  Serve with content
        type ``text/plain; version=0.0.4`` (what
        :class:`repro.obs.http.MetricsHTTPServer` sends).
        """
        typed = self.typed_snapshot()
        kind_of: dict[str, str] = {}
        for kind, label in (("counters", "counter"), ("gauges", "gauge"),
                            ("histograms", "histogram")):
            for name in typed[kind]:
                kind_of[name] = label
        lines: list[str] = []
        for name in sorted(kind_of):
            if prefix is not None and not name.startswith(prefix):
                continue
            label = kind_of[name]
            flat = name.replace(".", "_").replace("-", "_")
            lines.append(f"# HELP {flat} repro metric {name}")
            lines.append(f"# TYPE {flat} {label}")
            if label == "histogram":
                value = typed["histograms"][name]
                for bucket, count in value["buckets"].items():
                    edge = bucket[3:].replace("_", ".") \
                        if not bucket.endswith("inf") else "+Inf"
                    lines.append(f'{flat}_bucket{{le="{edge}"}} {count}')
                lines.append(f"{flat}_sum {value['sum']:.6f}")
                lines.append(f"{flat}_count {value['count']}")
            else:
                source = typed["counters" if label == "counter"
                               else "gauges"]
                lines.append(f"{flat} {source[name]}")
        return "\n".join(lines) + "\n"

    def reset(self) -> None:
        """Zero every direct instrument and every live group."""
        with self._lock:
            instruments = list(self._instruments.values())
        for instrument in instruments:
            instrument.reset()
        for group in self._live_groups():
            group.reset()


_REGISTRY = MetricsRegistry()


def registry() -> MetricsRegistry:
    """The process-global metrics registry."""
    return _REGISTRY
