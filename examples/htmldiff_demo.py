#!/usr/bin/env python
"""htmldiff (Figure 1): marked-up change visualization for web pages.

Renders two versions of the simulated restaurant-guide page a week apart,
diffs them through the OEM pipeline, and writes the marked-up HTML plus
both source versions next to this script.

Run:  python examples/htmldiff_demo.py
Then open htmldiff_output.html in a browser.
"""

from pathlib import Path

from repro import RestaurantGuideSource, html_diff

STYLE = """<style>
body { font-family: sans-serif; max-width: 48em; margin: 2em auto; }
.htmldiff-legend { background: #eef; padding: .5em; margin-bottom: 1em; }
.htmldiff-insert { background: #cfc; }
.htmldiff-update { background: #ffc; border-bottom: 1px dotted #990; }
.htmldiff-deleted { background: #fdd; margin-top: 1em; padding: .5em; }
</style>"""


def main():
    source = RestaurantGuideSource(seed=1997, initial_restaurants=8,
                                   events_per_day=2.5)
    page_v1 = source.render_html()
    source.advance("8Dec96")
    page_v2 = source.render_html()

    result = html_diff(page_v1, page_v2)
    print("htmldiff summary:", result.stats)
    print(f"  inserted nodes: {len(result.inserted_new_nodes)}")
    print(f"  updated nodes:  {len(result.updated_new_nodes)}")
    print(f"  deleted fragments: {len(result.deleted_fragments)}")

    here = Path(__file__).resolve().parent
    (here / "htmldiff_old.html").write_text(page_v1, encoding="utf-8")
    (here / "htmldiff_new.html").write_text(page_v2, encoding="utf-8")
    (here / "htmldiff_output.html").write_text(STYLE + result.markup,
                                               encoding="utf-8")
    print(f"\nwrote {here / 'htmldiff_output.html'}")
    print("(plus htmldiff_old.html / htmldiff_new.html for comparison)")

    # The same changes, as basic change operations (what DOEM would store):
    print("\nInferred basic change operations (first 12):")
    for op in result.change_set.canonical_order()[:12]:
        print("  ", op)


if __name__ == "__main__":
    main()
