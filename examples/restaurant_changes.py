#!/usr/bin/env python
"""Change queries over an evolving restaurant guide (Section 1.1).

"We are interested in finding out which restaurants were recently added,
which restaurants were seen as improving, degrading, etc." -- this script
watches a month of a (simulated) Palo Alto Weekly restaurant guide purely
through snapshots, folds the inferred changes into a DOEM database, and
answers exactly those questions in Chorel.

Run:  python examples/restaurant_changes.py
"""

from repro import (
    ChorelEngine,
    DOEMDatabase,
    OEMDatabase,
    RestaurantGuideSource,
    Wrapper,
    current_snapshot,
    oem_diff,
    parse_timestamp,
)
from repro.doem.build import apply_change_set


def watch_guide(days=30, seed=1997):
    """Poll the guide daily; return the accumulated DOEM database."""
    source = RestaurantGuideSource(seed=seed, initial_restaurants=8,
                                   events_per_day=2.0)
    wrapper = Wrapper(source, name="guide")
    doem = DOEMDatabase(OEMDatabase(root="answer"))
    reserved = {"answer"}

    start = parse_timestamp("1Dec96")
    for day in range(days):
        when = start.plus(days=day + 1)
        wrapper.advance(when)
        result = wrapper.poll("select guide.restaurant")
        previous = current_snapshot(doem)
        changes = oem_diff(previous, result, reserved_ids=reserved)
        apply_change_set(doem, when, changes)
        reserved.update(changes.created_nodes())
    return doem, source


def show(title, result, render):
    print(f"\n== {title} ==")
    if not result:
        print("  (none)")
    for row in result:
        print("  " + render(row))


def main():
    doem, source = watch_guide()
    engine = ChorelEngine(doem, name="Guide")
    engine.register_name("Guide", doem.graph.root)
    graph = doem.graph

    def name_of(ref):
        for _, child in doem.live_children(ref.node, parse_timestamp("1Feb97"),
                                           "name"):
            return graph.value(child)
        # fall back to any name the object ever had
        for child in graph.children(ref.node, "name"):
            return graph.value(child)
        return ref.node

    print(f"Watched {len(doem.timestamps())} days of guide snapshots;")
    print(f"DOEM database: {doem.graph.arc_count()} arcs, "
          f"{doem.annotation_count()} annotations.")
    print("Ground-truth events at the source (first 8):")
    for when, event in source.event_log[:8]:
        print(f"  {when}: {event}")

    # 1. "find all new restaurant entries" (after the initial load)
    first_poll = doem.timestamps()[0]
    new_entries = engine.run(
        f"select R, T from Guide.<add at T>restaurant R "
        f"where T > {first_poll}")
    show("New restaurants (since the first poll)", new_entries,
         lambda row: f"{name_of(row['restaurant'])} "
                     f"(added {row['add-time']})")

    # 2. "find all restaurants whose average price changed"
    price_changes = engine.run(
        "select R, OV, NV, T from Guide.restaurant R, "
        "R.price<upd at T from OV to NV>")
    show("Price changes", price_changes,
         lambda row: f"{name_of(row['restaurant'])}: "
                     f"{row['old-value']} -> {row['new-value']} "
                     f"on {row['update-time']}")

    # 3. improving / degrading by rating updates
    improving = engine.run(
        "select R, OV, NV from Guide.restaurant R, "
        "R.rating<upd at T from OV to NV> where NV > OV")
    show("Improving (rating went up)", improving,
         lambda row: f"{name_of(row['restaurant'])}: "
                     f"{row['old-value']} -> {row['new-value']}")
    degrading = engine.run(
        "select R, OV, NV from Guide.restaurant R, "
        "R.rating<upd at T from OV to NV> where NV < OV")
    show("Degrading (rating went down)", degrading,
         lambda row: f"{name_of(row['restaurant'])}: "
                     f"{row['old-value']} -> {row['new-value']}")

    # 4. disappeared restaurants (arc removed from the answer root)
    closed = engine.run(
        "select R, T from Guide.<rem at T>restaurant R")
    show("Closed restaurants", closed,
         lambda row: f"{name_of(row['restaurant'])} "
                     f"(removed {row['remove-time']})")

    # 5. new comments mentioning music, on any restaurant
    comments = engine.run(
        'select R, C from Guide.restaurant R, R.<add at T>comment C '
        'where C like "%music%"')
    show("New comments about music", comments,
         lambda row: f"{name_of(row['restaurant'])}: "
                     f"\"{graph.value(row['comment'].node)}\"")


if __name__ == "__main__":
    main()
