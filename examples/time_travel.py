#!/usr/bin/env python
"""Time travel: snapshots and virtual annotations (Sections 3.2, 4.2.2).

A DOEM database is every state of the database at once.  This demo builds
a month-long history of the restaurant guide and then:

1. reconstructs full snapshots at arbitrary instants (``Ot(D)``) and
   diffs *reconstructed* states against each other;
2. uses virtual ``<at T>`` annotations to ask "what was X's price on the
   14th?" without materializing a snapshot;
3. extracts the complete encoded history ``H(D)`` back out and verifies
   it replays to the current state -- the faithfulness property of
   Section 3.2.

Run:  python examples/time_travel.py
"""

from repro import (
    ChorelEngine,
    RestaurantGuideSource,
    build_doem,
    current_snapshot,
    encoded_history,
    oem_diff,
    parse_timestamp,
    snapshot_at,
)
from repro.diff.oemdiff import DiffStats
from repro.oem.history import OEMHistory
from repro.oem.changes import UpdNode
from repro.sources.generators import random_change_set


def build_month_history():
    """A guide database plus a month of synthetic change sets."""
    source = RestaurantGuideSource(seed=77, initial_restaurants=10,
                                   events_per_day=0, stable_ids=True)
    base = source.export()
    history = OEMHistory()
    current = base.copy()
    reserved = set(base.nodes())
    start = parse_timestamp("1Dec96")
    for day in range(28):
        changes = random_change_set(current, seed=day, size=4,
                                    id_prefix=f"d{day}_",
                                    reserved_ids=reserved)
        if changes:
            history.append(start.plus(days=day + 1), changes)
            changes.apply_to(current)
            reserved.update(changes.created_nodes())
    return base, history


def main():
    base, history = build_month_history()
    doem = build_doem(base, history)
    print(f"base: {len(base)} nodes; history: {len(history)} change sets, "
          f"{history.operation_count()} operations; "
          f"DOEM carries {doem.annotation_count()} annotations\n")

    # 1. Reconstructed snapshots, and a diff between two *past* states.
    for day in ("5Dec96", "14Dec96", "28Dec96"):
        snapshot = snapshot_at(doem, day)
        print(f"snapshot {day}: {len(snapshot)} nodes, "
              f"{snapshot.arc_count()} arcs")
    early = snapshot_at(doem, "5Dec96")
    late = snapshot_at(doem, "14Dec96")
    drift = oem_diff(early, late)
    print(f"\nwhat changed between 5Dec96 and 14Dec96 "
          f"(diff of two reconstructions): {DiffStats(drift)}")

    # 2. Virtual annotations: point queries into the past.
    engine = ChorelEngine(doem, name=base.root)
    then = engine.run("select N, P from guide.<at 5Dec96>restaurant R, "
                      "R.name<at 5Dec96> N, R.price<at 5Dec96> P")
    print(f"\nprices as of 5Dec96 ({len(then)} restaurants):")
    for row in list(then)[:5]:
        name = doem.value_at(row["name"].node, parse_timestamp("5Dec96"))
        price = doem.value_at(row["price"].node, parse_timestamp("5Dec96"))
        print(f"  {name}: {price}")

    # The same objects now:
    now = engine.run("select N, P from guide.restaurant R, "
                     "R.name N, R.price P")
    print(f"prices now ({len(now)} restaurants): first 5:")
    graph = doem.graph
    for row in list(now)[:5]:
        print(f"  {graph.value(row['name'].node)}: "
              f"{graph.value(row['price'].node)}")

    # 3. Faithfulness: H(D) replays O0 to the current snapshot.
    extracted = encoded_history(doem)
    replayed = extracted.apply_to(snapshot_at(doem, "30Nov96"))
    faithful = replayed.same_as(current_snapshot(doem))
    print(f"\nH(D) == H: {extracted == history};  "
          f"replay(O0, H(D)) == current snapshot: {faithful}")


if __name__ == "__main__":
    main()
