#!/usr/bin/env python
"""Quickstart: the paper's running example, end to end.

Builds the Figure 2 restaurant guide, applies the Example 2.3 history to
obtain the Figure 4 DOEM database, and runs the paper's queries
(Examples 4.1-4.5) on both Chorel backends.

Run:  python examples/quickstart.py
"""

from repro import (
    COMPLEX,
    AddArc,
    ChorelEngine,
    CreNode,
    GraphBuilder,
    OEMHistory,
    RemArc,
    TranslatingChorelEngine,
    UpdNode,
    build_doem,
    current_snapshot,
    original_snapshot,
    snapshot_at,
)


def build_guide():
    """The Figure 2 database, via the construction DSL."""
    builder = GraphBuilder(root="guide")
    parking = builder.ref("parking")
    bangkok = builder.ref("bangkok")
    builder.build({
        "restaurant": [
            builder.define(bangkok, {
                "name": "Bangkok Cuisine",
                "price": builder.define("bangkok-price", 10),
                "address": "120 Lytton",
                "parking": builder.define(parking, {
                    "address": "Lytton lot 2",
                    "comment": "usually full",
                    "nearby-eats": bangkok,       # the Figure 2 cycle
                }),
            }),
            builder.define("janta", {
                "name": "Janta",
                "cuisine": "Indian",
                "price": "moderate",
                "parking": parking,               # shared subobject
                "address": {"street": "Lytton", "city": "Palo Alto"},
            }),
        ],
    })
    return builder


def build_history(builder):
    """The Example 2.3 history: three timestamped change sets."""
    db = builder.database
    price_id = builder.ref("bangkok-price").node_id
    janta_id = builder.ref("janta").node_id
    parking_id = builder.ref("parking").node_id
    history = OEMHistory()
    history.append("1Jan97", [
        UpdNode(price_id, 20),                       # price 10 -> 20
        CreNode("hakata", COMPLEX),                  # new restaurant
        CreNode("hakata-name", "Hakata"),
        AddArc("guide", "restaurant", "hakata"),
        AddArc("hakata", "name", "hakata-name"),
    ])
    history.append("5Jan97", [
        CreNode("hakata-comment", "need info"),
        AddArc("hakata", "comment", "hakata-comment"),
    ])
    history.append("8Jan97", [
        RemArc(janta_id, "parking", parking_id),     # parking dropped
    ])
    return history


def main():
    builder = build_guide()
    guide = builder.database
    print("== The Figure 2 guide database ==")
    print(guide.describe())

    history = build_history(builder)
    doem = build_doem(guide, history)
    print("\n== The Figure 4 DOEM database ==")
    print(doem.describe())

    print("\n== Snapshots recovered from DOEM alone (Section 3.2) ==")
    print("original == Figure 2:",
          original_snapshot(doem).same_as(guide))
    mid = snapshot_at(doem, "3Jan97")
    print("price on 3Jan97:",
          mid.value(builder.ref("bangkok-price").node_id))
    print("current price:",
          current_snapshot(doem).value(builder.ref("bangkok-price").node_id))

    queries = {
        "Ex 4.1 (Lorel, current snapshot)":
            "select guide.restaurant where guide.restaurant.price < 20.5",
        "Ex 4.2 (new restaurants)":
            "select guide.<add>restaurant",
        "Ex 4.3 (added before 4Jan97)":
            "select guide.<add at T>restaurant where T < 4Jan97",
        "Ex 4.4 (price updates over 15)":
            "select N, T, NV from guide.restaurant.price<upd at T to NV>, "
            "guide.restaurant.name N where T >= 1Jan97 and NV > 15",
        "Ex 4.5 (moderate price added)":
            'select N from guide.restaurant R, R.name N '
            'where R.<add at T>price = "moderate" and T >= 1Jan97',
        "removed parking (Sec 4.2)":
            "select R, T from guide.restaurant R, R.<rem at T>parking P",
    }

    native = ChorelEngine(doem, name="guide")
    translating = TranslatingChorelEngine(doem, name="guide")
    print("\n== Chorel queries, native engine vs. Lorel translation ==")
    for title, query in queries.items():
        native_rows = sorted(str(row) for row in native.run(query))
        translated_rows = sorted(str(row) for row in translating.run(query))
        agree = "OK" if native_rows == translated_rows else "MISMATCH"
        print(f"\n{title}\n  {query}")
        for row in native_rows or ["(empty)"]:
            print(f"  -> {row}")
        print(f"  [backends agree: {agree}]")

    print("\n== The Example 5.1 translation ==")
    translation = translating.translate(queries["Ex 4.5 (moderate price added)"])
    print(translation.text())


if __name__ == "__main__":
    main()
