#!/usr/bin/env python
"""The library motivating example (Section 1.1) as a QSS subscription.

"Suppose we wish to be notified whenever any 'popular' book becomes
available where, say, we define a book as popular if it has been checked
out two or more times in the past month."

The legacy circulation system offers no triggers and no history: QSS polls
its catalog daily, infers checkouts/returns by differencing, keeps the
history in a DOEM database, and evaluates a Chorel filter query per poll.
Popularity is answered from QSS's *own* DOEM history -- the source never
reveals it.

Run:  python examples/library_notifications.py
"""

from repro import (
    LibrarySource,
    QSC,
    QSSServer,
    Subscription,
    Wrapper,
)


def checkout_count(doem, book, since, until):
    """Checkouts of ``book`` in ``(since, until]``, from the DOEM history.

    A checkout is a status update whose *new* value is "out"
    (updFun's (time, old, new) triples, Section 4.2.1).
    """
    count = 0
    for status in doem.graph.children(book, "status"):
        for when, _old, new in doem.upd_triples(status):
            if new == "out" and since < when <= until:
                count += 1
    return count


def main():
    source = LibrarySource(seed=3, books=6, events_per_day=8.0)
    server = QSSServer(start="1Dec96")
    server.register_wrapper("library", Wrapper(source, name="library"))
    client = QSC(server, user="patron")

    # The subscription: daily polls, notify on returns (status out -> in).
    client.subscribe(
        name="Books",
        frequency="every day at 7:00am",
        polling_query="define polling query Books as select library.book",
        filter_query="define filter query Returned as "
                     "select B, T from Books.book B, "
                     'B.status<upd at T from OV to NV> '
                     'where T > t[-1] and OV = "out" and NV = "in"',
        wrapper="library")

    server.run_until("1Jan97")
    doem = server.doems.doem("Books")
    graph = doem.graph

    def title_of(node):
        for child in graph.children(node, "title"):
            return graph.value(child)
        return node

    print(f"One month of daily polls; "
          f"{len(client.inbox)} return notification(s).\n")

    # On each return, consult the DOEM history for popularity: two or
    # more checkouts in the month before the notification.
    popular_alerts = 0
    for notification in client.inbox:
        month_ago = notification.polling_time.plus(days=-31)
        for row in notification.result:
            book = row["book"].node
            count = checkout_count(doem, book, month_ago,
                                   notification.polling_time)
            marker = "POPULAR -- grab it now!" if count >= 2 else "quiet"
            print(f"[{notification.polling_time}] returned: "
                  f"{title_of(book)!r} "
                  f"({count} checkout(s) in the past month -> {marker})")
            if count >= 2:
                popular_alerts += 1

    print(f"\n{popular_alerts} popular-book alert(s) this month.")
    print("\nGround truth (source-internal circulation counts):")
    for book in source.books.values():
        print(f"  {book.title!r}: {book.checkout_count} checkout(s) total, "
              f"{'out' if book.checked_out else 'in'} now")


if __name__ == "__main__":
    main()
